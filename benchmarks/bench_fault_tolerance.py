"""Extensions A16 + A18 — fault tolerance: dirty logs and dying workers.

Two questions the resilient ingestion layer must answer with numbers:

1. **Accuracy vs fault rate** — corrupt a simulated log with each fault
   model of :mod:`repro.faults` at increasing rates, ingest under the
   ``quarantine`` policy, reconstruct with Smart-SRA and score against the
   simulator's ground truth.  Faults that destroy lines (truncate, garble,
   rotation-split) cost sessions roughly in proportion to the lines lost;
   faults that keep lines parsable (clock-skew, duplicate, bot) degrade
   more subtly or not at all.
2. **Throughput overhead per error policy** — the price of accounting:
   line throughput of ``skip`` / ``quarantine`` / ``repair`` over a 5 %
   all-models chaos stream, against ``strict`` over the clean stream.

And two for the fault-tolerant *execution* layer (A18):

3. **Supervision overhead at zero faults** — a supervised
   ``parallel_map`` run with nothing going wrong must cost within 5 % of
   the unsupervised engine (the recovery machinery is pure bookkeeping
   until a fault fires).
4. **Crash-recovery equivalence** — with an injected worker crash, the
   supervised run must still produce byte-identical output, paying only
   the retry it actually needed.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import BENCH_QUICK, BENCH_SEED, emit
from repro.core.smart_sra import SmartSRA
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.evaluation.metrics import real_accuracy
from repro.faults import FAULT_MODELS, chaos_stream
from repro.logs.clf import format_clf_line
from repro.logs.ingest import IngestReport, ingest_lines
from repro.logs.reader import records_to_requests
from repro.logs.users import IdentityAddressMap
from repro.logs.writer import requests_to_records
from repro.simulator.population import simulate_population

_AGENTS = 300
_RATES = (0.02, 0.05, 0.10)


@pytest.fixture(scope="module")
def workload():
    topology = paper_topology(seed=BENCH_SEED)
    config = PAPER_DEFAULTS.simulation_config(n_agents=_AGENTS,
                                              seed=BENCH_SEED)
    simulation = simulate_population(topology, config)
    records = requests_to_records(simulation.log_requests,
                                  IdentityAddressMap())
    lines = [format_clf_line(record) for record in records]
    return topology, simulation.ground_truth, lines


def _score(topology, ground_truth, lines):
    """Quarantine-ingest ``lines``, reconstruct, score — never raises."""
    report = IngestReport()
    records = list(ingest_lines(lines, policy="quarantine",
                                report=report, quarantine=[]))
    assert report.reconciles()
    requests = sorted(records_to_requests(records))
    sessions = SmartSRA(topology).reconstruct(requests)
    return real_accuracy(ground_truth, sessions), report


def test_accuracy_vs_fault_rate(workload, results_dir):
    topology, ground_truth, lines = workload
    baseline, _ = _score(topology, ground_truth, lines)
    assert baseline > 0.5

    rows = [f"  {'model':<15}" + "".join(f"{r:>9.0%}" for r in _RATES)]
    for name in sorted(FAULT_MODELS):
        cells = []
        for rate in _RATES:
            dirty = list(FAULT_MODELS[name](rate, seed=BENCH_SEED)
                         .apply(lines))
            accuracy, report = _score(topology, ground_truth, dirty)
            assert accuracy <= baseline + 0.02, (name, rate)
            cells.append(f"{accuracy:>9.3f}")
        rows.append(f"  {name:<15}" + "".join(cells))

    emit(results_dir, "fault_tolerance_accuracy",
         f"Extension A16 — Smart-SRA accuracy vs fault rate "
         f"[{_AGENTS} agents, quarantine policy]\n"
         f"  clean-log baseline: {baseline:.3f}\n"
         + "\n".join(rows) + "\n")


def test_policy_throughput_overhead(workload, results_dir):
    _, _, lines = workload
    specs = [(name, 0.05) for name in sorted(FAULT_MODELS)]
    dirty = list(chaos_stream(lines, specs=specs, seed=BENCH_SEED))

    def best_of(stream, policy, repeats=3):
        elapsed = []
        for _ in range(repeats):
            start = time.perf_counter()
            report = IngestReport()
            for _record in ingest_lines(stream, policy=policy,
                                        report=report, quarantine=[]):
                pass
            elapsed.append(time.perf_counter() - start)
            assert report.reconciles()
        return len(stream) / min(elapsed)

    strict_clean = best_of(lines, "strict")
    rows = [f"  {'policy':<12}{'lines/s':>12}{'vs strict':>12}",
            f"  {'strict*':<12}{strict_clean:>12,.0f}{'1.00x':>12}"]
    for policy in ("skip", "quarantine", "repair"):
        throughput = best_of(dirty, policy)
        rows.append(f"  {policy:<12}{throughput:>12,.0f}"
                    f"{throughput / strict_clean:>11.2f}x")

    emit(results_dir, "fault_tolerance_throughput",
         f"Extension A16 — ingestion throughput per error policy "
         f"[{len(dirty)} dirty lines, 5% all-models chaos]\n"
         "  (*strict measured on the clean stream — it raises on dirty)\n"
         + "\n".join(rows) + "\n")


# -- A18: the fault-tolerant execution layer ------------------------------

#: per-item spin count — enough CPU per chunk that dispatch overhead is
#: amortized; quick mode shrinks the workload to a correctness smoke.
_SPIN = 300 if BENCH_QUICK else 20_000
_EXEC_ITEMS = 64 if BENCH_QUICK else 256


def _spin(x):
    """Deterministic CPU-bound work item (module-level: pickles)."""
    value = x & 0xFFFFFFFF
    for _ in range(_SPIN):
        value = (value * 2654435761 + 12345) & 0xFFFFFFFF
    return value


def test_supervision_overhead_at_zero_faults(results_dir):
    from repro.parallel import RetryPolicy, parallel_map

    items = list(range(_EXEC_ITEMS))
    expected = [_spin(x) for x in items]
    policy = RetryPolicy(max_retries=2, deadline=60.0)

    def best_of(supervision, repeats=3):
        elapsed = []
        for _ in range(repeats):
            start = time.perf_counter()
            results = parallel_map(_spin, items, workers=2, mode="process",
                                   chunk_size=8, supervision=supervision)
            elapsed.append(time.perf_counter() - start)
            assert results == expected
        return min(elapsed)

    plain = best_of(None)
    supervised = best_of(policy)
    overhead = supervised / plain - 1.0

    emit(results_dir, "fault_tolerance_supervision_overhead",
         f"Extension A18 — supervised execution overhead at zero faults "
         f"[{_EXEC_ITEMS} items x {_SPIN} spins, 2 workers, best of 3]\n"
         f"  plain parallel_map:      {plain * 1e3:>8.1f} ms\n"
         f"  supervised (no faults):  {supervised * 1e3:>8.1f} ms\n"
         f"  overhead:                {overhead:>8.1%}\n")
    if not BENCH_QUICK:
        assert overhead < 0.05, f"supervision overhead {overhead:.1%}"


def test_crash_recovery_equivalence(results_dir):
    from repro.faults import use_execution_faults
    from repro.parallel import RetryPolicy, supervised_map

    items = list(range(64))
    expected = [_spin(x) for x in items]
    policy = RetryPolicy(max_retries=2, deadline=60.0, backoff_base=0.01)
    with use_execution_faults("crash-chunk:1"):
        start = time.perf_counter()
        outcome = supervised_map(_spin, items, workers=2, mode="process",
                                 chunk_size=8, policy=policy)
        elapsed = time.perf_counter() - start

    assert outcome.results == expected
    assert outcome.stats.crashes >= 1
    assert outcome.stats.respawns >= 1
    assert not outcome.failures

    stats = outcome.stats
    emit(results_dir, "fault_tolerance_crash_recovery",
         f"Extension A18 — crash recovery [64 items, transient "
         f"crash-chunk:1, 2 workers]\n"
         f"  output identical to serial: True\n"
         f"  crashes {stats.crashes}, respawns {stats.respawns}, "
         f"retries {stats.retries}, degraded serial "
         f"{stats.degraded_serial}\n"
         f"  recovered in {elapsed * 1e3:.0f} ms\n")
