"""Ablation A4 — reconstruction throughput per heuristic.

Proper timing benchmarks (multiple rounds) of each heuristic over one fixed
simulated log, reporting requests/second.  The paper argues Smart-SRA's
shorter sessions make downstream processing cheaper; this bench quantifies
the reconstruction cost side: the time heuristics are a single pass,
heur3 pays for path completion, Smart-SRA for its per-candidate iteration.
"""

from __future__ import annotations

import pytest

from _bench_utils import BENCH_SEED
from repro.core.smart_sra import SmartSRA
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.sessions.navigation_oriented import NavigationHeuristic
from repro.sessions.time_oriented import DurationHeuristic, PageStayHeuristic
from repro.simulator.population import simulate_population

#: throughput population is fixed (not env-scaled) so timings are comparable.
_AGENTS = 400


@pytest.fixture(scope="module")
def fixed_log(bench_metrics):
    topology = paper_topology(seed=BENCH_SEED)
    config = PAPER_DEFAULTS.simulation_config(n_agents=_AGENTS,
                                              seed=BENCH_SEED)
    simulation = simulate_population(topology, config)
    return topology, simulation.log_requests


def test_throughput_heur1(benchmark, fixed_log):
    __, log = fixed_log
    result = benchmark(lambda: DurationHeuristic().reconstruct(log))
    assert len(result) > 0


def test_throughput_heur2(benchmark, fixed_log):
    __, log = fixed_log
    result = benchmark(lambda: PageStayHeuristic().reconstruct(log))
    assert len(result) > 0


def test_throughput_heur3(benchmark, fixed_log):
    topology, log = fixed_log
    result = benchmark(lambda: NavigationHeuristic(topology).reconstruct(log))
    assert len(result) > 0


def test_throughput_heur4(benchmark, fixed_log):
    topology, log = fixed_log
    result = benchmark(lambda: SmartSRA(topology).reconstruct(log))
    assert len(result) > 0


def test_throughput_simulator(benchmark, bench_metrics):
    """Agents simulated per second (the evaluation's own substrate cost)."""
    topology = paper_topology(seed=BENCH_SEED)
    config = PAPER_DEFAULTS.simulation_config(n_agents=100, seed=BENCH_SEED)
    result = benchmark(lambda: simulate_population(topology, config))
    assert len(result.traces) == 100
