"""Extension A7 — the reactive gap: what would richer logging buy?

The paper restricts itself to plain CLF (no Referer header) and shows
Smart-SRA is the best *reactive* heuristic.  This bench adds the
referrer-chaining heuristic over Combined-Log-Format data from the same
simulation and measures how much of the remaining gap the Referer header
closes — the quantitative version of the paper's §1 discussion of
proactive-vs-reactive trade-offs.

Expected: referrer ≥ heur4 ≥ every CLF-only baseline, with referrer close
to perfect (its only losses are cache-hidden singleton sessions).
"""

from __future__ import annotations

from _bench_utils import BENCH_AGENTS, BENCH_SEED, emit
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.evaluation.harness import run_trial, standard_heuristics
from repro.sessions.referrer import ReferrerHeuristic


def test_referrer_gap(benchmark, results_dir):
    topology = paper_topology(seed=BENCH_SEED)
    config = PAPER_DEFAULTS.simulation_config(
        n_agents=BENCH_AGENTS, seed=BENCH_SEED)
    heuristics = dict(standard_heuristics(topology))
    heuristics["referrer"] = ReferrerHeuristic()

    trial = benchmark.pedantic(
        run_trial, args=(topology, config, heuristics),
        rounds=1, iterations=1)
    accs = trial.accuracies()

    assert accs["referrer"] > accs["heur4"]
    assert accs["referrer"] > 0.8
    assert accs["heur4"] == max(accs[name] for name in
                                ("heur1", "heur2", "heur3", "heur4"))

    lines = [f"Extension A7 — value of the Referer header "
             f"[{BENCH_AGENTS} agents]",
             "  heuristic  log format      matched accuracy"]
    for name in ("heur1", "heur2", "heur3", "heur4"):
        lines.append(f"  {name:>9}  plain CLF     {accs[name] * 100:14.1f}%")
    lines.append(f"  {'referrer':>9}  combined      "
                 f"{accs['referrer'] * 100:14.1f}%")
    lines.append(f"  gap closed by richer logging: "
                 f"{(accs['referrer'] - accs['heur4']) * 100:.1f} points")
    emit(results_dir, "referrer_gap", "\n".join(lines) + "\n")
