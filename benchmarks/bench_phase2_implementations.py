"""Extension A14 — Phase 2 implementations: reference vs indexed.

Times the paper-pseudocode Phase 2 (re-scan per round) against the indexed
wave-release implementation on two workload shapes:

* the paper's dense setting (out-degree 15, short candidates) — both are
  Step-III-bound, parity expected;
* a sparse-site stress candidate (out-degree 2, 600 requests) — the
  reference's repeated O(n²) Step-I scans dominate and the indexed version
  wins severalfold.

Correctness equivalence is asserted on both workloads (and property-tested
exhaustively in ``tests/property/test_phase2_equivalence.py``).
"""

from __future__ import annotations

import random

import pytest

from _bench_utils import BENCH_SEED
from repro.core.phase2 import maximal_sessions, maximal_sessions_fast
from repro.sessions.model import Request
from repro.topology.generators import random_site


def _session_multiset(sessions):
    return sorted(tuple((r.page, r.timestamp) for r in session)
                  for session in sessions)


@pytest.fixture(scope="module")
def sparse_candidate():
    site = random_site(300, 2, seed=BENCH_SEED)
    rng = random.Random(BENCH_SEED)
    pages = sorted(site.pages)
    candidate = [Request(i * 3.0, "u", rng.choice(pages))
                 for i in range(600)]
    return site, candidate


@pytest.fixture(scope="module")
def dense_candidate():
    site = random_site(300, 15, seed=BENCH_SEED)
    rng = random.Random(BENCH_SEED)
    pages = sorted(site.pages)
    candidate = [Request(i * 6.0, "u", rng.choice(pages))
                 for i in range(120)]
    return site, candidate


def test_sparse_reference(benchmark, sparse_candidate):
    site, candidate = sparse_candidate
    result = benchmark(lambda: maximal_sessions(candidate, site))
    assert result


def test_sparse_indexed(benchmark, sparse_candidate):
    site, candidate = sparse_candidate
    result = benchmark(lambda: maximal_sessions_fast(candidate, site))
    assert _session_multiset(result) == _session_multiset(
        maximal_sessions(candidate, site))


def test_dense_reference(benchmark, dense_candidate):
    site, candidate = dense_candidate
    result = benchmark(lambda: maximal_sessions(candidate, site))
    assert result


def test_dense_indexed(benchmark, dense_candidate):
    site, candidate = dense_candidate
    result = benchmark(lambda: maximal_sessions_fast(candidate, site))
    assert _session_multiset(result) == _session_multiset(
        maximal_sessions(candidate, site))
