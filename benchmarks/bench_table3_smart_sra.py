"""Tables 3-4 — the Smart-SRA worked example.

Regenerates the paper's Phase 1 candidate (Table 3) and the three maximal
sessions its Phase 2 trace derives (Table 4), asserts exactness, and times
both phases on the literal input.
"""

from __future__ import annotations

from _bench_utils import emit
from repro.core.phase1 import split_candidates
from repro.core.phase2 import maximal_sessions
from repro.core.smart_sra import SmartSRA
from repro.evaluation.experiments import (
    paper_example_topology,
    paper_table3_stream,
)

EXPECTED_TABLE4 = {
    ("P1", "P13", "P34", "P23"),
    ("P1", "P13", "P49", "P23"),
    ("P1", "P20", "P23"),
}


def test_table3_phase1_single_candidate(benchmark):
    stream = paper_table3_stream()
    candidates = benchmark(lambda: split_candidates(stream))
    assert len(candidates) == 1
    assert [r.page for r in candidates[0]] == [
        "P1", "P20", "P13", "P49", "P34", "P23"]


def test_table4_phase2_maximal_sessions(benchmark, results_dir):
    topology = paper_example_topology()
    stream = paper_table3_stream()
    sessions = benchmark(lambda: maximal_sessions(stream, topology))
    assert {s.pages for s in sessions} == EXPECTED_TABLE4
    rendered = "\n".join("  [" + " ".join(pages) + "]"
                         for pages in sorted(EXPECTED_TABLE4))
    emit(results_dir, "tables3_4",
         "Tables 3-4 — Smart-SRA worked example "
         "(paper vs regenerated: exact)\n" + rendered + "\n")


def test_table4_full_smart_sra(benchmark):
    topology = paper_example_topology()
    stream = paper_table3_stream()
    sessions = benchmark(
        lambda: SmartSRA(topology).reconstruct_user(stream))
    assert {s.pages for s in sessions} == EXPECTED_TABLE4
