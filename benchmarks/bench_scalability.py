"""Extension A11 — reconstruction cost scaling with log size.

Measures Smart-SRA wall time as the log grows (by agent count) and checks
the growth is near-linear: per-user work is bounded by Phase-1 candidate
sizes (δ caps them), so doubling the users should roughly double the time,
not square it.  This is the scalability property that makes reactive
processing viable on real logs.
"""

from __future__ import annotations

import time

from _bench_utils import BENCH_SEED, emit
from repro.core.smart_sra import SmartSRA
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.simulator.population import simulate_population

_SIZES = (200, 400, 800)


def test_scaling_with_log_size(benchmark, results_dir):
    topology = paper_topology(seed=BENCH_SEED)
    smart = SmartSRA(topology)

    logs = {}
    for size in _SIZES:
        config = PAPER_DEFAULTS.simulation_config(n_agents=size,
                                                  seed=BENCH_SEED)
        logs[size] = simulate_population(topology, config).log_requests

    def run_all():
        timings = {}
        for size, log in logs.items():
            start = time.perf_counter()
            sessions = smart.reconstruct(log)
            timings[size] = (time.perf_counter() - start, len(log),
                             len(sessions))
        return timings

    timings = benchmark.pedantic(run_all, rounds=3, iterations=1)

    small_time, small_records, __ = timings[_SIZES[0]]
    large_time, large_records, __ = timings[_SIZES[-1]]
    records_ratio = large_records / small_records
    time_ratio = large_time / small_time
    # near-linear: time grows at most ~2x faster than the record count
    # (generous bound to absorb timer noise on a 3-round median).
    assert time_ratio < records_ratio * 2.0

    lines = [f"Extension A11 — Smart-SRA scaling (seed {BENCH_SEED})",
             "  agents  records  sessions  seconds  krec/s"]
    for size in _SIZES:
        seconds, records, sessions = timings[size]
        lines.append(f"  {size:>6}  {records:>7}  {sessions:>8}  "
                     f"{seconds:7.3f}  {records / seconds / 1000:6.1f}")
    emit(results_dir, "scalability", "\n".join(lines) + "\n")
