"""Extension A11 — reconstruction cost scaling with log size.

Measures Smart-SRA wall time as the log grows (by agent count) and checks
the growth is near-linear: per-user work is bounded by Phase-1 candidate
sizes (δ caps them), so doubling the users should roughly double the time,
not square it.  This is the scalability property that makes reactive
processing viable on real logs.

Root cause of the historical krec/s droop on growing logs (fixed by the
parallel-engine PR; kept here as the measurement's rationale):

* the earlier bench held *every* size's log live while timing, and
  reconstruction left GC running, so CPython's generational passes
  scanned an ever-larger heap mid-measurement — a measurement artifact,
  not algorithmic cost.  A ``gc.collect()`` fence now precedes every
  timing and the batch itself runs with GC paused (next bullet), so
  resident logs can no longer be scanned inside a timed region;
* mid-run collections scanned the growing *output* (reconstruction only
  allocates objects that stay live until the batch returns), which made
  per-record cost creep up with log size.  ``SessionReconstructor.
  reconstruct`` now pauses GC for the batch (``repro.parallel.paused_gc``);
* Phase 2 re-validated whole sessions per extension (O(L²) per session)
  and re-sorted predecessor sets per release — both now O(1) via
  boundary-only validation and the interned ``WebGraph.adjacency_index``.

Each row reports the best of several rounds (min is the standard
low-noise estimator for wall timings), with the rounds *interleaved*
across sizes so background-load drift on a shared host hits every size
equally instead of whichever size happened to run last.  A parallel
column (``workers=0``, the auto-detected CPU count) is asserted
output-identical to the serial run.
"""

from __future__ import annotations

import gc
import time

from _bench_utils import BENCH_QUICK, BENCH_SEED, emit
from repro.core.smart_sra import SmartSRA
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.parallel import available_cpus
from repro.simulator.population import simulate_population

_SIZES = (200, 400) if BENCH_QUICK else (200, 400, 800, 1600)
_ROUNDS = 2 if BENCH_QUICK else 9


def _timed(fn):
    gc.collect()
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_scaling_with_log_size(benchmark, results_dir, bench_metrics):
    topology = paper_topology(seed=BENCH_SEED)
    smart = SmartSRA(topology)
    logs = {}
    for size in _SIZES:
        config = PAPER_DEFAULTS.simulation_config(n_agents=size,
                                                  seed=BENCH_SEED)
        logs[size] = simulate_population(topology, config).log_requests
    rows = {}

    def run_all():
        # holding every log live is safe now that reconstruct() pauses GC
        # for the batch (no mid-run pass can scan them); interleaving the
        # rounds decorrelates the per-size minima from machine-load drift.
        serial = {size: float("inf") for size in _SIZES}
        parallel = {size: float("inf") for size in _SIZES}
        counts = {}
        for round_ in range(_ROUNDS):
            for size in _SIZES:
                seconds, sessions = _timed(
                    lambda: smart.reconstruct(logs[size]))
                serial[size] = min(serial[size], seconds)
                seconds, parallel_sessions = _timed(
                    lambda: smart.reconstruct(logs[size], workers=0))
                parallel[size] = min(parallel[size], seconds)
                assert list(sessions) == list(parallel_sessions)
                counts[size] = len(sessions)
        for size in _SIZES:
            rows[size] = (len(logs[size]), counts[size], serial[size],
                          parallel[size])
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    small_records, __, small_time, __ = rows[_SIZES[0]]
    large_records, __, large_time, __ = rows[_SIZES[-1]]
    records_ratio = large_records / small_records
    time_ratio = large_time / small_time
    # near-linear: time grows at most ~2x faster than the record count
    # (generous bound to absorb timer noise).
    assert time_ratio < records_ratio * 2.0
    if not BENCH_QUICK:
        # the droop fix itself: per-record serial throughput must hold
        # steady between the 400- and 800-agent rows (10% noise floor).
        krec = {size: rows[size][0] / rows[size][2] / 1000
                for size in _SIZES}
        assert krec[800] >= krec[400] * 0.90, krec

    lines = [f"Extension A11 — Smart-SRA scaling (seed {BENCH_SEED}, "
             f"best of {_ROUNDS}, {available_cpus()} CPU(s) visible)",
             "  interleaved rounds + batch GC pause; see module docstring",
             "  agents  records  sessions  serial_s  krec/s  par_s(auto)"]
    for size in _SIZES:
        records, sessions, serial_s, parallel_s = rows[size]
        lines.append(f"  {size:>6}  {records:>7}  {sessions:>8}  "
                     f"{serial_s:8.3f}  {records / serial_s / 1000:6.1f}  "
                     f"{parallel_s:11.3f}")
    emit(results_dir, "scalability", "\n".join(lines) + "\n")
