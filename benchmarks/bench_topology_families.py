"""Ablation A6 — does the topology family change who wins?

Runs the Table 5 operating point over the three generator families
(random k-out as in the paper, hierarchical tree+cross-links, power-law
preferential attachment) and checks Smart-SRA's dominance is not an
artifact of the random-graph family.
"""

from __future__ import annotations

from _bench_utils import BENCH_AGENTS, BENCH_SEED, emit
from repro.evaluation.experiments import PAPER_DEFAULTS
from repro.evaluation.harness import run_trial
from repro.topology.generators import (
    hierarchical_site,
    power_law_site,
    random_site,
)

FAMILIES = {
    "random": lambda: random_site(300, 15.0, seed=BENCH_SEED),
    "hierarchical": lambda: hierarchical_site(300, branching=4,
                                              seed=BENCH_SEED),
    "power-law": lambda: power_law_site(300, links_per_page=8,
                                        seed=BENCH_SEED),
}


def test_topology_families(benchmark, results_dir):
    config = PAPER_DEFAULTS.simulation_config(
        n_agents=BENCH_AGENTS, seed=BENCH_SEED)

    def run_families():
        return {name: run_trial(factory(), config)
                for name, factory in FAMILIES.items()}

    trials = benchmark.pedantic(run_families, rounds=1, iterations=1)

    lines = [f"Ablation A6 — accuracy (%) by topology family "
             f"[{BENCH_AGENTS} agents]",
             "  family         heur1  heur2  heur3  heur4"]
    for name, trial in trials.items():
        accs = trial.accuracies()
        assert accs["heur4"] > max(accs["heur1"], accs["heur2"]), (
            f"Smart-SRA must beat the time heuristics on {name}")
        lines.append(
            f"  {name:<13}  "
            + "  ".join(f"{accs[h] * 100:5.1f}"
                        for h in ("heur1", "heur2", "heur3", "heur4")))
    emit(results_dir, "topology_families", "\n".join(lines) + "\n")
