"""Helpers shared by the benchmark modules.

Environment knobs:

* ``REPRO_BENCH_AGENTS`` — agents per sweep point (default 800; the paper
  uses 10,000 — set it for a full-scale run).
* ``REPRO_BENCH_SEED`` — base seed (default 0).
* ``REPRO_BENCH_QUICK`` — any non-empty value shrinks the perf benches to
  a correctness smoke (small workloads, no timing assertions) for CI.
"""

from __future__ import annotations

import json
import os
import pathlib

#: agents per sweep point (paper: 10,000).
BENCH_AGENTS = int(os.environ.get("REPRO_BENCH_AGENTS", "800"))
#: base seed for topology + simulation.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
#: CI quick mode: correctness assertions only, timing claims skipped.
BENCH_QUICK = bool(os.environ.get("REPRO_BENCH_QUICK", ""))


def emit(results_dir: pathlib.Path, name: str, text: str,
         csv: str | None = None) -> None:
    """Print a result block and persist it under ``results_dir``."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text, encoding="utf-8")
    if csv is not None:
        (results_dir / f"{name}.csv").write_text(csv, encoding="utf-8")


def write_metrics_sidecar(results_dir: pathlib.Path, name: str,
                          registry) -> pathlib.Path:
    """Persist a registry snapshot as ``<name>.metrics.json``.

    The sidecar rides next to the usual text/CSV results so a benchmark
    run's internal counters (requests fed, sessions emitted, per-phase
    wall time) survive alongside its headline numbers.
    """
    path = results_dir / f"{name}.metrics.json"
    path.write_text(json.dumps(registry.snapshot(), indent=1,
                               sort_keys=True) + "\n", encoding="utf-8")
    return path
