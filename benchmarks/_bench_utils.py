"""Helpers shared by the benchmark modules.

Environment knobs:

* ``REPRO_BENCH_AGENTS`` — agents per sweep point (default 800; the paper
  uses 10,000 — set it for a full-scale run).
* ``REPRO_BENCH_SEED`` — base seed (default 0).
"""

from __future__ import annotations

import os
import pathlib

#: agents per sweep point (paper: 10,000).
BENCH_AGENTS = int(os.environ.get("REPRO_BENCH_AGENTS", "800"))
#: base seed for topology + simulation.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


def emit(results_dir: pathlib.Path, name: str, text: str,
         csv: str | None = None) -> None:
    """Print a result block and persist it under ``results_dir``."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text, encoding="utf-8")
    if csv is not None:
        (results_dir / f"{name}.csv").write_text(csv, encoding="utf-8")
