"""Extension A21 — crash-safe sharded streaming runtime.

Streams one multi-user workload through the sharded runtime at 1, 2 and
4 shards (fault-free) and reports sustained throughput per shard count,
then kills both workers of a 2-shard run mid-stream and reports the
failover recovery times.  Every configuration — including the kill run —
must seal output byte-identical (canonical digest) to the serial
governed pipeline, and every ledger must reconcile; those are asserted,
so the bench doubles as a correctness gate.

Reading the numbers: this container has a single CPU core, so N worker
processes time-slice rather than parallelize — the shard sweep measures
the *coordination overhead* of the runtime (pipes, framing, capsule
acks), not a speedup.  On a multi-core host the same sweep shows the
scaling story; the recovery column is hardware-independent either way.
"""

from __future__ import annotations

import os
import time

import pytest

from _bench_utils import BENCH_QUICK, BENCH_SEED, emit
from repro.faults.execution import use_execution_faults
from repro.parallel import RetryPolicy
from repro.sessions.model import Request, SessionSet
from repro.streaming import ShardedConfig, ShardedStreamingRuntime
from repro.streaming.governor import GovernorConfig
from repro.streaming.pipeline import streaming_smart_sra
from repro.topology.generators import random_site

_SHARD_COUNTS = (1, 2) if BENCH_QUICK else (1, 2, 4)
_REQUESTS = 4_000 if BENCH_QUICK else 40_000
_USERS = 60 if BENCH_QUICK else 400

#: generous budget: the byte-identity contract requires global-budget
#: eviction (shard-order dependent) to stay out of play.
_GOVERNOR = GovernorConfig(memory_budget=1 << 30, per_user_cap=128)

#: fast seeded backoff so recovery timings measure replay, not sleeps.
_RETRY = RetryPolicy(max_retries=3, deadline=120.0, backoff_base=0.01,
                     backoff_cap=0.05, seed=BENCH_SEED)


@pytest.fixture(scope="module")
def workload():
    """A steady multi-user stream wide enough to occupy every shard."""
    topology = random_site(120, 5.0, seed=BENCH_SEED)
    requests = []
    clock = 0.0
    for i in range(_REQUESTS):
        clock += 2.0
        requests.append(Request(clock, f"user{i % _USERS}",
                                f"P{i % 90}"))
    return topology, tuple(requests)


def _serial_run(topology, requests):
    pipeline = streaming_smart_sra(topology, governor=_GOVERNOR)
    start = time.perf_counter()
    sessions = pipeline.feed_many(requests)
    sessions.extend(pipeline.flush())
    elapsed = time.perf_counter() - start
    return SessionSet(sessions).canonical_digest(), elapsed


def _sharded_run(topology, requests, shards, *faults):
    runtime = ShardedStreamingRuntime(
        topology, governor=_GOVERNOR,
        sharded=ShardedConfig(shards=shards, ack_interval=64,
                              retry=_RETRY))
    start = time.perf_counter()
    if faults:
        with use_execution_faults(*faults):
            result = runtime.run(requests, flush_interval=600.0)
    else:
        result = runtime.run(requests, flush_interval=600.0)
    return result, time.perf_counter() - start


def test_sharded_scaling_and_failover(workload, results_dir,
                                      bench_metrics):
    topology, requests = workload
    expected, serial_elapsed = _serial_run(topology, requests)
    serial_krec = len(requests) / serial_elapsed / 1000.0

    lines = [
        "Extension A21 — crash-safe sharded streaming runtime",
        f"  workload:        {len(requests)} requests, {_USERS} users, "
        f"seed {BENCH_SEED}, quick={'yes' if BENCH_QUICK else 'no'}",
        f"  host cores:      {os.cpu_count() or 1} (single-core hosts "
        f"time-slice: read krec/s as coordination overhead, not scaling)",
        f"  serial baseline: {serial_krec:7.1f} krec/s (in-process "
        f"governed pipeline)",
        "",
        "  shards    krec/s   vs-serial   failovers   sealed-sessions",
    ]
    for shards in _SHARD_COUNTS:
        result, elapsed = _sharded_run(topology, requests, shards)
        stats = result.stats
        assert stats.reconciles(), stats
        assert stats.fed == len(requests)
        assert result.sessions.canonical_digest() == expected, (
            f"{shards}-shard output diverged from serial")
        krec = stats.fed / elapsed / 1000.0
        lines.append(
            f"  {shards:>6}  {krec:8.1f}   {krec / serial_krec:8.2f}x"
            f"   {stats.failovers:>9}   {stats.sealed_sessions:>15}")
        bench_metrics.gauge(f"bench.sharded.krec_s.{shards}").set(
            round(krec, 2))

    # the failover leg: both workers of a 2-shard run die mid-stream.
    kill_at = max(50, _REQUESTS // 40)
    result, elapsed = _sharded_run(
        topology, requests, 2,
        f"kill-worker:0:{kill_at}", f"kill-worker:1:{kill_at * 2}")
    stats = result.stats
    assert stats.failovers == 2, stats
    assert stats.reconciles(), stats
    assert result.sessions.canonical_digest() == expected, (
        "output diverged after failover")
    krec = stats.fed / elapsed / 1000.0
    recoveries_ms = [seconds * 1000.0 for seconds in
                     result.recovery_seconds]
    lines += [
        "",
        "  failover run (2 shards, both workers killed mid-stream):",
        f"    throughput:      {krec:7.1f} krec/s including recovery",
        f"    events replayed: {stats.replayed} "
        f"(of {stats.fed} fed; ledger reconciles, asserted)",
        f"    recovery times:  "
        + ", ".join(f"{ms:.0f} ms" for ms in recoveries_ms)
        + " (failover-to-first-ack)",
        f"    sealed output:   byte-identical to serial "
        f"(canonical digest, asserted)",
        "",
    ]
    for index, ms in enumerate(recoveries_ms):
        bench_metrics.gauge(f"bench.sharded.recovery_ms.{index}").set(
            round(ms, 1))
    bench_metrics.gauge("bench.sharded.failover_krec_s").set(
        round(krec, 2))
    emit(results_dir, "sharded", "\n".join(lines))
