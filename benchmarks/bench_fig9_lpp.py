"""Figure 9 — real accuracy vs LPP (0% … 90%), four heuristics.

STP and NIP fixed at Table 5's values; LPP (browser-cache backtracking)
varied.  Expected shape (paper): accuracy decreases for every heuristic as
LPP grows, and Smart-SRA stays clearly ahead — backtracks hide session
boundaries that only the topology can recover.
"""

from __future__ import annotations

from _bench_utils import BENCH_AGENTS, BENCH_SEED, emit
from repro.evaluation.experiments import fig9_sweep
from repro.evaluation.ascii_chart import render_chart
from repro.evaluation.svg_chart import save_svg
from repro.evaluation.report import render_csv, render_sweep_table


def test_fig9_lpp_sweep(benchmark, results_dir):
    result = benchmark.pedantic(
        fig9_sweep, kwargs={"n_agents": BENCH_AGENTS, "seed": BENCH_SEED},
        rounds=1, iterations=1)
    series = result.series()

    for name in ("heur1", "heur2", "heur3", "heur4"):
        low = sum(series[name][:2]) / 2    # LPP 0-10%
        high = sum(series[name][-2:]) / 2  # LPP 80-90%
        assert high < low, f"{name} should degrade with LPP"
    for index in range(len(result.values)):
        others = max(series["heur1"][index], series["heur2"][index],
                     series["heur3"][index])
        # small tolerance guards seed noise in low-agent smoke runs;
        # at the default scale Smart-SRA dominates strictly.
        assert series["heur4"][index] >= others - 0.02, (
            f"Smart-SRA must dominate at LPP={result.values[index]}")
    # the paper: at large LPP Smart-SRA is at least ~40% better than the
    # best other heuristic.
    best_other_tail = max(series[name][-1]
                          for name in ("heur1", "heur2", "heur3"))
    assert series["heur4"][-1] > 1.2 * best_other_tail

    chart = render_chart(result, title="")
    save_svg(result, str(results_dir / "fig9.svg"),
             title="Real accuracy vs LPP (matched metric)")
    emit(results_dir, "fig9",
         render_sweep_table(
             result,
             f"Figure 9 — real accuracy (%) vs LPP "
             f"[matched metric, {BENCH_AGENTS} agents/point]")
         + "\n" + chart,
         render_csv(result))
