"""Ablation A5 — downstream impact of reconstruction quality.

The paper motivates session reconstruction as the input step for pattern
discovery.  This bench closes that loop: mine frequent navigation patterns
(and train a next-page predictor) on each heuristic's reconstruction, and
compare against the same artifacts mined from the ground truth.

Reported per heuristic:

* **pattern overlap** — Jaccard overlap of the frequent (length ≥ 2)
  navigation patterns vs those mined from the ground truth;
* **predictor hit rate** — top-3 next-page hit rate of a Markov model
  trained on the reconstruction, evaluated on ground-truth transitions.

Expected: Smart-SRA's patterns agree with ground truth at least as well as
any baseline's — better sessions mine better patterns.
"""

from __future__ import annotations

from _bench_utils import BENCH_AGENTS, BENCH_SEED, emit
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.evaluation.harness import standard_heuristics
from repro.mining.prediction import MarkovPredictor
from repro.mining.sequential import frequent_sequences, pattern_overlap
from repro.simulator.population import simulate_population

_MIN_SUPPORT = 0.002


def test_downstream_mining(benchmark, results_dir):
    topology = paper_topology(seed=BENCH_SEED)
    config = PAPER_DEFAULTS.simulation_config(
        n_agents=BENCH_AGENTS, seed=BENCH_SEED)

    def run_study():
        simulation = simulate_population(topology, config)
        truth_patterns = frequent_sequences(
            simulation.ground_truth, min_support=_MIN_SUPPORT, max_length=4)
        outcome = {}
        for name, heuristic in standard_heuristics(topology).items():
            sessions = heuristic.reconstruct(simulation.log_requests)
            mined = frequent_sequences(sessions, min_support=_MIN_SUPPORT,
                                       max_length=4)
            overlap = pattern_overlap(truth_patterns, mined)
            predictor = MarkovPredictor().fit(sessions)
            hit_rate = predictor.hit_rate(simulation.ground_truth, top=3)
            outcome[name] = (overlap, hit_rate)
        return outcome

    outcome = benchmark.pedantic(run_study, rounds=1, iterations=1)

    time_best_overlap = max(outcome["heur1"][0], outcome["heur2"][0])
    assert outcome["heur4"][0] >= time_best_overlap, (
        "Smart-SRA's mined patterns should agree with ground truth at "
        "least as well as the time heuristics'")

    lines = [f"Ablation A5 — downstream mining fidelity "
             f"[{BENCH_AGENTS} agents, min support {_MIN_SUPPORT}]",
             "  heuristic  pattern-overlap  predictor-hit@3"]
    for name in ("heur1", "heur2", "heur3", "heur4"):
        overlap, hit_rate = outcome[name]
        lines.append(f"  {name:>9}  {overlap * 100:14.1f}%"
                     f"  {hit_rate * 100:14.1f}%")
    emit(results_dir, "downstream_mining", "\n".join(lines) + "\n")
