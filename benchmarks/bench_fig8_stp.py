"""Figure 8 — real accuracy vs STP (1% … 20%), four heuristics.

Regenerates the paper's first sweep: LPP and NIP fixed at Table 5's 30%,
STP varied from 1% to 20%.  The benchmark times one full sweep; the
resulting series are printed and written to ``results/fig8.{txt,csv}``.

Expected shape (paper): every heuristic improves as STP grows (shorter
sessions are easier), Smart-SRA (heur4) dominates throughout.
"""

from __future__ import annotations

from _bench_utils import BENCH_AGENTS, BENCH_SEED, emit
from repro.evaluation.experiments import fig8_sweep
from repro.evaluation.ascii_chart import render_chart
from repro.evaluation.svg_chart import save_svg
from repro.evaluation.report import render_csv, render_sweep_table


def test_fig8_stp_sweep(benchmark, results_dir):
    result = benchmark.pedantic(
        fig8_sweep, kwargs={"n_agents": BENCH_AGENTS, "seed": BENCH_SEED},
        rounds=1, iterations=1)
    series = result.series()

    # shape assertions, not absolute numbers (see EXPERIMENTS.md):
    for name in ("heur1", "heur2", "heur3", "heur4"):
        low = sum(series[name][:3]) / 3    # STP 1-3%
        high = sum(series[name][-3:]) / 3  # STP 18-20%
        assert high > low, f"{name} should improve with STP"
    for index in range(len(result.values)):
        others = max(series["heur1"][index], series["heur2"][index],
                     series["heur3"][index])
        # small tolerance guards seed noise in low-agent smoke runs;
        # at the default scale Smart-SRA dominates strictly.
        assert series["heur4"][index] >= others - 0.02, (
            f"Smart-SRA must dominate at STP={result.values[index]}")

    chart = render_chart(result, title="")
    save_svg(result, str(results_dir / "fig8.svg"),
             title="Real accuracy vs STP (matched metric)")
    emit(results_dir, "fig8",
         render_sweep_table(
             result,
             f"Figure 8 — real accuracy (%) vs STP "
             f"[matched metric, {BENCH_AGENTS} agents/point]")
         + "\n" + chart,
         render_csv(result))
