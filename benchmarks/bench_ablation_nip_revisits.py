"""Ablation A1 — NIP jump targets: revisits allowed vs un-accessed only.

The paper's behavior-1 prose and its Figure-7 pseudocode disagree (see
DESIGN.md); this bench quantifies the difference at a high NIP value where
it matters most.  With revisits allowed (our default), a revisited entry
page is served from cache and the session boundary disappears from the
log — reconstruction gets harder for every heuristic, matching the
monotone decay of the paper's Figure 10.
"""

from __future__ import annotations

from _bench_utils import BENCH_AGENTS, BENCH_SEED, emit
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.evaluation.harness import run_trial


def test_nip_revisit_policy(benchmark, results_dir):
    topology = paper_topology(seed=BENCH_SEED)
    base = PAPER_DEFAULTS.simulation_config(
        n_agents=BENCH_AGENTS, seed=BENCH_SEED, nip=0.6)

    def run_both():
        return (run_trial(topology, base.with_(nip_revisits=True)),
                run_trial(topology, base.with_(nip_revisits=False)))

    revisit_trial, fresh_trial = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    revisits = revisit_trial.accuracies()
    fresh = fresh_trial.accuracies()

    # hiding boundaries in the cache must hurt the topology-aware
    # heuristics; with fresh-only jumps every boundary is detectable.
    assert revisits["heur4"] < fresh["heur4"]
    assert revisits["heur3"] < fresh["heur3"]

    lines = [f"Ablation A1 — NIP=0.6 jump policy [{BENCH_AGENTS} agents]",
             "  heuristic  revisits-allowed  un-accessed-only"]
    for name in ("heur1", "heur2", "heur3", "heur4"):
        lines.append(f"  {name:>9}  {revisits[name] * 100:15.1f}%"
                     f"  {fresh[name] * 100:15.1f}%")
    emit(results_dir, "ablation_nip_revisits", "\n".join(lines) + "\n")
