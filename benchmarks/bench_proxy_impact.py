"""Extension A12 — the proxy problem, quantified.

§1 of the paper: "caching performed by the clients' browsers and proxy
servers will make web log data even less reliable."  This bench puts a
shared caching proxy in front of groups of agents and measures (a) how
much of the traffic the server log loses and (b) what that does to every
heuristic's accuracy.

Expected: accuracy decreases monotonically with proxy group size for all
heuristics, with Smart-SRA remaining the best reactive option — topology
lets it re-infer some of the proxy-hidden structure, but nothing reactive
recovers pages the server never saw.
"""

from __future__ import annotations

from _bench_utils import BENCH_AGENTS, BENCH_SEED, emit
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.evaluation.harness import run_trial

GROUP_SIZES = (1, 5, 20)


def test_proxy_impact(benchmark, results_dir):
    topology = paper_topology(seed=BENCH_SEED)
    base = PAPER_DEFAULTS.simulation_config(n_agents=BENCH_AGENTS,
                                            seed=BENCH_SEED)

    def run_study():
        return {size: run_trial(topology,
                                base.with_(proxy_group_size=size))
                for size in GROUP_SIZES}

    trials = benchmark.pedantic(run_study, rounds=1, iterations=1)

    heur4_series = [trials[size].accuracies()["heur4"]
                    for size in GROUP_SIZES]
    assert heur4_series == sorted(heur4_series, reverse=True), (
        "accuracy must fall as the proxy swallows more traffic")
    for size in GROUP_SIZES:
        accs = trials[size].accuracies()
        assert accs["heur4"] >= max(accs["heur1"], accs["heur2"]), (
            f"Smart-SRA must stay best at proxy group size {size}")

    lines = [f"Extension A12 — shared-proxy impact [{BENCH_AGENTS} agents]",
             "  group  hidden%  log-records  heur1  heur2  heur3  heur4"]
    for size in GROUP_SIZES:
        trial = trials[size]
        accs = trial.accuracies()
        simulation = trial.simulation
        lines.append(
            f"  {size:>5}  {simulation.cache_hit_rate * 100:6.1f}%  "
            f"{len(simulation.log_requests):>11}  "
            + "  ".join(f"{accs[h] * 100:5.1f}"
                        for h in ("heur1", "heur2", "heur3", "heur4")))
    emit(results_dir, "proxy_impact", "\n".join(lines) + "\n")
