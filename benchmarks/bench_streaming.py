"""Extension A8 — streaming Smart-SRA: cost and equivalence.

Times the incremental pipeline against batch Smart-SRA on the same log and
verifies the outputs are identical (same sessions, emitted online).  Also
reports the pipeline's peak buffering — the memory story that makes
streaming worthwhile on logs that do not fit in RAM — and the cost of
attaching a live :class:`~repro.obs.TimelineSampler` to the hot path
(asserted < 3% outside quick mode).
"""

from __future__ import annotations

import gc
import time

import pytest

from _bench_utils import BENCH_QUICK, BENCH_SEED, emit
from repro.core.smart_sra import SmartSRA
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.obs import Registry, TimelineSampler, use_registry
from repro.simulator.population import simulate_population
from repro.streaming.pipeline import streaming_smart_sra

_AGENTS = 400
_OVERHEAD_ROUNDS = 2 if BENCH_QUICK else 5
#: acceptance bound on timeline-sampling overhead (ISSUE 7).
_MAX_OVERHEAD = 0.03


@pytest.fixture(scope="module")
def workload(bench_metrics):
    topology = paper_topology(seed=BENCH_SEED)
    config = PAPER_DEFAULTS.simulation_config(n_agents=_AGENTS,
                                              seed=BENCH_SEED)
    simulation = simulate_population(topology, config)
    return topology, simulation.log_requests


def test_streaming_throughput(benchmark, workload, results_dir):
    topology, log = workload

    def run_pipeline():
        pipeline = streaming_smart_sra(topology)
        emitted = pipeline.feed_many(log)
        emitted.extend(pipeline.flush())
        return emitted, pipeline.stats()

    emitted, stats = benchmark(run_pipeline)

    batch = SmartSRA(topology).reconstruct(log)
    assert sorted((s.user_id, s.pages, s.start_time) for s in emitted) \
        == sorted((s.user_id, s.pages, s.start_time) for s in batch)

    emit(results_dir, "streaming",
         f"Extension A8 — streaming Smart-SRA [{_AGENTS} agents]\n"
         f"  log records fed:      {stats.fed_requests}\n"
         f"  sessions emitted:     {stats.emitted_sessions}\n"
         f"  output == batch:      yes (asserted)\n")


def test_batch_reference(benchmark, workload):
    """Batch Smart-SRA on the identical log, for side-by-side timing."""
    topology, log = workload
    result = benchmark(lambda: SmartSRA(topology).reconstruct(log))
    assert len(result) > 0


def test_timeline_sampling_overhead(workload, results_dir):
    """A live TimelineSampler must cost < 3% on the streaming hot path.

    The sampler observes from its own daemon thread — the pipeline only
    pays registry-lock contention during each snapshot.  Measured
    best-of-N with interleaved rounds (bare, then sampled, per round) so
    host-load drift hits both variants equally; sampling runs at 20 ms —
    50x denser than the 1 s default — to make the bound conservative.
    """
    topology, log = workload

    def run_stream(registry):
        gc.collect()
        with use_registry(registry):
            start = time.perf_counter()
            pipeline = streaming_smart_sra(topology)
            emitted = pipeline.feed_many(log)
            emitted.extend(pipeline.flush())
            seconds = time.perf_counter() - start
        return seconds, len(emitted)

    bare = sampled = float("inf")
    sessions = points = 0
    for __ in range(_OVERHEAD_ROUNDS):
        seconds, sessions = run_stream(Registry())
        bare = min(bare, seconds)
        registry = Registry()
        sampler = TimelineSampler(registry, interval=0.02, capacity=4096)
        sampler.start()
        try:
            seconds, sampled_sessions = run_stream(registry)
        finally:
            sampler.stop()
        assert sampled_sessions == sessions
        points = len(sampler.points())
        sampled = min(sampled, seconds)

    overhead = sampled / bare - 1.0
    if not BENCH_QUICK:
        assert overhead < _MAX_OVERHEAD, (bare, sampled, overhead)

    emit(results_dir, "timeline_overhead",
         f"Extension A8b — timeline sampling overhead [{_AGENTS} agents, "
         f"best of {_OVERHEAD_ROUNDS}]\n"
         f"  bare streaming run:    {bare:8.3f}s\n"
         f"  with 20ms sampler:     {sampled:8.3f}s "
         f"({points} points retained)\n"
         f"  overhead:              {overhead:+8.1%} "
         f"(bound {_MAX_OVERHEAD:.0%}"
         f"{', not asserted in quick mode' if BENCH_QUICK else ''})\n")
