"""Extension A8 — streaming Smart-SRA: cost and equivalence.

Times the incremental pipeline against batch Smart-SRA on the same log and
verifies the outputs are identical (same sessions, emitted online).  Also
reports the pipeline's peak buffering — the memory story that makes
streaming worthwhile on logs that do not fit in RAM.
"""

from __future__ import annotations

import pytest

from _bench_utils import BENCH_SEED, emit
from repro.core.smart_sra import SmartSRA
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.simulator.population import simulate_population
from repro.streaming.pipeline import streaming_smart_sra

_AGENTS = 400


@pytest.fixture(scope="module")
def workload():
    topology = paper_topology(seed=BENCH_SEED)
    config = PAPER_DEFAULTS.simulation_config(n_agents=_AGENTS,
                                              seed=BENCH_SEED)
    simulation = simulate_population(topology, config)
    return topology, simulation.log_requests


def test_streaming_throughput(benchmark, workload, results_dir):
    topology, log = workload

    def run_pipeline():
        pipeline = streaming_smart_sra(topology)
        emitted = pipeline.feed_many(log)
        emitted.extend(pipeline.flush())
        return emitted, pipeline.stats()

    emitted, stats = benchmark(run_pipeline)

    batch = SmartSRA(topology).reconstruct(log)
    assert sorted((s.user_id, s.pages, s.start_time) for s in emitted) \
        == sorted((s.user_id, s.pages, s.start_time) for s in batch)

    emit(results_dir, "streaming",
         f"Extension A8 — streaming Smart-SRA [{_AGENTS} agents]\n"
         f"  log records fed:      {stats.fed_requests}\n"
         f"  sessions emitted:     {stats.emitted_sessions}\n"
         f"  output == batch:      yes (asserted)\n")


def test_batch_reference(benchmark, workload):
    """Batch Smart-SRA on the identical log, for side-by-side timing."""
    topology, log = workload
    result = benchmark(lambda: SmartSRA(topology).reconstruct(log))
    assert len(result) > 0
