"""Ablation A2 — Smart-SRA's sensitivity to the δ/ρ thresholds.

The paper adopts δ = 30 min (Catledge & Pitkow) and ρ = 10 min without
sweeping them.  This bench varies both around the defaults at the Table 5
operating point and reports the accuracy surface — showing the defaults sit
on a broad plateau (the thresholds are not doing the heavy lifting;
the topology phase is).
"""

from __future__ import annotations

from _bench_utils import BENCH_AGENTS, BENCH_SEED, emit
from repro.core.config import SmartSRAConfig
from repro.core.smart_sra import SmartSRA
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.evaluation.harness import run_trial
from repro.simulator.population import simulate_population

_MIN = 60.0
RHO_VALUES = (5.0, 10.0, 20.0)       # minutes
DELTA_VALUES = (20.0, 30.0, 60.0)    # minutes


def test_threshold_sensitivity(benchmark, results_dir):
    topology = paper_topology(seed=BENCH_SEED)
    config = PAPER_DEFAULTS.simulation_config(
        n_agents=BENCH_AGENTS, seed=BENCH_SEED)

    def run_grid():
        simulation = simulate_population(topology, config)
        from repro.evaluation.metrics import evaluate_reconstruction
        surface = {}
        for delta in DELTA_VALUES:
            for rho in RHO_VALUES:
                smart = SmartSRA(topology, SmartSRAConfig(
                    max_duration=delta * _MIN, max_gap=rho * _MIN))
                sessions = smart.reconstruct(simulation.log_requests)
                report = evaluate_reconstruction(
                    f"d{delta}r{rho}", simulation.ground_truth, sessions)
                surface[(delta, rho)] = report.matched_accuracy
        return surface

    surface = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    default = surface[(30.0, 10.0)]
    # the defaults must be within ~10 points of the grid optimum — a
    # plateau, not a knife edge.
    assert default > max(surface.values()) - 0.10

    lines = [f"Ablation A2 — Smart-SRA accuracy (%) vs (δ, ρ) "
             f"[{BENCH_AGENTS} agents]",
             "  δ\\ρ   " + "  ".join(f"{rho:>5.0f}m" for rho in RHO_VALUES)]
    for delta in DELTA_VALUES:
        cells = "  ".join(f"{surface[(delta, rho)] * 100:5.1f} "
                          for rho in RHO_VALUES)
        lines.append(f"  {delta:>3.0f}m  {cells}")
    emit(results_dir, "ablation_thresholds", "\n".join(lines) + "\n")
