"""Extension A19 — bounded-memory streaming under adversarial traffic.

Streams a crawler + NAT workload whose *ungoverned* peak tracked state is
at least 10x the configured budget through the governed pipeline at fixed
budgets, and reports throughput (krec/s), peak tracked bytes, peak
process RSS and the degradation ledger per budget.  The acceptance claim
is the governor's contract: the workload completes, peak tracked state
stays under the budget, and the stats ledger reconciles — nothing is
silently lost, only visibly degraded.
"""

from __future__ import annotations

import resource
import time

import pytest

from _bench_utils import BENCH_QUICK, BENCH_SEED, emit
from repro.simulator.adversarial import adversarial_workload
from repro.streaming.governor import GovernorConfig
from repro.streaming.pipeline import streaming_smart_sra
from repro.topology.generators import random_site

#: fixed budgets under test (bytes).
_BUDGETS = (8 * 1024,) if BENCH_QUICK else (16 * 1024, 32 * 1024)
_PER_USER_CAP = 64


@pytest.fixture(scope="module")
def workload():
    """Crawler+NAT traffic oversubscribing every budget by >= 10x.

    One-second crawler cadence keeps each crawler's candidate open until
    the span rule (δ) closes it at ~1800 buffered requests, so the
    ungoverned pipeline tracks hundreds of KiB while the governed one is
    asked to live in tens.
    """
    topology = random_site(150, 6.0, seed=BENCH_SEED)
    requests = adversarial_workload(
        topology,
        crawlers=3 if BENCH_QUICK else 5,
        crawler_requests=1200 if BENCH_QUICK else 2500,
        crawler_interval=1.0,
        nat_pools=1 if BENCH_QUICK else 2,
        humans_per_pool=8 if BENCH_QUICK else 12,
        normal_agents=4 if BENCH_QUICK else 8,
        seed=BENCH_SEED)
    return topology, requests


def _ungoverned_peak(topology, requests) -> int:
    """Peak tracked bytes with a budget no workload can reach.

    Phase-1 buffering (the memory story) is identical whatever the
    finisher, so the probe uses the identity finisher — running full
    Phase 2 over un-capped crawler candidates would only burn time.
    """
    from repro.streaming.pipeline import streaming_phase1
    probe = streaming_phase1(
        governor=GovernorConfig(memory_budget=1 << 30))
    probe.feed_many(requests)
    probe.flush()
    return probe.stats().peak_tracked_bytes


def test_overload_bounded_memory(workload, results_dir, bench_metrics):
    topology, requests = workload
    unbounded = _ungoverned_peak(topology, requests)
    # the acceptance precondition: the workload genuinely oversubscribes
    # every budget under test by an order of magnitude.
    assert unbounded >= 10 * max(_BUDGETS), (
        f"workload peaks at {unbounded}B ungoverned; not adversarial "
        f"enough for a {max(_BUDGETS)}B budget")

    lines = [
        f"Extension A19 — bounded-memory streaming under adversarial "
        f"traffic",
        f"  workload:            {len(requests)} requests "
        f"(crawlers + NAT pools + normal agents, seed {BENCH_SEED})",
        f"  ungoverned peak:     {unbounded} B tracked "
        f"({unbounded / max(_BUDGETS):.1f}x the largest budget)",
        f"  per-user cap:        {_PER_USER_CAP} requests, "
        f"policy evict, quick={'yes' if BENCH_QUICK else 'no'}",
        "",
        "  budget      krec/s   peak-tracked   peak-RSS     evict  "
        "quarantine  shed",
    ]
    for budget in _BUDGETS:
        governor = GovernorConfig(
            memory_budget=budget, per_user_cap=_PER_USER_CAP,
            overload_policy="evict", quarantine_after=2,
            quarantine_cap=4 * _PER_USER_CAP)
        pipeline = streaming_smart_sra(topology, governor=governor,
                                       late_policy="drop")
        start = time.perf_counter()
        pipeline.feed_many(requests)
        pipeline.flush()
        elapsed = time.perf_counter() - start
        stats = pipeline.stats()

        # the contract under test: completion, boundedness, accounting.
        assert stats.fed_requests == len(requests)
        assert stats.peak_tracked_bytes <= budget, (
            f"budget {budget}: peak {stats.peak_tracked_bytes}")
        assert stats.reconciles(), stats

        krec_s = stats.fed_requests / elapsed / 1000.0
        rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        lines.append(
            f"  {budget:>7}B  {krec_s:7.1f}   {stats.peak_tracked_bytes:>9} B"
            f"   {rss_kib:>7} KiB  {stats.evicted_requests:>6}"
            f"  {stats.quarantine_flushes:>10}  {stats.shed_requests:>4}")
        bench_metrics.gauge(
            f"bench.overload.peak_tracked.{budget}").set(
                stats.peak_tracked_bytes)
        bench_metrics.gauge(
            f"bench.overload.krec_s.{budget}").set(round(krec_s, 2))

    lines.append("")
    lines.append("  peak tracked bytes stayed under every budget; ledgers "
                 "reconcile (asserted)")
    emit(results_dir, "overload", "\n".join(lines) + "\n")


def test_overload_shed_policy_throughput(workload, results_dir,
                                         bench_metrics):
    """Shed is the cheap admission-control baseline: no rebalancing work,
    requests refused at the door once the budget is full."""
    topology, requests = workload
    budget = min(_BUDGETS)
    governor = GovernorConfig(memory_budget=budget,
                              per_user_cap=_PER_USER_CAP,
                              overload_policy="shed",
                              quarantine_after=2,
                              quarantine_cap=4 * _PER_USER_CAP)
    pipeline = streaming_smart_sra(topology, governor=governor,
                                   late_policy="drop")
    start = time.perf_counter()
    pipeline.feed_many(requests)
    pipeline.flush()
    elapsed = time.perf_counter() - start
    stats = pipeline.stats()
    assert stats.peak_tracked_bytes <= budget
    assert stats.reconciles()
    assert stats.shed_requests > 0
    krec_s = stats.fed_requests / elapsed / 1000.0
    emit(results_dir, "overload_shed",
         f"Extension A19 (companion) — shed-policy baseline "
         f"[{budget} B budget]\n"
         f"  requests presented:   {stats.fed_requests}\n"
         f"  requests shed:        {stats.shed_requests} "
         f"({stats.shed_requests / stats.fed_requests:.1%})\n"
         f"  throughput:           {krec_s:.1f} krec/s\n"
         f"  peak tracked:         {stats.peak_tracked_bytes} B "
         f"(bounded, asserted)\n")
    bench_metrics.gauge("bench.overload.shed_requests").set(
        stats.shed_requests)
