"""Extension A17 — the parallel reconstruction engine (repro.parallel).

Session reconstruction is embarrassingly parallel across users, so the
engine shards the request stream by ``user_id``, fans the shards out over
a process pool, and reassembles results in shard order.  The contract
this bench enforces on every run, regardless of hardware:

* **identity** — for every worker count, the reconstructed ``SessionSet``
  is exactly the serial one (the ISSUE's byte-identical guarantee);
* **exact observability** — per-worker metric registries merged into the
  parent reconcile with a serial run: every counter and every non-time
  histogram bucket matches (time-valued sums legitimately differ — wall
  durations depend on scheduling).

The *speedup* claim is asserted only where it is physically measurable:
hosts exposing >= 4 CPUs to this process, and not in quick mode.  On a
single-visible-CPU container a process pool cannot beat the serial loop
— the results file records the visible CPU count so committed numbers
are never read as more than the host could deliver.
"""

from __future__ import annotations

import gc
import time

from _bench_utils import BENCH_QUICK, BENCH_SEED, emit
from repro.core.smart_sra import SmartSRA
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.obs import Registry, use_registry
from repro.parallel import available_cpus
from repro.simulator.population import simulate_population

_AGENTS = 120 if BENCH_QUICK else 800
_WORKER_COUNTS = (1, 2, 4)
_ROUNDS = 2 if BENCH_QUICK else 5
#: asserted at 4 workers when >= 4 CPUs are visible (ISSUE acceptance).
_MIN_SPEEDUP = 2.5


def _best_of(rounds: int, fn):
    best = float("inf")
    for __ in range(rounds):
        gc.collect()
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _comparable(snapshot: dict) -> tuple:
    """The merge-exact view of a snapshot: everything but wall durations."""
    return (snapshot["counters"], snapshot["gauges"],
            {series: (data["buckets"], data["count"])
             for series, data in snapshot["histograms"].items()
             if not series.split("{")[0].endswith(".seconds")})


def test_parallel_reconstruction(benchmark, results_dir, bench_metrics):
    topology = paper_topology(seed=BENCH_SEED)
    smart = SmartSRA(topology)
    config = PAPER_DEFAULTS.simulation_config(n_agents=_AGENTS,
                                              seed=BENCH_SEED)
    log = simulate_population(topology, config).log_requests
    timings = {}

    def run_all():
        serial_s, serial_sessions = _best_of(
            _ROUNDS, lambda: smart.reconstruct(log))
        timings["serial"] = serial_s
        for workers in _WORKER_COUNTS:
            seconds, sessions = _best_of(
                _ROUNDS, lambda: smart.reconstruct(log, workers=workers))
            assert list(sessions) == list(serial_sessions), workers
            timings[workers] = seconds
        return serial_sessions

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # exact observability: merged per-worker registries == serial run.
    serial_registry, parallel_registry = Registry(), Registry()
    with use_registry(serial_registry):
        smart.reconstruct(log)
    with use_registry(parallel_registry):
        smart.reconstruct(log, workers=4)
    assert (_comparable(serial_registry.snapshot())
            == _comparable(parallel_registry.snapshot()))

    cpus = available_cpus()
    speedup_measurable = cpus >= 4 and not BENCH_QUICK
    if speedup_measurable:
        assert timings["serial"] / timings[4] >= _MIN_SPEEDUP, timings

    lines = [f"Extension A17 — parallel reconstruction engine "
             f"(seed {BENCH_SEED}, {_AGENTS} agents, {len(log)} records, "
             f"best of {_ROUNDS})",
             f"  host: {cpus} CPU(s) visible to this process; the "
             f">= {_MIN_SPEEDUP}x @ 4 workers assertion "
             f"{'ran' if speedup_measurable else 'needs >= 4 CPUs - not asserted here'}",
             "  identity + exact-obs assertions ran (they always do)",
             "  workers  seconds  vs serial"]
    lines.append(f"   serial  {timings['serial']:7.3f}       1.00x")
    for workers in _WORKER_COUNTS:
        ratio = timings["serial"] / timings[workers]
        lines.append(f"  {workers:>7}  {timings[workers]:7.3f}  "
                     f"{ratio:9.2f}x")
    emit(results_dir, "parallel", "\n".join(lines) + "\n")
