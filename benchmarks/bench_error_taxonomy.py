"""Extension A13 — error taxonomy: *how* each heuristic fails.

Breaks every heuristic's misses into the five-way taxonomy of
:mod:`repro.evaluation.taxonomy` at the Table 5 operating point:
exact / merged / scattered / partial / lost — once with the paper's
browser-cache-only setting and once behind a shared proxy.

Expected signatures:

* time heuristics are dominated by MERGED — their giant sessions swallow
  the real ones whole;
* Smart-SRA converts most MERGED into EXACT; its residue is SCATTERED
  (session structure cut wrongly), since with browser caches only, every
  real page still appears *somewhere* in the user's log;
* behind a shared proxy, PARTIAL appears for every heuristic: the proxy
  absorbs first visits entirely, so some real pages never reach the
  server — the information-theoretic floor no reactive method beats.
"""

from __future__ import annotations

from _bench_utils import BENCH_AGENTS, BENCH_SEED, emit
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.evaluation.harness import standard_heuristics
from repro.evaluation.taxonomy import (
    ErrorCategory,
    error_breakdown,
    render_breakdown,
)
from repro.simulator.population import simulate_population


def _breakdowns(topology, config):
    simulation = simulate_population(topology, config)
    return {
        name: error_breakdown(
            simulation.ground_truth,
            heuristic.reconstruct(simulation.log_requests))
        for name, heuristic in standard_heuristics(topology).items()
    }


def test_error_taxonomy(benchmark, results_dir):
    topology = paper_topology(seed=BENCH_SEED)
    base = PAPER_DEFAULTS.simulation_config(n_agents=BENCH_AGENTS,
                                            seed=BENCH_SEED)

    def run_study():
        return (_breakdowns(topology, base),
                _breakdowns(topology, base.with_(proxy_group_size=10)))

    plain, proxied = benchmark.pedantic(run_study, rounds=1, iterations=1)

    # signature shape assertions
    assert (plain["heur4"][ErrorCategory.EXACT]
            > plain["heur2"][ErrorCategory.EXACT])
    assert (plain["heur2"][ErrorCategory.MERGED]
            > plain["heur4"][ErrorCategory.MERGED])
    # with browser caches only, every real page is somewhere in the log:
    assert plain["heur4"][ErrorCategory.PARTIAL] == 0
    assert plain["heur4"][ErrorCategory.LOST] == 0
    # a shared proxy hides pages outright:
    assert (proxied["heur4"][ErrorCategory.PARTIAL]
            + proxied["heur4"][ErrorCategory.LOST]) > 0

    emit(results_dir, "error_taxonomy",
         f"Extension A13 — error taxonomy [{BENCH_AGENTS} agents]\n"
         "browser caches only:\n"
         + render_breakdown(plain)
         + "behind a shared proxy (group size 10):\n"
         + render_breakdown(proxied))
