"""Extension A9 — graded similarity (Berendt et al. 2003 style measures).

The paper's binary capture metric cannot distinguish "missed by one page"
from "completely wrong".  This bench scores all four heuristics with the
graded LCS-based measures (:mod:`repro.evaluation.similarity`) at the
Table 5 operating point:

* graded recall — how much of each real session's page order survives in
  the best matching reconstructed session;
* graded precision — how much of each reconstructed session is real order;
* F1 and the fragmentation ratio.

Expected: the graded ranking confirms the binary one (Smart-SRA first),
while exposing *why* each baseline loses — heur2 under-splits (low
precision at high recall is impossible for it: it never invents order, it
glues), heur3's inserted back-moves cost precision, Smart-SRA's branching
shows up as fragmentation > 1.
"""

from __future__ import annotations

from _bench_utils import BENCH_AGENTS, BENCH_SEED, emit
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.evaluation.harness import standard_heuristics
from repro.evaluation.similarity import similarity_report
from repro.simulator.population import simulate_population


def test_graded_similarity(benchmark, results_dir):
    topology = paper_topology(seed=BENCH_SEED)
    config = PAPER_DEFAULTS.simulation_config(
        n_agents=BENCH_AGENTS, seed=BENCH_SEED)

    def run_study():
        simulation = simulate_population(topology, config)
        return {
            name: similarity_report(
                name, simulation.ground_truth,
                heuristic.reconstruct(simulation.log_requests))
            for name, heuristic in standard_heuristics(topology).items()
        }

    reports = benchmark.pedantic(run_study, rounds=1, iterations=1)

    # the graded ranking must confirm the paper's binary ranking.
    f1 = {name: report.f1 for name, report in reports.items()}
    assert f1["heur4"] == max(f1.values())

    lines = [f"Extension A9 — graded (LCS) similarity "
             f"[{BENCH_AGENTS} agents]",
             "  heuristic  recall  precision     F1  fragmentation"]
    for name in ("heur1", "heur2", "heur3", "heur4"):
        report = reports[name]
        lines.append(
            f"  {name:>9}  {report.graded_recall * 100:5.1f}%"
            f"  {report.graded_precision * 100:8.1f}%"
            f"  {report.f1 * 100:5.1f}%"
            f"  {report.fragmentation:13.2f}")
    emit(results_dir, "graded_similarity", "\n".join(lines) + "\n")
