"""Extension A10 — transaction identification on reconstructed sessions.

Runs the two classic transaction-identification methods downstream of
Smart-SRA, with the simulator's bimodal (auxiliary/content) timing model
enabled:

* **Reference Length**: can the timing-based classifier recover the pages
  the simulator designated as content — and does reconstruction quality
  matter for it?
* **Maximal Forward Reference**: transaction counts per heuristic — MFR
  over heur3's path-completed sessions splits at its inserted back-moves,
  while Smart-SRA's duplicate-free sessions pass through whole (the
  paper's §3 argument that avoiding artificial insertions yields directly
  usable sequences).
"""

from __future__ import annotations

from _bench_utils import BENCH_AGENTS, BENCH_SEED, emit
from repro.core.smart_sra import SmartSRA
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.sessions.navigation_oriented import NavigationHeuristic
from repro.simulator.pages import select_content_pages
from repro.simulator.population import simulate_population
from repro.transactions.maximal_forward import maximal_forward_references
from repro.transactions.reference_length import ReferenceLengthModel

_CONTENT_FRACTION = 0.3


def test_transaction_identification(benchmark, results_dir):
    topology = paper_topology(seed=BENCH_SEED)
    config = PAPER_DEFAULTS.simulation_config(
        n_agents=BENCH_AGENTS, seed=BENCH_SEED,
        content_fraction=_CONTENT_FRACTION)
    true_content = select_content_pages(topology, _CONTENT_FRACTION)

    def run_study():
        simulation = simulate_population(topology, config)
        smart = SmartSRA(topology).reconstruct(simulation.log_requests)
        nav = NavigationHeuristic(topology).reconstruct(
            simulation.log_requests)

        model = ReferenceLengthModel.fit(smart, auxiliary_fraction=0.7)
        detected = model.content_pages(smart)
        visited = {page for session in simulation.ground_truth
                   for page in session.pages}
        relevant = true_content & visited
        recall = len(detected & relevant) / len(relevant)
        precision = (len(detected & relevant) / len(detected)
                     if detected else 0.0)

        smart_transactions = maximal_forward_references(smart)
        nav_transactions = maximal_forward_references(nav)
        return {
            "rl_recall": recall,
            "rl_precision": precision,
            "rl_cutoff": model.cutoff,
            "smart_sessions": len(smart),
            "smart_transactions": len(smart_transactions),
            "nav_sessions": len(nav),
            "nav_transactions": len(nav_transactions),
        }

    outcome = benchmark.pedantic(run_study, rounds=1, iterations=1)

    # timing alone must recover most content pages from Smart-SRA output.
    assert outcome["rl_recall"] > 0.6
    # Smart-SRA sessions are already forward paths: MFR barely splits them.
    smart_ratio = outcome["smart_transactions"] / outcome["smart_sessions"]
    nav_ratio = outcome["nav_transactions"] / outcome["nav_sessions"]
    assert smart_ratio < nav_ratio

    emit(results_dir, "transactions",
         f"Extension A10 — transaction identification "
         f"[{BENCH_AGENTS} agents, content fraction {_CONTENT_FRACTION}]\n"
         f"  reference-length cutoff:   {outcome['rl_cutoff']:.0f}s\n"
         f"  content-page recall:       {outcome['rl_recall'] * 100:.1f}%\n"
         f"  content-page precision:    "
         f"{outcome['rl_precision'] * 100:.1f}%\n"
         f"  MFR transactions/session:  Smart-SRA {smart_ratio:.2f}  "
         f"vs heur3 {nav_ratio:.2f}\n")
