"""Figure 10 — real accuracy vs NIP (0% … 90%), four heuristics.

STP and LPP fixed at Table 5's values; NIP (jump-to-entry-page) varied.
Expected shape (paper): time-oriented heuristics degrade steadily (an
entry-page jump leaves no time gap to split on); Smart-SRA stays clearly
ahead of the time heuristics across the whole range.  See EXPERIMENTS.md
for the one deviation we observe: topology-aware heuristics *gain* from
first-visit NIP jumps (a never-seen entry page is a detectable boundary),
so their curves are not monotone in our simulator.
"""

from __future__ import annotations

from _bench_utils import BENCH_AGENTS, BENCH_SEED, emit
from repro.evaluation.experiments import fig10_sweep
from repro.evaluation.ascii_chart import render_chart
from repro.evaluation.svg_chart import save_svg
from repro.evaluation.report import render_csv, render_sweep_table


def test_fig10_nip_sweep(benchmark, results_dir):
    result = benchmark.pedantic(
        fig10_sweep, kwargs={"n_agents": BENCH_AGENTS, "seed": BENCH_SEED},
        rounds=1, iterations=1)
    series = result.series()

    # time heuristics degrade with NIP (paper's main point for this figure)
    for name in ("heur1", "heur2"):
        low = sum(series[name][:2]) / 2
        high = sum(series[name][-2:]) / 2
        assert high < low, f"{name} should degrade with NIP"
    # Smart-SRA clearly beats both time heuristics everywhere.
    for index in range(len(result.values)):
        time_best = max(series["heur1"][index], series["heur2"][index])
        assert series["heur4"][index] > time_best, (
            f"Smart-SRA must beat the time heuristics at "
            f"NIP={result.values[index]}")

    chart = render_chart(result, title="")
    save_svg(result, str(results_dir / "fig10.svg"),
             title="Real accuracy vs NIP (matched metric)")
    emit(results_dir, "fig10",
         render_sweep_table(
             result,
             f"Figure 10 — real accuracy (%) vs NIP "
             f"[matched metric, {BENCH_AGENTS} agents/point]")
         + "\n" + chart,
         render_csv(result))
