"""Shared benchmark fixtures.

Every figure/table benchmark writes the rows it regenerates to
``benchmarks/results/`` (text + CSV) in addition to printing them, so the
series survive pytest's output capture.  See ``_bench_utils`` for the
environment knobs.

``--emit-metrics`` additionally installs an enabled metrics registry per
benchmark module and writes its snapshot to
``results/<module>.metrics.json`` (see ``docs/observability.md``).  The
default is off — the quoted throughput numbers are measured against the
free disabled registry.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--emit-metrics", action="store_true", default=False,
        help="collect pipeline metrics during benchmarks and write a "
             "<module>.metrics.json sidecar per benchmark module")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="module")
def bench_metrics(request: pytest.FixtureRequest,
                  results_dir: pathlib.Path):
    """The module's metrics registry (disabled unless ``--emit-metrics``).

    Installed as the ambient registry for the module's tests; with
    ``--emit-metrics`` its snapshot lands in a ``.metrics.json`` sidecar
    named after the benchmark module.
    """
    from _bench_utils import write_metrics_sidecar
    from repro.obs import Registry, set_registry

    enabled = request.config.getoption("--emit-metrics")
    registry = Registry(enabled=enabled)
    previous = set_registry(registry)
    yield registry
    set_registry(previous)
    if enabled:
        name = pathlib.Path(str(request.module.__file__)).stem
        write_metrics_sidecar(results_dir, name, registry)
