"""Shared benchmark fixtures.

Every figure/table benchmark writes the rows it regenerates to
``benchmarks/results/`` (text + CSV) in addition to printing them, so the
series survive pytest's output capture.  See ``_bench_utils`` for the
environment knobs.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
