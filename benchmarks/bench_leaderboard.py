"""Extension A15 — the full heuristic leaderboard at the Table 5 point.

Ranks every heuristic in the library — the paper's four, the phase-1
ablation, the adaptive timeout, and the combined-log referrer upper
baseline — on one simulation, with bootstrap confidence intervals.  The
one-table summary of everything this repository measures.
"""

from __future__ import annotations

from _bench_utils import BENCH_AGENTS, BENCH_SEED, emit
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.evaluation.leaderboard import leaderboard, render_leaderboard


def test_leaderboard(benchmark, results_dir):
    topology = paper_topology(seed=BENCH_SEED)
    config = PAPER_DEFAULTS.simulation_config(n_agents=BENCH_AGENTS,
                                              seed=BENCH_SEED)
    rows = benchmark.pedantic(leaderboard, args=(topology, config),
                              rounds=1, iterations=1)

    by_name = {row.name: row for row in rows}
    # structural claims the whole repository rests on:
    assert rows[0].name == "referrer"          # richer logs win
    reactive = [row for row in rows if row.name != "referrer"]
    assert reactive[0].name == "heur4"         # Smart-SRA best reactive
    assert by_name["heur4"].matched.low > by_name["heur3"].matched.high, \
        "Smart-SRA's CI must clear heur3's entirely at this scale"

    emit(results_dir, "leaderboard",
         f"Extension A15 — full leaderboard [{BENCH_AGENTS} agents, "
         f"matched metric]\n" + render_leaderboard(rows))
