"""Extension A20 — columnar data-plane throughput against the object engine.

Times Smart-SRA over the A11 workload (paper topology, ``PAPER_DEFAULTS``
traffic, ``REPRO_BENCH_AGENTS`` agents) in five configurations:

* ``object``          — ``SmartSRA.reconstruct(log)``: the per-user object
  engine, the baseline every other row is normalised against;
* ``columnar``        — ``engine="columnar"`` end to end: per-user
  partitioning, column ingest, the vectorized plane, *and* materializing
  canonical :class:`Session` objects at the boundary;
* ``columnar-par``    — the same with ``workers=0`` (auto), asserted
  output-identical to the serial columnar run;
* ``plane+ingest``    — column ingest plus one batched plane pass, no
  Session materialization (what an index-level consumer pays per fresh
  request log);
* ``plane-resident``  — one plane pass over a prebuilt
  :class:`ColumnBatch` (the worker-side steady state once
  ``shard_by_user_columns`` has shipped the buffers, and the re-analysis
  cost when columns are kept resident between runs).

The tentpole's ≥10x bar applies to the **plane-resident** row in numpy
mode: that is the data-plane speedup itself, uncontaminated by the
object-boundary costs that dominate the end-to-end ``columnar`` row
(dict partitioning of the request stream and Session construction are
object work by definition).  ``docs/performance.md`` ("When to expect
the 10x") quotes this table and explains which row applies to which
deployment.  In stdlib-fallback mode (numpy vetoed) and in
``REPRO_BENCH_QUICK`` mode the bench is correctness-only — equivalence
assertions run, timing bars do not.

Rounds are tightly interleaved across the five series with a
``gc.collect()`` fence before every timed region and best-of (min)
reporting, exactly as ``bench_scalability`` does — on a shared host only
interleaved minima are comparable.
"""

from __future__ import annotations

import gc
import time

from _bench_utils import BENCH_AGENTS, BENCH_QUICK, BENCH_SEED, emit
from repro.core.columnar import ColumnBatch, active_backend
from repro.core.smart_sra import SmartSRA
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.parallel import available_cpus
from repro.simulator.population import simulate_population

_ROUNDS = 2 if BENCH_QUICK else 10
#: the fast plane series get extra trials per round — they are an order
#: of magnitude shorter than the object run, so their minima need more
#: samples to stabilise against scheduler noise.
_INNER = 1 if BENCH_QUICK else 3
_AGENTS = 100 if BENCH_QUICK else BENCH_AGENTS


def _timed(fn):
    gc.collect()
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _canonical(sessions):
    return sorted(tuple((r.timestamp, r.user_id, r.page)
                        for r in s.requests) for s in sessions)


def test_columnar_plane_throughput(benchmark, results_dir, bench_metrics):
    topology = paper_topology(seed=BENCH_SEED)
    smart = SmartSRA(topology)
    config = PAPER_DEFAULTS.simulation_config(n_agents=_AGENTS,
                                              seed=BENCH_SEED)
    log = simulate_population(topology, config).log_requests
    records = len(log)

    # the prebuilt batch for the resident series: the exact artifact a
    # pool worker receives (user-grouped, time-sorted column buffers).
    per_user: dict[str, list] = {}
    for request in log:
        per_user.setdefault(request.user_id, []).append(request)
    for user_requests in per_user.values():
        user_requests.sort(key=lambda r: r.timestamp)
    items = list(per_user.items())
    plane = smart._columnar_plane()
    resident_batch = ColumnBatch.from_user_requests(items, plane.symbols)

    object_sessions = smart.reconstruct(log)
    columnar_sessions = smart.reconstruct(log, engine="columnar")
    parallel_sessions = smart.reconstruct(log, engine="columnar",
                                          workers=0)
    assert _canonical(columnar_sessions) == _canonical(object_sessions)
    assert list(parallel_sessions) == list(columnar_sessions)
    resident_result = plane.run_batch(resident_batch)
    assert int(resident_result.session_offsets[-1]) == sum(
        len(s) for s in columnar_sessions)

    best = {"object": float("inf"), "columnar": float("inf"),
            "columnar-par": float("inf"), "plane+ingest": float("inf"),
            "plane-resident": float("inf")}

    def run_all():
        for __ in range(_ROUNDS):
            seconds, __sessions = _timed(lambda: smart.reconstruct(log))
            best["object"] = min(best["object"], seconds)
            for __inner in range(_INNER):
                seconds, __sessions = _timed(
                    lambda: smart.reconstruct(log, engine="columnar"))
                best["columnar"] = min(best["columnar"], seconds)
                seconds, __result = _timed(lambda: plane.run_batch(
                    ColumnBatch.from_user_requests(items, plane.symbols)))
                best["plane+ingest"] = min(best["plane+ingest"], seconds)
                seconds, __result = _timed(
                    lambda: plane.run_batch(resident_batch))
                best["plane-resident"] = min(best["plane-resident"],
                                             seconds)
            seconds, __sessions = _timed(lambda: smart.reconstruct(
                log, engine="columnar", workers=0))
            best["columnar-par"] = min(best["columnar-par"], seconds)
        return best

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    backend = active_backend()
    baseline = best["object"]
    if not BENCH_QUICK and backend == "numpy":
        # the tentpole bar: the vectorized plane itself must clear 10x
        # the object engine on the A11 workload.
        ratio = baseline / best["plane-resident"]
        assert ratio >= 10.0, (ratio, best)

    lines = [f"Extension A20 — columnar data plane vs object engine "
             f"({_AGENTS} agents, seed {BENCH_SEED}, best of "
             f"{_ROUNDS}x{_INNER}, backend {backend}, "
             f"{available_cpus()} CPU(s) visible)",
             "  interleaved rounds + GC fence; ≥10x bar applies to "
             "plane-resident (see docs/performance.md)",
             f"  records {records}, sessions {len(columnar_sessions)}",
             "  series          seconds    krec/s  vs object"]
    for name in ("object", "columnar", "columnar-par", "plane+ingest",
                 "plane-resident"):
        seconds = best[name]
        lines.append(f"  {name:<14}  {seconds:7.4f}  "
                     f"{records / seconds / 1000:8.1f}  "
                     f"{baseline / seconds:8.2f}x")
    emit(results_dir, "columnar", "\n".join(lines) + "\n")
