"""Tables 1-2 — the paper's worked examples for the baseline heuristics.

Regenerates, from the Table 1 request stream and the Figure 1 topology:

* heur1's two sessions (total duration ≤ 30 min),
* heur2's three sessions (page stay ≤ 10 min),
* heur3's single path-completed session (Table 2's final row),

asserts they equal the paper's rows verbatim, and times each heuristic on
the literal stream.
"""

from __future__ import annotations

from _bench_utils import emit
from repro.evaluation.experiments import (
    paper_example_topology,
    paper_table1_stream,
)
from repro.sessions.navigation_oriented import NavigationHeuristic
from repro.sessions.time_oriented import DurationHeuristic, PageStayHeuristic

EXPECTED = {
    "heur1": [("P1", "P20", "P13", "P49"), ("P34", "P23")],
    "heur2": [("P1", "P20", "P13"), ("P49", "P34"), ("P23",)],
    "heur3": [("P1", "P20", "P1", "P13", "P49", "P13", "P34", "P23")],
}


def _render(rows: dict[str, list[tuple[str, ...]]]) -> str:
    lines = ["Tables 1-2 — worked examples (paper vs regenerated: exact)"]
    for name, sessions in rows.items():
        rendered = "; ".join("[" + " ".join(s) + "]" for s in sessions)
        lines.append(f"  {name}: {rendered}")
    return "\n".join(lines) + "\n"


def test_table1_heur1(benchmark, results_dir):
    stream = paper_table1_stream()
    sessions = benchmark(
        lambda: DurationHeuristic().reconstruct_user(stream))
    assert [s.pages for s in sessions] == EXPECTED["heur1"]


def test_table1_heur2(benchmark):
    stream = paper_table1_stream()
    sessions = benchmark(
        lambda: PageStayHeuristic().reconstruct_user(stream))
    assert [s.pages for s in sessions] == EXPECTED["heur2"]


def test_table2_heur3(benchmark, results_dir):
    topology = paper_example_topology()
    stream = paper_table1_stream()
    sessions = benchmark(
        lambda: NavigationHeuristic(topology).reconstruct_user(stream))
    assert [s.pages for s in sessions] == EXPECTED["heur3"]
    emit(results_dir, "tables1_2", _render(EXPECTED))
