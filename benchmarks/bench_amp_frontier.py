"""Extension A22 — All-Maximal-Paths accuracy-vs-cost frontier.

Scores the All-Maximal-Paths engine (arXiv 1307.1927) against the paper's
four heuristics on the three topology families, reporting matched
accuracy *and* reconstruction cost per heuristic — AMP buys its accuracy
by enumerating every maximal path, so the interesting number is the
frontier position, not either axis alone.

The adversarial leg replays the crawler/NAT workload from bench A19
through AMP under a finite path budget: a never-idle crawler on a dense
site is exactly the traffic that explodes the candidate DAG, and the
bench asserts the budget keeps the run finite (truncation counted, output
still rule-compliant) rather than letting enumeration go exponential.

``REPRO_BENCH_QUICK`` shrinks everything to a CI smoke.
"""

from __future__ import annotations

import time

from _bench_utils import BENCH_AGENTS, BENCH_QUICK, BENCH_SEED, emit
from repro.core.amp import AMPConfig
from repro.diffcheck.invariants import verify_sessions
from repro.evaluation.experiments import PAPER_DEFAULTS
from repro.evaluation.harness import standard_heuristics
from repro.evaluation.metrics import evaluate_reconstruction
from repro.sessions.maximal_paths import AllMaximalPaths
from repro.simulator.adversarial import adversarial_workload
from repro.simulator.population import simulate_population
from repro.topology.generators import (
    hierarchical_site,
    power_law_site,
    random_site,
)

AGENTS = 60 if BENCH_QUICK else BENCH_AGENTS
PAGES = 80 if BENCH_QUICK else 300

FAMILIES = {
    "random": lambda: random_site(PAGES, 15.0, seed=BENCH_SEED),
    "hierarchical": lambda: hierarchical_site(PAGES, branching=4,
                                              seed=BENCH_SEED),
    "power-law": lambda: power_law_site(PAGES, links_per_page=8,
                                        seed=BENCH_SEED),
}

LINEUP = ("heur1", "heur2", "heur3", "heur4", "amp")


def _lineup(topology):
    heuristics = standard_heuristics(topology)
    heuristics["amp"] = AllMaximalPaths(topology)
    return heuristics


def test_amp_frontier_families(benchmark, results_dir, bench_metrics):
    """Accuracy and cost per heuristic per topology family."""
    config = PAPER_DEFAULTS.simulation_config(n_agents=AGENTS,
                                              seed=BENCH_SEED)

    def run_families():
        rows = {}
        for family, factory in FAMILIES.items():
            topology = factory()
            simulation = simulate_population(topology, config)
            scored = {}
            for name, heuristic in _lineup(topology).items():
                started = time.perf_counter()
                reconstructed = heuristic.reconstruct(
                    simulation.log_requests)
                elapsed = time.perf_counter() - started
                report = evaluate_reconstruction(
                    name, simulation.ground_truth, reconstructed)
                scored[name] = (report.matched_accuracy, elapsed)
            rows[family] = scored
        return rows

    rows = benchmark.pedantic(run_families, rounds=1, iterations=1)

    lines = [f"Ablation A22 — AMP accuracy-vs-cost frontier "
             f"[{AGENTS} agents, {PAGES} pages]",
             "  family         metric      "
             + "  ".join(f"{name:>6}" for name in LINEUP)]
    csv_lines = ["family,heuristic,matched_accuracy,seconds"]
    for family, scored in rows.items():
        accuracy, cost = scored["amp"]
        # AMP never scores below Smart-SRA: its output is a superset of
        # maximal paths, so every Smart-SRA session stays recoverable.
        assert accuracy >= scored["heur4"][0] - 0.02, (
            f"AMP lost accuracy vs Smart-SRA on {family}: "
            f"{accuracy:.3f} < {scored['heur4'][0]:.3f}")
        lines.append(f"  {family:<13}  accuracy %  "
                     + "  ".join(f"{scored[name][0] * 100:6.1f}"
                                 for name in LINEUP))
        lines.append(f"  {family:<13}  seconds     "
                     + "  ".join(f"{scored[name][1]:6.2f}"
                                 for name in LINEUP))
        csv_lines.extend(
            f"{family},{name},{scored[name][0]:.4f},{scored[name][1]:.4f}"
            for name in LINEUP)
        registry = bench_metrics
        for name in LINEUP:
            registry.gauge("bench.amp.accuracy", family=family,
                           heuristic=name).set(scored[name][0])
    emit(results_dir, "amp_frontier", "\n".join(lines) + "\n",
         csv="\n".join(csv_lines) + "\n")


def test_amp_adversarial_budget(benchmark, results_dir, bench_metrics):
    """The crawler/NAT workload completes under a finite path budget."""
    topology = random_site(40 if BENCH_QUICK else 120, 12.0,
                           seed=BENCH_SEED)
    workload = adversarial_workload(
        topology,
        crawlers=1 if BENCH_QUICK else 2,
        crawler_requests=120 if BENCH_QUICK else 400,
        nat_pools=1 if BENCH_QUICK else 2,
        humans_per_pool=6 if BENCH_QUICK else 12,
        normal_agents=4 if BENCH_QUICK else 8,
        seed=BENCH_SEED)
    amp = AMPConfig(path_budget=256, overflow="truncate")
    engine = AllMaximalPaths(topology, amp=amp)

    sessions = benchmark.pedantic(
        lambda: engine.reconstruct(workload), rounds=1, iterations=1)

    assert len(sessions) > 0
    violations = verify_sessions(sessions, topology, semantics="amp")
    assert not violations, violations[:3]
    lines = [f"Ablation A22 — adversarial crawler/NAT leg "
             f"[{len(workload)} requests, budget {amp.path_budget}]",
             f"  sessions emitted: {len(sessions)}",
             f"  output rule-compliant under semantics='amp': yes"]
    emit(results_dir, "amp_adversarial", "\n".join(lines) + "\n")
