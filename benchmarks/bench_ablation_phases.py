"""Ablation A3 — how much of Smart-SRA's accuracy comes from Phase 2?

Compares, at the Table 5 operating point:

* ``phase1`` — Smart-SRA Phase 1 alone (both time rules, no topology);
* ``heur4`` — the full two-phase algorithm.

DESIGN.md calls this the central design question: the paper's §3 argues the
topological second phase is what separates Smart-SRA from the combined
time-oriented heuristics.
"""

from __future__ import annotations

from _bench_utils import BENCH_AGENTS, BENCH_SEED, emit
from repro.core.smart_sra import Phase1Only, SmartSRA
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.evaluation.harness import run_trial


def test_phase2_contribution(benchmark, results_dir):
    topology = paper_topology(seed=BENCH_SEED)
    config = PAPER_DEFAULTS.simulation_config(
        n_agents=BENCH_AGENTS, seed=BENCH_SEED)
    heuristics = {
        "phase1": Phase1Only(),
        "heur4": SmartSRA(topology),
    }
    trial = benchmark.pedantic(
        run_trial, args=(topology, config, heuristics),
        rounds=1, iterations=1)
    accs = trial.accuracies()

    # Phase 2 must contribute most of the accuracy: time rules alone
    # cannot see the topology-only session boundaries (NIP/LPP).
    assert accs["heur4"] > 2.0 * accs["phase1"]

    emit(results_dir, "ablation_phases",
         "Ablation A3 — Phase 1 alone vs full Smart-SRA "
         f"[{BENCH_AGENTS} agents]\n"
         f"  phase1 (time rules only): {accs['phase1'] * 100:5.1f}%\n"
         f"  heur4  (both phases):     {accs['heur4'] * 100:5.1f}%\n"
         f"  phase-2 multiplier:       "
         f"{accs['heur4'] / max(accs['phase1'], 1e-9):.2f}x\n")
