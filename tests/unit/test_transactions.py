"""Unit tests for transaction identification (MFR and Reference Length)."""

from __future__ import annotations

import pytest

from repro.exceptions import EvaluationError
from repro.sessions.model import Request, Session, SessionSet
from repro.transactions.maximal_forward import maximal_forward_references
from repro.transactions.reference_length import (
    ReferenceLengthModel,
    estimate_cutoff,
)


def _timed(pairs, user="u"):
    """Session from (page, timestamp-seconds) pairs."""
    return Session([Request(float(t), user, p) for p, t in pairs])


class TestMaximalForward:
    def test_classic_example(self):
        session = Session.from_pages(["A", "B", "C", "B", "D"])
        assert maximal_forward_references(session) == [
            ("A", "B", "C"), ("A", "B", "D")]

    def test_pure_forward_path_is_one_transaction(self):
        session = Session.from_pages(["A", "B", "C"])
        assert maximal_forward_references(session) == [("A", "B", "C")]

    def test_multi_level_backtracking(self):
        session = Session.from_pages(
            ["A", "B", "C", "B", "D", "A", "E"])
        assert maximal_forward_references(session) == [
            ("A", "B", "C"), ("A", "B", "D"), ("A", "E")]

    def test_consecutive_backward_moves_emit_once(self):
        # A B C B A D: the backward run B->A emits (A,B,C) only once.
        session = Session.from_pages(["A", "B", "C", "B", "A", "D"])
        assert maximal_forward_references(session) == [
            ("A", "B", "C"), ("A", "D")]

    def test_empty_session(self):
        assert maximal_forward_references(Session([])) == []

    def test_singleton(self):
        assert maximal_forward_references(Session.from_pages(["A"])) == [
            ("A",)]

    def test_session_set_concatenates(self):
        sessions = SessionSet([Session.from_pages(["A", "B"]),
                               Session.from_pages(["C"])])
        assert maximal_forward_references(sessions) == [("A", "B"), ("C",)]

    def test_heur3_sessions_split_at_inserted_backmoves(self, fig1_topology,
                                                        table1_stream):
        from repro.sessions.navigation_oriented import NavigationHeuristic
        session, = NavigationHeuristic(fig1_topology).reconstruct_user(
            table1_stream)
        # [P1 P20 P1 P13 P49 P13 P34 P23] splits at the two back-moves.
        assert maximal_forward_references(session) == [
            ("P1", "P20"),
            ("P1", "P13", "P49"),
            ("P1", "P13", "P34", "P23"),
        ]


class TestEstimateCutoff:
    def test_quantile_formula(self):
        # constant 60s gaps: mean 60; gamma=0.5 -> C = ln(2)*60.
        sessions = SessionSet([_timed([("A", 0), ("B", 60), ("C", 120)])])
        cutoff = estimate_cutoff(sessions, auxiliary_fraction=0.5)
        assert cutoff == pytest.approx(41.588, abs=0.01)

    def test_rejects_bad_fraction(self):
        sessions = SessionSet([_timed([("A", 0), ("B", 60)])])
        with pytest.raises(EvaluationError):
            estimate_cutoff(sessions, auxiliary_fraction=1.0)

    def test_rejects_gapless_input(self):
        sessions = SessionSet([_timed([("A", 0)])])
        with pytest.raises(EvaluationError, match="no positive"):
            estimate_cutoff(sessions)


class TestReferenceLengthModel:
    @pytest.fixture()
    def bimodal_session(self):
        # quick hops (30s) through A, B then a long read (400s) on C,
        # quick hop on D, end on E.
        return _timed([("A", 0), ("B", 30), ("C", 60), ("D", 460),
                       ("E", 490)])

    def test_classify_flags_long_stays(self, bimodal_session):
        model = ReferenceLengthModel(cutoff=100.0)
        assert model.classify(bimodal_session) == [
            False, False, True, False, True]

    def test_last_visit_is_content_by_convention(self):
        model = ReferenceLengthModel(cutoff=100.0)
        assert model.classify(_timed([("A", 0)])) == [True]

    def test_transactions_are_auxiliary_runs_plus_content(self,
                                                          bimodal_session):
        model = ReferenceLengthModel(cutoff=100.0)
        assert model.transactions(bimodal_session) == [
            ("A", "B", "C"), ("D", "E")]

    def test_content_pages_majority_vote(self):
        model = ReferenceLengthModel(cutoff=100.0)
        sessions = SessionSet([
            _timed([("A", 0), ("C", 30), ("B", 430)]),   # C content
            _timed([("A", 0), ("C", 30), ("B", 60)]),    # C auxiliary
            _timed([("A", 0), ("C", 30), ("B", 440)]),   # C content
        ])
        content = model.content_pages(sessions)
        assert "C" in content
        assert "A" not in content
        assert "B" in content  # last-visit convention makes B content

    def test_fit_classifies_simulated_content_pages(self, small_site):
        """End-to-end: with the simulator's bimodal timing enabled, RL must
        recover the designated content pages far better than chance."""
        from repro.simulator.config import SimulationConfig
        from repro.simulator.pages import select_content_pages
        from repro.simulator.population import simulate_population
        config = SimulationConfig(n_agents=150, seed=3,
                                  content_fraction=0.3)
        simulation = simulate_population(small_site, config)
        truth = select_content_pages(small_site, 0.3)
        model = ReferenceLengthModel.fit(simulation.ground_truth,
                                         auxiliary_fraction=0.7)
        detected = model.content_pages(simulation.ground_truth)
        visited = {page for session in simulation.ground_truth
                   for page in session.pages}
        relevant = truth & visited
        recovered = len(detected & relevant) / len(relevant)
        assert recovered > 0.6

    def test_rejects_nonpositive_cutoff(self):
        with pytest.raises(EvaluationError):
            ReferenceLengthModel(cutoff=0.0)
