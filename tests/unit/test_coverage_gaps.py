"""Tests for paths the main suites exercise only indirectly."""

from __future__ import annotations

import pytest

from repro.exceptions import EvaluationError, ReconstructionError
from repro.logs.clf import CLFRecord
from repro.logs.users import flatten_streams, partition_by_user
from repro.sessions.base import (
    SessionReconstructor,
    get_heuristic,
    register_heuristic,
)
from repro.sessions.model import Request, Session, SessionSet


class TestFlattenStreams:
    def test_merges_time_sorted(self):
        records = [
            CLFRecord("ip1", 5.0, "GET", "/b.html", "HTTP/1.1", 200, 1),
            CLFRecord("ip2", 1.0, "GET", "/x.html", "HTTP/1.1", 200, 1),
            CLFRecord("ip1", 2.0, "GET", "/a.html", "HTTP/1.1", 200, 1),
        ]
        streams = partition_by_user(records)
        merged = flatten_streams(streams)
        assert [request.timestamp for request in merged] == [1.0, 2.0, 5.0]
        assert [request.page for request in merged] == ["x", "a", "b"]

    def test_ties_break_by_user(self):
        records = [
            CLFRecord("zeta", 1.0, "GET", "/a.html", "HTTP/1.1", 200, 1),
            CLFRecord("alpha", 1.0, "GET", "/b.html", "HTTP/1.1", 200, 1),
        ]
        merged = flatten_streams(partition_by_user(records))
        assert [request.user_id for request in merged] == ["alpha", "zeta"]


class TestRegistry:
    def test_conflicting_registration_rejected(self):
        class Dummy(SessionReconstructor):
            name = "dummy-test-conflict"

            def reconstruct_user(self, requests):
                return []

        register_heuristic("dummy-test-conflict")(Dummy)
        # same factory re-registration is idempotent:
        register_heuristic("dummy-test-conflict")(Dummy)
        with pytest.raises(ReconstructionError, match="already registered"):
            register_heuristic("dummy-test-conflict")(lambda: Dummy())
        assert isinstance(get_heuristic("dummy-test-conflict"), Dummy)


class TestRestrictionInvariance:
    def test_phase2_unchanged_by_candidate_restriction(self, fig1_topology,
                                                       table3_stream):
        """The paper's note — vertices outside the candidate 'must be
        removed from the graph prior to execution' — must be a no-op for
        our implementation, which never looks at absent pages."""
        from repro.core.phase2 import maximal_sessions
        pages = {request.page for request in table3_stream}
        restricted = fig1_topology.restricted_to(pages)
        full = {s.pages for s in maximal_sessions(table3_stream,
                                                  fig1_topology)}
        small = {s.pages for s in maximal_sessions(table3_stream,
                                                   restricted)}
        assert full == small


class TestChartEdgeCases:
    def test_single_point_sweep_renders(self, small_site):
        from repro.evaluation.ascii_chart import render_chart
        from repro.evaluation.harness import sweep
        from repro.evaluation.svg_chart import render_svg
        from repro.simulator.config import SimulationConfig
        result = sweep(small_site, SimulationConfig(n_agents=10, seed=1),
                       "stp", [0.1])
        assert "legend" in render_chart(result)
        assert "<svg" in render_svg(result)

    def test_empty_sweep_rejected(self):
        from repro.evaluation.ascii_chart import render_chart
        from repro.evaluation.harness import SweepResult
        from repro.evaluation.svg_chart import render_svg
        empty = SweepResult(parameter="stp", values=(), trials=())
        with pytest.raises(EvaluationError):
            render_chart(empty)
        with pytest.raises(EvaluationError):
            render_svg(empty)


class TestModelCornerCases:
    def test_from_pages_defaults(self):
        session = Session.from_pages(["A"])
        assert session.user_id == "u0"
        assert session.start_time == 0.0

    def test_request_without_referrer_strips(self):
        request = Request(1.0, "u", "A", referrer="B")
        stripped = request.without_referrer()
        assert stripped.referrer is None
        assert stripped == request  # referrer excluded from equality

    def test_session_set_repr(self):
        sessions = SessionSet([Session.from_pages(["A"], user_id="x")])
        assert "1 sessions" in repr(sessions)
        assert "1 users" in repr(sessions)

    def test_session_set_inequality_with_other_types(self):
        assert SessionSet([]) != "not a session set"

    def test_session_inequality_with_other_types(self):
        assert Session([]) != 42
