"""Unit tests for multi-agent population simulation."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulator.config import SimulationConfig
from repro.simulator.population import (
    agent_name,
    simulate_population,
)


def test_agent_name_format():
    assert agent_name(0) == "agent000000"
    assert agent_name(123456) == "agent123456"


def test_population_counts(small_site):
    result = simulate_population(small_site,
                                 SimulationConfig(n_agents=50, seed=1))
    assert len(result.traces) == 50
    users = {trace.agent_id for trace in result.traces}
    assert len(users) == 50


def test_log_is_time_sorted(small_simulation):
    times = [r.timestamp for r in small_simulation.log_requests]
    assert times == sorted(times)


def test_log_equals_sum_of_trace_misses(small_simulation):
    assert len(small_simulation.log_requests) == sum(
        trace.cache_misses for trace in small_simulation.traces)


def test_ground_truth_gathers_all_agents(small_simulation):
    truth_users = set(small_simulation.ground_truth.users())
    trace_users = {trace.agent_id for trace in small_simulation.traces
                   if trace.real_sessions}
    assert truth_users == trace_users


def test_horizon_spreads_start_times(small_site):
    result = simulate_population(small_site,
                                 SimulationConfig(n_agents=30, seed=2),
                                 horizon=86_400.0)
    firsts = [trace.server_requests[0].timestamp
              for trace in result.traces if trace.server_requests]
    assert max(firsts) - min(firsts) > 3600.0


def test_zero_horizon_starts_everyone_at_zero(small_site):
    result = simulate_population(small_site,
                                 SimulationConfig(n_agents=5, seed=2),
                                 horizon=0.0)
    for trace in result.traces:
        if trace.server_requests:
            assert trace.server_requests[0].timestamp == 0.0


def test_negative_horizon_rejected(small_site):
    with pytest.raises(SimulationError):
        simulate_population(small_site, SimulationConfig(n_agents=1),
                            horizon=-1.0)


def test_prefix_stability(small_site):
    """Agent i behaves identically regardless of the population size."""
    small = simulate_population(small_site,
                                SimulationConfig(n_agents=5, seed=9))
    large = simulate_population(small_site,
                                SimulationConfig(n_agents=20, seed=9))
    for index in range(5):
        assert (small.traces[index].server_requests
                == large.traces[index].server_requests)


def test_reproducible_across_runs(small_site):
    config = SimulationConfig(n_agents=25, seed=4)
    first = simulate_population(small_site, config)
    second = simulate_population(small_site, config)
    assert first.log_requests == second.log_requests
    assert first.ground_truth == second.ground_truth


def test_cache_hit_rate_bounds(small_simulation):
    assert 0.0 <= small_simulation.cache_hit_rate < 1.0


def test_sessions_per_agent(small_simulation):
    expected = (len(small_simulation.ground_truth)
                / len(small_simulation.traces))
    assert small_simulation.sessions_per_agent() == pytest.approx(expected)
