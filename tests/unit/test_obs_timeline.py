"""Unit tests for repro.obs.timeline — sampler, quantiles, doctor audit."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import Registry, TimelineSampler, histogram_quantile
from repro.obs.timeline import (
    MIN_SANE_INTERVAL,
    audit_telemetry_config,
    estimate_timeline_bytes,
)


def _histogram_doc(bounds, counts, overflow=0, total=0.0):
    return {"buckets": [[bound, count]
                        for bound, count in zip(bounds, counts)],
            "overflow": overflow, "sum": total,
            "count": sum(counts) + overflow}


class TestHistogramQuantile:
    def test_empty_histogram_reads_zero(self):
        assert histogram_quantile(_histogram_doc((1.0,), [0]), 0.5) == 0.0

    @pytest.mark.parametrize("quantile", [0.0, 1.0, -0.1, 1.5])
    def test_out_of_range_quantile_raises(self, quantile):
        with pytest.raises(ConfigurationError):
            histogram_quantile(_histogram_doc((1.0,), [4]), quantile)

    def test_interpolates_within_bucket(self):
        # 10 observations, all in the (2, 4] bucket: p50 ranks 5th of 10,
        # landing halfway through the bucket -> 2 + (4-2) * 0.5 = 3.
        doc = _histogram_doc((2.0, 4.0), [0, 10])
        assert histogram_quantile(doc, 0.5) == 3.0

    def test_first_bucket_interpolates_from_zero(self):
        doc = _histogram_doc((4.0,), [10])
        assert histogram_quantile(doc, 0.5) == 2.0

    def test_overflow_reports_last_finite_bound(self):
        doc = _histogram_doc((1.0, 2.0), [0, 0], overflow=5)
        assert histogram_quantile(doc, 0.9) == 2.0

    def test_quantile_spanning_buckets(self):
        # 4 in (0,1], 4 in (1,2]: p90 ranks 7.2 -> 3.2 into the second
        # bucket's 4 -> 1 + (2-1) * 0.8 = 1.8.
        doc = _histogram_doc((1.0, 2.0), [4, 4])
        assert histogram_quantile(doc, 0.9) == pytest.approx(1.8)


class TestTimelineSamplerConfig:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ConfigurationError, match="interval"):
            TimelineSampler(Registry(), interval=0.0)

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            TimelineSampler(Registry(), capacity=1)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ConfigurationError, match="quantile"):
            TimelineSampler(Registry(), quantiles=(0.5, 1.0))


class TestManualSampling:
    def test_non_advancing_timestamp_raises(self):
        sampler = TimelineSampler(Registry(), capacity=4)
        sampler.sample(timestamp=5.0)
        with pytest.raises(ConfigurationError, match="advance"):
            sampler.sample(timestamp=5.0)

    def test_prefix_selection_filters_series(self):
        registry = Registry()
        registry.counter("stream.requests.fed").inc(3)
        registry.counter("ingest.parsed").inc(7)
        registry.gauge("governor.tracked_bytes").set(100.0)
        sampler = TimelineSampler(registry, capacity=4,
                                  prefixes=("stream.", "governor."))
        point = sampler.sample(timestamp=1.0)
        assert point.counters == {"stream.requests.fed": 3}
        assert point.gauges == {"governor.tracked_bytes": 100.0}

    def test_sampler_records_its_own_series(self):
        registry = Registry()
        sampler = TimelineSampler(registry, capacity=2)
        for step in range(3):
            sampler.sample(timestamp=float(step + 1))
        assert registry.value("timeline.samples") == 3
        assert registry.value("timeline.evicted") == 1
        assert sampler.evicted == 1

    def test_series_created_mid_run_backfills_zero(self):
        registry = Registry()
        sampler = TimelineSampler(registry, capacity=8)
        sampler.sample(timestamp=1.0)
        registry.counter("late.arrival").inc(5)
        sampler.sample(timestamp=2.0)
        document = sampler.to_dict()
        assert document["counters"]["late.arrival"] == [0, 5]
        assert document["deltas"]["late.arrival"] == [5]

    def test_quantiles_exported_per_label(self):
        registry = Registry()
        histogram = registry.histogram("feed.seconds", (1.0, 2.0))
        for value in (0.5, 0.5, 1.5, 1.5):
            histogram.observe(value)
        sampler = TimelineSampler(registry, capacity=4,
                                  quantiles=(0.5,))
        sampler.sample(timestamp=1.0)
        document = sampler.to_dict()
        assert list(document["quantiles"]["feed.seconds"]) == ["p50"]
        assert len(document["quantiles"]["feed.seconds"]["p50"]) == 1

    def test_to_dict_is_json_clean_and_versioned(self):
        import json
        registry = Registry()
        registry.counter("a").inc()
        sampler = TimelineSampler(registry, capacity=4)
        sampler.sample(timestamp=1.0)
        sampler.sample(timestamp=2.0)
        document = sampler.to_dict()
        assert document["version"] == 1
        assert document["capacity"] == 4
        json.dumps(document)  # must not raise


class TestDaemonThread:
    def test_start_samples_and_stop_joins(self):
        registry = Registry()
        registry.counter("work").inc()
        sampler = TimelineSampler(registry, interval=0.01, capacity=64)
        sampler.start()
        try:
            deadline = time.time() + 5.0
            while not sampler.points() and time.time() < deadline:
                time.sleep(0.01)
        finally:
            sampler.stop()
        assert sampler.points(), "daemon thread never sampled"
        retained = len(sampler.points())
        time.sleep(0.05)
        assert len(sampler.points()) == retained, "thread kept running"

    def test_start_twice_is_idempotent_and_stop_without_start_ok(self):
        sampler = TimelineSampler(Registry(), interval=0.01)
        sampler.stop()  # no-op
        sampler.start()
        sampler.start()
        sampler.stop()
        sampler.stop()


class TestTelemetryAudit:
    def test_sane_config_is_all_ok(self):
        audit = audit_telemetry_config(interval=1.0, capacity=600,
                                       port=9100)
        assert audit.ok
        assert all(level == "ok" for level, _ in audit.checks)

    def test_sub_10ms_interval_warns(self):
        audit = audit_telemetry_config(interval=MIN_SANE_INTERVAL / 2)
        assert audit.ok  # a warning, not a failure
        assert any(level == "warn" and "contention" in message
                   for level, message in audit.checks)

    def test_non_positive_interval_fails(self):
        audit = audit_telemetry_config(interval=0.0)
        assert not audit.ok

    def test_privileged_port_warns(self):
        audit = audit_telemetry_config(port=80)
        assert audit.ok
        assert any(level == "warn" and "privileged" in message
                   for level, message in audit.checks)

    def test_out_of_range_port_fails(self):
        assert not audit_telemetry_config(port=70000).ok

    def test_capacity_over_governor_budget_warns(self):
        capacity = 10_000
        budget = estimate_timeline_bytes(capacity) // 2
        audit = audit_telemetry_config(capacity=capacity,
                                       memory_budget=budget)
        assert audit.ok
        assert any(level == "warn" and "budget" in message
                   for level, message in audit.checks)

    def test_capacity_under_budget_is_ok(self):
        capacity = 100
        budget = estimate_timeline_bytes(capacity) * 10
        audit = audit_telemetry_config(capacity=capacity,
                                       memory_budget=budget)
        assert all(level == "ok" for level, _ in audit.checks)

    def test_no_flags_audits_nothing(self):
        audit = audit_telemetry_config()
        assert audit.ok
        assert audit.checks == [("ok", "nothing to audit (no telemetry "
                                       "flags given)")]

    def test_render_and_to_dict_shapes(self):
        audit = audit_telemetry_config(interval=0.001, port=80)
        text = audit.render()
        assert text.startswith("telemetry configuration:")
        assert "verdict: ok" in text
        document = audit.to_dict()
        assert document["ok"] is True
        assert {check["level"] for check in document["checks"]} == {"warn"}
