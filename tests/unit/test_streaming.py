"""Unit tests for the streaming reconstruction pipeline."""

from __future__ import annotations

import pytest

from repro.core.config import SmartSRAConfig
from repro.exceptions import ReconstructionError
from repro.sessions.model import Request
from repro.streaming.pipeline import (
    StreamingReconstructor,
    streaming_phase1,
    streaming_smart_sra,
)
from repro.topology.graph import WebGraph

MIN = 60.0


@pytest.fixture()
def chain_site():
    return WebGraph([("A", "B"), ("B", "C")], start_pages=["A"])


class TestFeeding:
    def test_nothing_emitted_while_candidate_open(self, chain_site):
        pipeline = streaming_smart_sra(chain_site)
        assert pipeline.feed(Request(0.0, "u", "A")) == []
        assert pipeline.feed(Request(MIN, "u", "B")) == []
        assert pipeline.stats().buffered_requests == 2

    def test_gap_closes_candidate(self, chain_site):
        pipeline = streaming_smart_sra(chain_site)
        pipeline.feed(Request(0.0, "u", "A"))
        pipeline.feed(Request(MIN, "u", "B"))
        emitted = pipeline.feed(Request(30 * MIN, "u", "A"))
        assert [s.pages for s in emitted] == [("A", "B")]
        assert pipeline.stats().buffered_requests == 1

    def test_duration_closes_candidate(self, chain_site):
        config = SmartSRAConfig(max_duration=20 * MIN, max_gap=9 * MIN)
        pipeline = streaming_smart_sra(chain_site, config)
        for index in range(4):  # 0, 8, 16, 24 minutes
            emitted = pipeline.feed(
                Request(index * 8 * MIN, "u", "A" if index % 2 == 0
                        else "B"))
        assert emitted  # the 24-minute request exceeded δ from t=0

    def test_users_buffer_independently(self, chain_site):
        pipeline = streaming_smart_sra(chain_site)
        pipeline.feed(Request(0.0, "alice", "A"))
        pipeline.feed(Request(1.0, "bob", "A"))
        emitted = pipeline.feed(Request(30 * MIN, "alice", "B"))
        assert len(emitted) == 1
        assert emitted[0].user_id == "alice"
        assert pipeline.stats().active_users == 2

    def test_rejects_out_of_order_per_user(self, chain_site):
        pipeline = streaming_smart_sra(chain_site)
        pipeline.feed(Request(100.0, "u", "A"))
        with pytest.raises(ReconstructionError, match="out-of-order"):
            pipeline.feed(Request(50.0, "u", "B"))

    def test_rejects_negative_timestamp(self, chain_site):
        with pytest.raises(ReconstructionError, match="negative"):
            streaming_smart_sra(chain_site).feed(Request(-1.0, "u", "A"))


class TestFlush:
    def test_flush_none_drains_everything(self, chain_site):
        pipeline = streaming_smart_sra(chain_site)
        pipeline.feed(Request(0.0, "u", "A"))
        pipeline.feed(Request(MIN, "u", "B"))
        emitted = pipeline.flush()
        assert [s.pages for s in emitted] == [("A", "B")]
        assert pipeline.stats().buffered_requests == 0

    def test_watermark_only_closes_provably_dead(self, chain_site):
        pipeline = streaming_smart_sra(chain_site)
        pipeline.feed(Request(0.0, "old", "A"))
        pipeline.feed(Request(20 * MIN, "fresh", "A"))
        emitted = pipeline.flush(watermark=21 * MIN)
        assert [s.user_id for s in emitted] == ["old"]
        assert pipeline.stats().active_users == 1

    def test_watermark_at_boundary_keeps_candidate(self, chain_site):
        pipeline = streaming_smart_sra(chain_site)
        pipeline.feed(Request(0.0, "u", "A"))
        assert pipeline.flush(watermark=10 * MIN) == []  # exactly ρ: alive

    def test_stats_counters(self, chain_site):
        pipeline = streaming_smart_sra(chain_site)
        pipeline.feed(Request(0.0, "u", "A"))
        pipeline.feed(Request(MIN, "u", "B"))
        pipeline.flush()
        stats = pipeline.stats()
        assert stats.fed_requests == 2
        assert stats.emitted_sessions == 1
        assert stats.active_users == 0


class TestEquivalenceWithBatch:
    def test_streaming_equals_batch_smart_sra(self, small_site,
                                              small_simulation):
        from repro.core.smart_sra import SmartSRA
        batch = SmartSRA(small_site).reconstruct(
            small_simulation.log_requests)
        pipeline = streaming_smart_sra(small_site)
        streamed = pipeline.feed_many(small_simulation.log_requests)
        streamed.extend(pipeline.flush())
        batch_keys = sorted(
            (s.user_id, s.pages, s.start_time) for s in batch)
        stream_keys = sorted(
            (s.user_id, s.pages, s.start_time) for s in streamed)
        assert batch_keys == stream_keys

    def test_streaming_phase1_equals_batch_phase1(self, small_simulation):
        from repro.core.smart_sra import Phase1Only
        batch = Phase1Only().reconstruct(small_simulation.log_requests)
        pipeline = streaming_phase1()
        streamed = pipeline.feed_many(small_simulation.log_requests)
        streamed.extend(pipeline.flush())
        assert sorted((s.user_id, s.pages) for s in batch) == sorted(
            (s.user_id, s.pages) for s in streamed)


class TestCustomFinisher:
    def test_finisher_receives_whole_candidates(self):
        received = []

        def spy(candidate):
            received.append([r.page for r in candidate])
            return []

        pipeline = StreamingReconstructor(spy)
        pipeline.feed(Request(0.0, "u", "A"))
        pipeline.feed(Request(MIN, "u", "B"))
        pipeline.feed(Request(40 * MIN, "u", "C"))
        pipeline.flush()
        assert received == [["A", "B"], ["C"]]
