"""Unit tests for the graded similarity measures (LCS-based)."""

from __future__ import annotations

import pytest

from repro.evaluation.similarity import (
    lcs_length,
    session_overlap,
    similarity_report,
)
from repro.exceptions import EvaluationError
from repro.sessions.model import Session, SessionSet


def _s(pages, user="u0"):
    return Session.from_pages(pages, user_id=user)


class TestLCS:
    def test_identical(self):
        assert lcs_length(["a", "b", "c"], ["a", "b", "c"]) == 3

    def test_classic_example(self):
        assert lcs_length(list("ABCBDAB"), list("BDCABA")) == 4

    def test_disjoint(self):
        assert lcs_length(["a"], ["b"]) == 0

    def test_empty(self):
        assert lcs_length([], ["a"]) == 0
        assert lcs_length(["a"], []) == 0
        assert lcs_length([], []) == 0

    def test_subsequence_with_gaps(self):
        assert lcs_length(["a", "x", "b", "y", "c"], ["a", "b", "c"]) == 3

    def test_symmetric(self):
        first = ["a", "b", "a", "c"]
        second = ["b", "a", "c", "a"]
        assert lcs_length(first, second) == lcs_length(second, first)

    def test_order_matters(self):
        assert lcs_length(["a", "b"], ["b", "a"]) == 1


class TestSessionOverlap:
    def test_full_overlap(self):
        assert session_overlap(_s(["a", "b"]), _s(["x", "a", "b", "y"])) == 1.0

    def test_interrupted_still_counts(self):
        # the binary ⊏ metric rejects this; the graded one credits it.
        assert session_overlap(_s(["a", "b", "c"]),
                               _s(["a", "x", "b", "x", "c"])) == 1.0

    def test_partial(self):
        assert session_overlap(_s(["a", "b", "c"]), _s(["a", "c"])) \
            == pytest.approx(2 / 3)

    def test_empty_reconstruction(self):
        assert session_overlap(_s(["a"]), Session([])) == 0.0

    def test_empty_real_rejected(self):
        with pytest.raises(EvaluationError):
            session_overlap(Session([]), _s(["a"]))


class TestSimilarityReport:
    def test_perfect_reconstruction(self):
        truth = SessionSet([_s(["a", "b"]), _s(["c"])])
        report = similarity_report("h", truth, truth)
        assert report.graded_recall == 1.0
        assert report.graded_precision == 1.0
        assert report.f1 == 1.0
        assert report.fragmentation == 1.0

    def test_giant_session_keeps_recall_loses_precision(self):
        truth = SessionSet([_s(["a", "b"]), _s(["c", "d"])])
        giant = SessionSet([_s(["a", "b", "c", "d"])])
        report = similarity_report("h", truth, giant)
        assert report.graded_recall == 1.0
        assert report.graded_precision == 0.5
        assert report.fragmentation == 0.5

    def test_fragmented_keeps_precision_loses_recall(self):
        truth = SessionSet([_s(["a", "b", "c", "d"])])
        fragments = SessionSet([_s(["a", "b"]), _s(["c", "d"])])
        report = similarity_report("h", truth, fragments)
        assert report.graded_recall == 0.5
        assert report.graded_precision == 1.0
        assert report.fragmentation == 2.0

    def test_user_boundary(self):
        truth = SessionSet([_s(["a"], user="alice")])
        other = SessionSet([_s(["a"], user="bob")])
        report = similarity_report("h", truth, other)
        assert report.graded_recall == 0.0
        assert report.graded_precision == 0.0
        assert report.f1 == 0.0

    def test_empty_reconstruction(self):
        truth = SessionSet([_s(["a"])])
        report = similarity_report("h", truth, SessionSet([]))
        assert report.graded_recall == 0.0
        assert report.fragmentation == 0.0

    def test_empty_truth_rejected(self):
        with pytest.raises(EvaluationError):
            similarity_report("h", SessionSet([]), SessionSet([_s(["a"])]))

    def test_graded_at_least_binary_on_simulation(self, small_site,
                                                  small_simulation):
        """Graded recall upper-bounds the binary matched accuracy: every
        captured session has overlap 1.0."""
        from repro.core.smart_sra import SmartSRA
        from repro.evaluation.metrics import evaluate_reconstruction
        sessions = SmartSRA(small_site).reconstruct(
            small_simulation.log_requests)
        binary = evaluate_reconstruction(
            "h", small_simulation.ground_truth, sessions)
        graded = similarity_report(
            "h", small_simulation.ground_truth, sessions)
        assert graded.graded_recall >= binary.accuracy
