"""Unit tests for repro.obs.export — health verdicts and the HTTP server."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    MetricsServer,
    Registry,
    TimelineSampler,
    health_report,
)


def _get(url: str):
    """GET a URL; returns (status, body text) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


class TestHealthReport:
    def test_empty_snapshot_is_ok(self):
        report = health_report(Registry().snapshot())
        assert report == {"status": "ok", "reasons": [],
                          "governor": None, "supervisor": None,
                          "sharded": None}

    def test_governor_within_budget_is_ok_with_section(self):
        registry = Registry()
        registry.gauge("governor.budget_bytes").set(1000.0)
        registry.gauge("governor.tracked_bytes").set(400.0)
        registry.counter("governor.evictions").inc(3)
        report = health_report(registry.snapshot())
        assert report["status"] == "ok"
        assert report["governor"]["tracked_bytes"] == 400.0
        assert report["governor"]["evictions"] == 3

    def test_governor_over_budget_degrades(self):
        registry = Registry()
        registry.gauge("governor.budget_bytes").set(1000.0)
        registry.gauge("governor.tracked_bytes").set(2000.0)
        report = health_report(registry.snapshot())
        assert report["status"] == "degraded"
        assert any("over budget" in reason for reason in report["reasons"])

    def test_supervisor_skipped_chunks_degrade(self):
        registry = Registry()
        registry.counter("parallel.supervisor.skipped").inc(2)
        report = health_report(registry.snapshot())
        assert report["status"] == "degraded"
        assert any("skipped 2 chunk" in reason
                   for reason in report["reasons"])

    def test_supervisor_degraded_serial_degrades(self):
        registry = Registry()
        registry.counter("parallel.supervisor.degraded_serial").inc()
        report = health_report(registry.snapshot())
        assert report["status"] == "degraded"

    def test_healthy_supervisor_counters_stay_ok(self):
        registry = Registry()
        registry.counter("parallel.supervisor.retries").inc(4)
        report = health_report(registry.snapshot())
        assert report["status"] == "ok"
        assert report["supervisor"] == {"parallel.supervisor.retries": 4}

    @staticmethod
    def _sharded_registry():
        registry = Registry()
        registry.gauge("sharded.shards").set(2)
        registry.gauge("sharded.config.max_watermark_lag").set(900.0)
        registry.gauge("sharded.shard.alive", shard="0").set(1)
        registry.gauge("sharded.shard.alive", shard="1").set(1)
        return registry

    def test_healthy_shards_are_ok_with_section(self):
        registry = self._sharded_registry()
        registry.counter("sharded.failovers").inc()
        report = health_report(registry.snapshot())
        assert report["status"] == "ok"
        assert report["sharded"]["shards"] == 2
        assert report["sharded"]["failovers"] == 1
        assert set(report["sharded"]["per_shard"]) == {"0", "1"}

    def test_dead_shard_worker_degrades_with_its_shard_named(self):
        registry = self._sharded_registry()
        registry.gauge("sharded.shard.alive", shard="1").set(0)
        report = health_report(registry.snapshot())
        assert report["status"] == "degraded"
        assert "shard 1: dead worker" in report["reasons"]
        assert not any("shard 0" in reason for reason in report["reasons"])

    def test_watermark_lag_over_threshold_degrades(self):
        registry = self._sharded_registry()
        registry.gauge("sharded.shard.watermark_lag", shard="0").set(1200.0)
        report = health_report(registry.snapshot())
        assert report["status"] == "degraded"
        assert any(reason.startswith("shard 0: watermark lag")
                   and "900" in reason for reason in report["reasons"])

    def test_lag_under_threshold_stays_ok(self):
        registry = self._sharded_registry()
        registry.gauge("sharded.shard.watermark_lag", shard="0").set(30.0)
        assert health_report(registry.snapshot())["status"] == "ok"


class TestMetricsServer:
    def test_rejects_out_of_range_port(self):
        with pytest.raises(ConfigurationError, match="port"):
            MetricsServer(Registry(), 70000)

    def test_port_zero_binds_a_free_port(self):
        with MetricsServer(Registry(), 0) as server:
            assert 0 < server.port <= 65535
            assert server.url == f"http://127.0.0.1:{server.port}"

    def test_metrics_endpoint_serves_prometheus_text(self):
        registry = Registry()
        registry.counter("stream.requests.fed").inc(42)
        with MetricsServer(registry, 0) as server:
            status, body = _get(server.url + "/metrics")
        assert status == 200
        assert "repro_stream_requests_fed 42" in body

    def test_snapshot_endpoint_serves_versioned_json(self):
        registry = Registry()
        registry.counter("ingest.parsed").inc(7)
        with MetricsServer(registry, 0) as server:
            status, body = _get(server.url + "/snapshot")
        document = json.loads(body)
        assert status == 200
        assert document["version"] == 1
        assert document["counters"]["ingest.parsed"] == 7

    def test_health_answers_200_ok_and_503_degraded(self):
        registry = Registry()
        with MetricsServer(registry, 0) as server:
            status, body = _get(server.url + "/health")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            registry.gauge("governor.budget_bytes").set(10.0)
            registry.gauge("governor.tracked_bytes").set(20.0)
            status, body = _get(server.url + "/health")
            assert status == 503
            assert json.loads(body)["status"] == "degraded"

    def test_health_recovers_to_200_after_shard_failover(self):
        """The probe lifecycle of a worker death: 503 with the dead
        shard named while it is down, back to 200 once failover brings
        the respawned worker's liveness gauge up."""
        registry = Registry()
        registry.gauge("sharded.shards").set(2)
        registry.gauge("sharded.config.max_watermark_lag").set(900.0)
        registry.gauge("sharded.shard.alive", shard="0").set(1)
        registry.gauge("sharded.shard.alive", shard="1").set(1)
        with MetricsServer(registry, 0) as server:
            status, __ = _get(server.url + "/health")
            assert status == 200
            # worker 0 dies: the coordinator zeroes its liveness gauge.
            registry.gauge("sharded.shard.alive", shard="0").set(0)
            status, body = _get(server.url + "/health")
            document = json.loads(body)
            assert status == 503
            assert "shard 0: dead worker" in document["reasons"]
            assert document["sharded"]["per_shard"]["0"]["alive"] == 0
            # failover respawns it; health must come back without restart.
            registry.gauge("sharded.shard.alive", shard="0").set(1)
            registry.counter("sharded.failovers").inc()
            status, body = _get(server.url + "/health")
            assert status == 200
            assert json.loads(body)["sharded"]["failovers"] == 1

    def test_timeline_404_without_sampler_200_with(self):
        registry = Registry()
        with MetricsServer(registry, 0) as server:
            status, __ = _get(server.url + "/timeline")
            assert status == 404
        sampler = TimelineSampler(registry, capacity=4)
        sampler.sample(timestamp=1.0)
        with MetricsServer(registry, 0, sampler=sampler) as server:
            status, body = _get(server.url + "/timeline")
        assert status == 200
        assert json.loads(body)["timestamps"] == [1.0]

    def test_unknown_path_is_json_404_listing_endpoints(self):
        with MetricsServer(Registry(), 0) as server:
            status, body = _get(server.url + "/nope")
        assert status == 404
        assert "/metrics" in json.loads(body)["endpoints"]

    def test_scrapes_are_counted_into_the_registry(self):
        registry = Registry()
        with MetricsServer(registry, 0) as server:
            _get(server.url + "/metrics")
            _get(server.url + "/metrics")
            _get(server.url + "/health")
        assert registry.value("export.requests", endpoint="metrics") == 2
        assert registry.value("export.requests", endpoint="health") == 1

    def test_live_updates_visible_between_scrapes(self):
        registry = Registry()
        counter = registry.counter("work.done")
        with MetricsServer(registry, 0) as server:
            __, before = _get(server.url + "/metrics")
            counter.inc(5)
            __, after = _get(server.url + "/metrics")
        assert "repro_work_done 0" in before
        assert "repro_work_done 5" in after

    def test_close_is_idempotent_and_releases_port(self):
        server = MetricsServer(Registry(), 0)
        server.start()
        port = server.port
        server.close()
        server.close()
        # the port must be rebindable immediately.
        with MetricsServer(Registry(), port):
            pass
