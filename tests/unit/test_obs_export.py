"""Unit tests for repro.obs.export — health verdicts and the HTTP server."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    MetricsServer,
    Registry,
    TimelineSampler,
    health_report,
)


def _get(url: str):
    """GET a URL; returns (status, body text) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


class TestHealthReport:
    def test_empty_snapshot_is_ok(self):
        report = health_report(Registry().snapshot())
        assert report == {"status": "ok", "reasons": [],
                          "governor": None, "supervisor": None}

    def test_governor_within_budget_is_ok_with_section(self):
        registry = Registry()
        registry.gauge("governor.budget_bytes").set(1000.0)
        registry.gauge("governor.tracked_bytes").set(400.0)
        registry.counter("governor.evictions").inc(3)
        report = health_report(registry.snapshot())
        assert report["status"] == "ok"
        assert report["governor"]["tracked_bytes"] == 400.0
        assert report["governor"]["evictions"] == 3

    def test_governor_over_budget_degrades(self):
        registry = Registry()
        registry.gauge("governor.budget_bytes").set(1000.0)
        registry.gauge("governor.tracked_bytes").set(2000.0)
        report = health_report(registry.snapshot())
        assert report["status"] == "degraded"
        assert any("over budget" in reason for reason in report["reasons"])

    def test_supervisor_skipped_chunks_degrade(self):
        registry = Registry()
        registry.counter("parallel.supervisor.skipped").inc(2)
        report = health_report(registry.snapshot())
        assert report["status"] == "degraded"
        assert any("skipped 2 chunk" in reason
                   for reason in report["reasons"])

    def test_supervisor_degraded_serial_degrades(self):
        registry = Registry()
        registry.counter("parallel.supervisor.degraded_serial").inc()
        report = health_report(registry.snapshot())
        assert report["status"] == "degraded"

    def test_healthy_supervisor_counters_stay_ok(self):
        registry = Registry()
        registry.counter("parallel.supervisor.retries").inc(4)
        report = health_report(registry.snapshot())
        assert report["status"] == "ok"
        assert report["supervisor"] == {"parallel.supervisor.retries": 4}


class TestMetricsServer:
    def test_rejects_out_of_range_port(self):
        with pytest.raises(ConfigurationError, match="port"):
            MetricsServer(Registry(), 70000)

    def test_port_zero_binds_a_free_port(self):
        with MetricsServer(Registry(), 0) as server:
            assert 0 < server.port <= 65535
            assert server.url == f"http://127.0.0.1:{server.port}"

    def test_metrics_endpoint_serves_prometheus_text(self):
        registry = Registry()
        registry.counter("stream.requests.fed").inc(42)
        with MetricsServer(registry, 0) as server:
            status, body = _get(server.url + "/metrics")
        assert status == 200
        assert "repro_stream_requests_fed 42" in body

    def test_snapshot_endpoint_serves_versioned_json(self):
        registry = Registry()
        registry.counter("ingest.parsed").inc(7)
        with MetricsServer(registry, 0) as server:
            status, body = _get(server.url + "/snapshot")
        document = json.loads(body)
        assert status == 200
        assert document["version"] == 1
        assert document["counters"]["ingest.parsed"] == 7

    def test_health_answers_200_ok_and_503_degraded(self):
        registry = Registry()
        with MetricsServer(registry, 0) as server:
            status, body = _get(server.url + "/health")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            registry.gauge("governor.budget_bytes").set(10.0)
            registry.gauge("governor.tracked_bytes").set(20.0)
            status, body = _get(server.url + "/health")
            assert status == 503
            assert json.loads(body)["status"] == "degraded"

    def test_timeline_404_without_sampler_200_with(self):
        registry = Registry()
        with MetricsServer(registry, 0) as server:
            status, __ = _get(server.url + "/timeline")
            assert status == 404
        sampler = TimelineSampler(registry, capacity=4)
        sampler.sample(timestamp=1.0)
        with MetricsServer(registry, 0, sampler=sampler) as server:
            status, body = _get(server.url + "/timeline")
        assert status == 200
        assert json.loads(body)["timestamps"] == [1.0]

    def test_unknown_path_is_json_404_listing_endpoints(self):
        with MetricsServer(Registry(), 0) as server:
            status, body = _get(server.url + "/nope")
        assert status == 404
        assert "/metrics" in json.loads(body)["endpoints"]

    def test_scrapes_are_counted_into_the_registry(self):
        registry = Registry()
        with MetricsServer(registry, 0) as server:
            _get(server.url + "/metrics")
            _get(server.url + "/metrics")
            _get(server.url + "/health")
        assert registry.value("export.requests", endpoint="metrics") == 2
        assert registry.value("export.requests", endpoint="health") == 1

    def test_live_updates_visible_between_scrapes(self):
        registry = Registry()
        counter = registry.counter("work.done")
        with MetricsServer(registry, 0) as server:
            __, before = _get(server.url + "/metrics")
            counter.inc(5)
            __, after = _get(server.url + "/metrics")
        assert "repro_work_done 0" in before
        assert "repro_work_done 5" in after

    def test_close_is_idempotent_and_releases_port(self):
        server = MetricsServer(Registry(), 0)
        server.start()
        port = server.port
        server.close()
        server.close()
        # the port must be rebindable immediately.
        with MetricsServer(Registry(), port):
            pass
