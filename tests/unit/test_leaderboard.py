"""Unit tests for the heuristic leaderboard."""

from __future__ import annotations

import pytest

from repro.evaluation.leaderboard import (
    DEFAULT_LINEUP,
    leaderboard,
    leaderboard_from_requests,
    render_leaderboard,
)
from repro.exceptions import EvaluationError
from repro.simulator.config import SimulationConfig


@pytest.fixture(scope="module")
def board(small_site, small_simulation):
    return leaderboard_from_requests(small_site, small_simulation,
                                     replicates=60)


class TestLeaderboard:
    def test_full_lineup_present(self, board):
        assert {row.name for row in board} == set(DEFAULT_LINEUP)

    def test_ranks_are_sequential_and_sorted(self, board):
        assert [row.rank for row in board] == list(
            range(1, len(board) + 1))
        estimates = [row.matched.estimate for row in board]
        assert estimates == sorted(estimates, reverse=True)

    def test_referrer_tops_and_sees_combined(self, board):
        assert board[0].name == "referrer"
        assert board[0].log_view == "combined"

    def test_everyone_else_sees_clf(self, board):
        assert all(row.log_view == "clf" for row in board
                   if row.name != "referrer")

    def test_smart_sra_is_best_reactive(self, board):
        # AMP enumerates every maximal path, a superset of Smart-SRA's
        # output, so it may edge heur4 out of the top reactive slot;
        # among the paper's own four, heur4 must stay on top.
        reactive = [row for row in board if row.name != "referrer"]
        assert reactive[0].name in ("heur4", "amp")
        paper_four = [row for row in board
                      if row.name in ("heur1", "heur2", "heur3", "heur4")]
        assert paper_four[0].name == "heur4"

    def test_intervals_bracket_estimates(self, board):
        for row in board:
            assert row.matched.low <= row.matched.estimate \
                <= row.matched.high

    def test_render(self, board):
        text = render_leaderboard(board)
        assert "matched [95% CI]" in text
        assert "heur4" in text
        assert text.count("\n") == len(board) + 1

    def test_render_empty_rejected(self):
        with pytest.raises(EvaluationError):
            render_leaderboard([])

    def test_custom_lineup(self, small_site):
        rows = leaderboard(small_site,
                           SimulationConfig(n_agents=30, seed=2),
                           names=("heur2", "heur4"), replicates=30)
        assert {row.name for row in rows} == {"heur2", "heur4"}

    def test_unknown_name_rejected(self, small_site):
        with pytest.raises(EvaluationError):
            leaderboard(small_site, SimulationConfig(n_agents=5),
                        names=("nonsense",))
