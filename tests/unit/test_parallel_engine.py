"""Unit tests for the parallel execution engine (``repro.parallel``)."""

from __future__ import annotations

import gc

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import Registry, get_registry, use_registry
from repro.parallel import (
    CHUNKS_PER_WORKER,
    ParallelPlan,
    available_cpus,
    parallel_map,
    paused_gc,
    plan_execution,
    resolve_workers,
    shard_by_key,
    shard_by_user,
)
from repro.sessions.model import Request


def _square(x):
    """Module-level so it pickles into worker processes."""
    return x * x


def _count_and_square(x):
    """Work function that also ticks the ambient metrics registry."""
    registry = get_registry()
    registry.counter("engine.test.calls").inc()
    registry.gauge("engine.test.last").set(x)
    registry.histogram("engine.test.values", (2.0, 8.0, 32.0)).observe(x)
    return x * x


class TestResolveWorkers:
    def test_none_and_zero_mean_auto(self):
        assert resolve_workers(None) == available_cpus()
        assert resolve_workers(0) == available_cpus()

    def test_positive_is_literal(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            resolve_workers(-1)

    def test_bool_rejected(self):
        # True is an int subclass; accepting it would hide caller bugs.
        with pytest.raises(ConfigurationError, match="integer"):
            resolve_workers(True)

    def test_non_integer_rejected(self):
        with pytest.raises(ConfigurationError, match="integer"):
            resolve_workers(2.5)


class TestPlanExecution:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown parallel mode"):
            plan_execution(10, workers=2, mode="fibers")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            plan_execution(10, workers=2, mode="thread", chunk_size=0)

    def test_single_item_short_circuits_to_serial(self):
        assert plan_execution(1, workers=8).mode == "serial"

    def test_one_worker_short_circuits_to_serial(self):
        assert plan_execution(100, workers=1).mode == "serial"

    def test_explicit_serial_mode(self):
        plan = plan_execution(100, workers=8, mode="serial")
        assert plan == ParallelPlan(1, "serial", 100)

    def test_workers_capped_by_items(self):
        plan = plan_execution(3, workers=64, mode="thread")
        assert plan.workers == 3

    def test_auto_resolves_to_process_for_picklable_probe(self):
        plan = plan_execution(32, workers=4, mode="auto",
                              probe=(_square, 1))
        assert plan.mode == "process"

    def test_auto_falls_back_to_thread_for_unpicklable_probe(self):
        plan = plan_execution(32, workers=4, mode="auto",
                              probe=(lambda x: x, 1))
        assert plan.mode == "thread"

    def test_default_chunking_targets_chunks_per_worker(self):
        plan = plan_execution(64, workers=4, mode="thread")
        n_chunks = -(-64 // plan.chunk_size)
        assert n_chunks == 4 * CHUNKS_PER_WORKER

    def test_explicit_chunk_size_honoured(self):
        assert plan_execution(64, workers=4, mode="thread",
                              chunk_size=5).chunk_size == 5


class TestParallelMap:
    @pytest.mark.parametrize("mode", ["serial", "thread", "auto"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial_comprehension(self, mode, workers):
        items = list(range(37))
        assert parallel_map(_square, items, workers=workers,
                            mode=mode) == [x * x for x in items]

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_lambda_degrades_to_threads_in_auto_mode(self):
        # the lambda cannot pickle, so auto must pick the thread pool and
        # still produce the exact serial result.
        items = list(range(20))
        assert parallel_map(lambda x: x + 1, items, workers=4,
                            mode="auto") == [x + 1 for x in items]

    def test_order_preserved_with_tiny_chunks(self):
        items = list(range(50))
        assert parallel_map(_square, items, workers=4, mode="thread",
                            chunk_size=1) == [x * x for x in items]

    def test_worker_exception_propagates(self):
        def boom(x):
            raise ValueError(f"item {x}")
        with pytest.raises(ValueError, match="item"):
            parallel_map(boom, range(8), workers=2, mode="thread")

    def test_obs_merged_back_exactly(self):
        serial, parallel = Registry(), Registry()
        items = list(range(23))
        with use_registry(serial):
            expected = [_count_and_square(x) for x in items]
        with use_registry(parallel):
            got = parallel_map(_count_and_square, items, workers=4,
                               mode="thread")
        assert got == expected
        assert parallel.snapshot() == serial.snapshot()

    def test_obs_gauge_last_write_matches_serial(self):
        # chunk snapshots merge in chunk order, so the surviving gauge
        # value is the last item's — same as the serial loop.
        registry = Registry()
        with use_registry(registry):
            parallel_map(_count_and_square, range(10), workers=3,
                         mode="thread")
        series = registry.snapshot()["gauges"]
        assert series["engine.test.last"] == 9

    def test_disabled_registry_collects_nothing(self):
        registry = Registry(enabled=False)
        with use_registry(registry):
            parallel_map(_count_and_square, range(6), workers=2,
                         mode="thread")
        assert registry.snapshot()["counters"] == {}


class TestPausedGC:
    def test_disables_then_restores(self):
        assert gc.isenabled()
        with paused_gc():
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with paused_gc():
                raise RuntimeError("boom")
        assert gc.isenabled()

    def test_respects_caller_disabled_gc(self):
        gc.disable()
        try:
            with paused_gc():
                assert not gc.isenabled()
            assert not gc.isenabled()
        finally:
            gc.enable()


class TestSharding:
    def test_shard_by_key_first_appearance_order(self):
        items = ["b1", "a1", "b2", "c1", "a2"]
        shards = shard_by_key(items, key=lambda s: s[0])
        assert shards == [["b1", "b2"], ["a1", "a2"], ["c1"]]

    def test_concatenated_shards_reorder_by_group_only(self):
        items = list(range(20))
        shards = shard_by_key(items, key=lambda x: x % 3)
        flattened = [item for shard in shards for item in shard]
        assert sorted(flattened) == items
        for shard in shards:
            assert shard == sorted(shard)

    def test_shard_by_user(self):
        requests = [Request(0.0, "u2", "A"), Request(1.0, "u1", "B"),
                    Request(2.0, "u2", "C")]
        shards = shard_by_user(requests)
        assert [[r.user_id for r in shard] for shard in shards] == \
            [["u2", "u2"], ["u1"]]
        assert [r.page for r in shards[0]] == ["A", "C"]
