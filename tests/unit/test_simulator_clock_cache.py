"""Unit tests for the stay-time sampler and the browser cache."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import SimulationError
from repro.simulator.cache import BrowserCache
from repro.simulator.clock import StayTimeSampler


class TestStayTimeSampler:
    def test_samples_within_truncation(self):
        sampler = StayTimeSampler(mean=132.0, deviation=30.0, max_stay=600.0,
                                  rng=random.Random(0))
        draws = [sampler.sample() for __ in range(2000)]
        assert all(0 < value <= 600.0 for value in draws)

    def test_mean_roughly_matches(self):
        sampler = StayTimeSampler(mean=132.0, deviation=30.0, max_stay=600.0,
                                  rng=random.Random(1))
        draws = [sampler.sample() for __ in range(5000)]
        assert 125.0 < sum(draws) / len(draws) < 139.0

    def test_zero_deviation_is_constant(self):
        sampler = StayTimeSampler(mean=120.0, deviation=0.0, max_stay=600.0,
                                  rng=random.Random(2))
        assert sampler.sample() == 120.0

    def test_rejects_mean_above_truncation(self):
        with pytest.raises(SimulationError, match="exceeds"):
            StayTimeSampler(mean=700.0, deviation=30.0, max_stay=600.0,
                            rng=random.Random(0))

    def test_zero_deviation_invalid_constant(self):
        sampler = StayTimeSampler(mean=0.0, deviation=0.0, max_stay=600.0,
                                  rng=random.Random(0))
        with pytest.raises(SimulationError):
            sampler.sample()

    def test_deterministic_given_rng(self):
        a = StayTimeSampler(132.0, 30.0, 600.0, random.Random(7))
        b = StayTimeSampler(132.0, 30.0, 600.0, random.Random(7))
        assert [a.sample() for __ in range(10)] == [
            b.sample() for __ in range(10)]


class TestBrowserCache:
    def test_first_request_misses_then_hits(self):
        cache = BrowserCache()
        assert cache.request("A") is True
        assert cache.request("A") is False
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_hit_rate_before_any_request(self):
        assert BrowserCache().hit_rate == 0.0

    def test_preseeded_pages_hit(self):
        cache = BrowserCache(["A"])
        assert cache.request("A") is False

    def test_unvisited_preserves_order(self):
        cache = BrowserCache(["B"])
        assert cache.unvisited(["A", "B", "C"]) == ["A", "C"]

    def test_container_protocol(self):
        cache = BrowserCache(["A", "B"])
        assert "A" in cache
        assert len(cache) == 2
        assert set(cache) == {"A", "B"}
