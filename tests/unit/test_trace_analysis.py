"""Unit tests for repro.obs.spans and ``repro trace analyze``.

All synthetic durations are dyadic (multiples of 1/64) so float
arithmetic is exact and the telescoping identity
``root inclusive == critical + idle`` can be asserted with ``==``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exceptions import TraceError
from repro.obs import analyze_trace, build_span_forest, parse_trace
from repro.obs.spans import TraceReport


def _span(span_id, name, dur, parent=None, attrs=None, error=None):
    record = {"type": "span", "name": name, "id": span_id,
              "parent": parent, "ts": float(span_id), "dur_s": dur}
    if attrs:
        record["attrs"] = attrs
    if error:
        record["error"] = error
    return record


def _lines(records):
    return [json.dumps(record) for record in records]


#: a root with two children, one of which has its own child:
#:   root(8.0) -> a(4.5) -> leaf(1.25)
#:             -> b(2.0)
_TREE = [_span(1, "cli.reconstruct", 8.0),
         _span(2, "sessions.phase1", 4.5, parent=1),
         _span(3, "leaf", 1.25, parent=2),
         _span(4, "sessions.phase2", 2.0, parent=1)]


class TestParsing:
    def test_blank_lines_skipped(self):
        records = parse_trace(["", json.dumps(_TREE[0]), "  "])
        assert len(records) == 1

    def test_invalid_json_raises(self):
        with pytest.raises(TraceError, match="line 1"):
            parse_trace(["{nope"])

    def test_non_record_raises(self):
        with pytest.raises(TraceError, match="not a trace record"):
            parse_trace(['{"name": "x"}'])

    def test_span_missing_field_raises(self):
        with pytest.raises(TraceError, match="dur_s"):
            parse_trace(['{"type": "span", "name": "x", "id": 1}'])

    def test_duplicate_span_id_raises(self):
        with pytest.raises(TraceError, match="duplicate"):
            build_span_forest([_span(1, "a", 1.0), _span(1, "b", 1.0)])

    def test_unknown_parent_raises(self):
        with pytest.raises(TraceError, match="unknown parent"):
            build_span_forest([_span(2, "a", 1.0, parent=9)])

    def test_event_naming_unknown_span_raises(self):
        records = [_span(1, "a", 1.0),
                   {"type": "event", "name": "x", "ts": 0.0, "span": 7}]
        with pytest.raises(TraceError, match="unknown span"):
            build_span_forest(records)

    def test_events_attach_to_their_span(self):
        records = [_span(1, "a", 1.0),
                   {"type": "event", "name": "tick", "ts": 0.5, "span": 1}]
        roots = build_span_forest(records)
        assert roots[0].events[0]["name"] == "tick"

    def test_empty_trace_raises(self):
        with pytest.raises(TraceError, match="no spans"):
            TraceReport([])


class TestAnalysis:
    def test_exclusive_time_telescopes_exactly(self):
        report = analyze_trace(_lines(_TREE))
        root = report.heaviest_root
        assert root.dur_s == 8.0
        assert root.exclusive == 8.0 - 4.5 - 2.0
        total_exclusive = sum(node.exclusive for node in root.walk())
        assert total_exclusive == 8.0

    def test_identity_root_inclusive_equals_critical_plus_idle(self):
        report = analyze_trace(_lines(_TREE))
        assert (report.critical_seconds + report.idle_seconds
                == report.heaviest_root.dur_s)

    def test_critical_path_descends_heaviest_child(self):
        report = analyze_trace(_lines(_TREE))
        assert [node.name for node in report.critical_path] \
            == ["cli.reconstruct", "sessions.phase1", "leaf"]

    def test_forest_total_and_heaviest_root(self):
        forest = _TREE + [_span(10, "cli.stats", 0.5)]
        report = analyze_trace(_lines(forest))
        assert report.total_seconds == 8.5
        assert report.heaviest_root.name == "cli.reconstruct"

    def test_display_name_carries_chunk_attempt_and_error(self):
        records = [_span(1, "parallel.chunk", 1.0,
                         attrs={"chunk": 3, "attempt": 1}, error="boom")]
        roots = build_span_forest(records)
        assert roots[0].display_name \
            == "parallel.chunk[chunk=3,attempt=1,error]"

    def test_by_name_aggregates_and_sorts_by_self_time(self):
        report = analyze_trace(_lines(_TREE))
        rows = report.by_name()
        assert rows[0]["name"] == "sessions.phase1"  # self 3.25s
        assert rows[0]["count"] == 1
        assert rows[0]["exclusive_s"] == 4.5 - 1.25

    def test_folded_lines_cover_every_span(self):
        report = analyze_trace(_lines(_TREE))
        folded = report.folded()
        assert len(folded) == 4
        assert ("cli.reconstruct;sessions.phase1;leaf 1250000"
                in folded)
        stacks = {line.rsplit(" ", 1)[0] for line in folded}
        assert "cli.reconstruct" in stacks

    def test_to_dict_is_json_clean(self):
        document = analyze_trace(_lines(_TREE)).to_dict()
        assert document["version"] == 1
        assert document["spans"] == 4
        json.dumps(document)

    def test_render_reports_the_identity(self):
        text = analyze_trace(_lines(_TREE)).render(top=3)
        assert "identity: root inclusive 8.000000s == " \
               "critical" in text
        assert "critical path:" in text

    def test_analyze_from_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(_lines(_TREE)) + "\n",
                        encoding="utf-8")
        report = analyze_trace(str(path))
        assert report.total_seconds == 8.0


class TestTraceCli:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(_lines(_TREE)) + "\n",
                        encoding="utf-8")
        return str(path)

    def test_analyze_prints_report(self, trace_file, capsys):
        assert main(["trace", "analyze", trace_file]) == 0
        printed = capsys.readouterr().out
        assert "identity:" in printed

    def test_json_output_parses(self, trace_file, capsys):
        assert main(["trace", "analyze", trace_file, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["critical_seconds"] + document["idle_seconds"] \
            == 8.0

    def test_folded_output_written(self, trace_file, tmp_path, capsys):
        out = str(tmp_path / "folded.txt")
        assert main(["trace", "analyze", trace_file,
                     "--folded", out]) == 0
        with open(out, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 4

    def test_stdin_dash_reads_lines(self, capsys, monkeypatch):
        import io
        monkeypatch.setattr("sys.stdin",
                            io.StringIO("\n".join(_lines(_TREE))))
        assert main(["trace", "analyze", "-"]) == 0
        assert "critical path:" in capsys.readouterr().out

    def test_missing_file_is_a_one_line_error(self, capsys):
        assert main(["trace", "analyze", "/nonexistent.jsonl"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and len(err.splitlines()) == 1

    def test_malformed_trace_is_a_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{broken\n", encoding="utf-8")
        assert main(["trace", "analyze", str(path)]) == 1
        assert capsys.readouterr().err.startswith("error:")


class TestEndToEnd:
    def test_reconstruct_trace_analyzes_with_phase_attribution(
            self, tmp_path, capsys):
        """A real --trace run parses back, satisfies the identity
        exactly, and attributes time through the phase spans."""
        site = str(tmp_path / "site.json")
        log = str(tmp_path / "access.log")
        trace = str(tmp_path / "trace.jsonl")
        assert main(["topology", "--pages", "30", "--out-degree", "4",
                     "--seed", "3", "--output", site]) == 0
        assert main(["simulate", "--topology", site, "--agents", "25",
                     "--seed", "1", "--log", log,
                     "--sessions", str(tmp_path / "truth.json")]) == 0
        assert main(["reconstruct", "--log", log, "--heuristic", "heur4",
                     "--topology", site,
                     "--output", str(tmp_path / "out.json"),
                     "--trace", trace]) == 0
        capsys.readouterr()
        report = analyze_trace(trace)
        names = {node.name for node in report.spans()}
        assert {"cli.reconstruct", "sessions.reconstruct",
                "sessions.phase1", "sessions.phase2"} <= names
        # the exact identity the render prints.
        assert (report.critical_seconds + report.idle_seconds
                == pytest.approx(report.heaviest_root.dur_s, abs=1e-12))
        assert report.folded()
        assert len(report.critical_path) >= 2
