"""Mutation tests for the invariant verifier: every rule must be falsifiable.

A verifier that never fires is indistinguishable from one that works.
For each of the five output rules (plus the AMP-semantics maximality
variant) these tests take a *clean* session list, apply one targeted
mutation, and assert the verifier reports exactly the rule the mutation
breaks — proving each check is live, not vacuously green.

The AMP half also locks the semantics boundary both ways: output shapes
that are *legal* All-Maximal-Paths results (overlapping paths, proper
prefixes under skip links) must NOT be flagged under ``semantics="amp"``,
while a deliberately truncated session (a contiguous infix with a
strictly-ordered boundary neighbor) must be.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import SmartSRAConfig
from repro.core.smart_sra import SmartSRA
from repro.diffcheck.invariants import verify_sessions
from repro.sessions.maximal_paths import AllMaximalPaths
from repro.sessions.model import Request, Session
from repro.topology.graph import WebGraph

MIN = 60.0


@pytest.fixture()
def site():
    """A -> B -> C -> D plus the skip link A -> C."""
    return WebGraph([("A", "B"), ("B", "C"), ("C", "D"), ("A", "C")],
                    start_pages=["A"])


@pytest.fixture()
def clean_sessions(site):
    stream = [Request(0.0, "u", "A"), Request(60.0, "u", "B"),
              Request(120.0, "u", "C"), Request(180.0, "u", "D")]
    sessions = SmartSRA(site).reconstruct(stream)
    assert verify_sessions(sessions, site) == ()
    return [tuple(session) for session in sessions]


def _rules(violations):
    return {violation.rule for violation in violations}


class TestEachRuleIsFalsifiable:
    def test_ordering_mutation_fires_ordering(self, site, clean_sessions):
        session = clean_sessions[0]
        mutated = (session[1],) + (session[0],) + session[2:]
        rules = _rules(verify_sessions([mutated], site))
        assert "ordering" in rules

    def test_topology_mutation_fires_topology(self, site, clean_sessions):
        session = clean_sessions[0]
        # retarget one request at a page with no inbound link from its
        # predecessor, keeping timestamps legal so only rule 2 fires.
        mutated = (session[0],
                   dataclasses.replace(session[1], page="D")) + session[2:]
        violations = verify_sessions([mutated], site)
        assert _rules(violations) == {"topology"}

    def test_gap_mutation_fires_max_gap(self, site, clean_sessions):
        session = clean_sessions[0]
        late = dataclasses.replace(session[-1],
                                   timestamp=session[-2].timestamp
                                   + 11 * MIN)
        violations = verify_sessions([session[:-1] + (late,)], site)
        assert "max-gap" in _rules(violations)

    def test_duration_mutation_fires_max_duration(self, site):
        # gaps of 9 minutes each stay under rho; five of them exceed delta.
        session = tuple(Request(i * 9 * MIN, "u", page)
                        for i, page in enumerate("ABCDC"))
        site_loop = WebGraph([("A", "B"), ("B", "C"), ("C", "D"),
                              ("D", "C")], start_pages=["A"])
        violations = verify_sessions([session], site_loop)
        assert _rules(violations) == {"max-duration"}

    def test_synthetic_mutation_fires_maximality(self, site, clean_sessions):
        session = clean_sessions[0]
        mutated = session[:1] + (
            dataclasses.replace(session[1], synthetic=True),) + session[2:]
        violations = verify_sessions([mutated], site)
        assert _rules(violations) == {"maximality"}
        assert "synthetic" in violations[0].detail

    def test_prefix_mutation_fires_maximality(self, site, clean_sessions):
        session = clean_sessions[0]
        truncated = session[:-1]
        violations = verify_sessions([session, truncated], site)
        assert _rules(violations) == {"maximality"}
        assert "proper prefix" in violations[0].detail

    def test_unknown_semantics_rejected(self, site, clean_sessions):
        with pytest.raises(ValueError, match="semantics"):
            verify_sessions(clean_sessions, site, semantics="phase9")


class TestAmpSemantics:
    def test_legal_amp_output_is_clean(self, site):
        stream = [Request(0.0, "u", "A"), Request(30.0, "u", "B"),
                  Request(60.0, "u", "C"), Request(90.0, "u", "D")]
        sessions = AllMaximalPaths(site).reconstruct(stream)
        # the skip link makes [A, C, D] overlap [A, B, C, D] — legal AMP
        # output that the smart-sra prefix rule would never produce.
        assert len(sessions) == 2
        assert verify_sessions(sessions, site, semantics="amp") == ()

    def test_prefix_under_equal_timestamps_is_legal_amp(self, site):
        # duplicate request at one timestamp: a root can share its body
        # with a sibling's prefix, so the tie boundary must not be
        # flagged under amp semantics (but stays a smart-sra violation).
        long = (Request(0.0, "u", "A"), Request(30.0, "u", "B"),
                Request(60.0, "u", "C"))
        short = (Request(0.0, "u", "A"), Request(30.0, "u", "B"))
        tied = (Request(30.0, "u", "B"), Request(30.0, "u", "C"))
        amp_clean = verify_sessions([long, tied], site, semantics="amp")
        assert amp_clean == ()
        assert _rules(verify_sessions([long, short], site)) == {
            "maximality"}

    def test_truncated_session_fires_amp_maximality(self, site):
        # chop the tail off one AMP path: the surviving sibling's
        # strictly-later neighbor at the cut proves the endpoint had an
        # edge, so the infix rule must fire.
        full = (Request(0.0, "u", "A"), Request(30.0, "u", "B"),
                Request(60.0, "u", "C"), Request(90.0, "u", "D"))
        truncated = full[:2]
        violations = verify_sessions([full, truncated], site,
                                     semantics="amp")
        assert _rules(violations) == {"maximality"}
        assert "contiguous infix" in violations[0].detail

    def test_interior_infix_fires_amp_maximality(self, site):
        full = (Request(0.0, "u", "A"), Request(30.0, "u", "B"),
                Request(60.0, "u", "C"), Request(90.0, "u", "D"))
        interior = full[1:3]
        violations = verify_sessions([full, interior], site,
                                     semantics="amp")
        assert _rules(violations) == {"maximality"}

    def test_amp_engine_output_end_to_end(self, site):
        # the real engine's output over a cyclic revisit stream passes
        # its own semantics and fails nothing else.
        loop_site = WebGraph([("A", "B"), ("B", "A"), ("B", "C")],
                             start_pages=["A"])
        stream = [Request(float(i * 30), "u", page)
                  for i, page in enumerate("ABABC")]
        sessions = AllMaximalPaths(loop_site).reconstruct(stream)
        assert verify_sessions(sessions, loop_site, semantics="amp") == ()

    def test_rules_one_to_four_identical_across_semantics(self, site,
                                                          clean_sessions):
        session = clean_sessions[0]
        late = dataclasses.replace(session[-1],
                                   timestamp=session[-2].timestamp
                                   + 11 * MIN)
        mutated = session[:-1] + (late,)
        for semantics in ("smart-sra", "amp"):
            assert "max-gap" in _rules(verify_sessions(
                [mutated], site, semantics=semantics))
