"""Crawler and NAT-pool agent classes (repro.simulator.adversarial)."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulator.adversarial import (
    adversarial_workload,
    simulate_crawler,
    simulate_nat_pool,
)
from repro.simulator.config import SimulationConfig
from repro.topology.generators import random_site


@pytest.fixture(scope="module")
def site():
    return random_site(40, 4.0, seed=9)


class TestCrawler:
    def test_fixed_cadence_never_idles(self, site):
        trace = simulate_crawler("bot", site, requests=50, interval=5.0)
        assert len(trace) == 50
        gaps = {round(b.timestamp - a.timestamp, 9)
                for a, b in zip(trace, trace[1:])}
        assert gaps == {5.0}                 # never a closable gap
        assert {r.user_id for r in trace} == {"bot"}

    def test_deterministic(self, site):
        assert (simulate_crawler("bot", site, requests=30)
                == simulate_crawler("bot", site, requests=30))

    def test_walks_real_links(self, site):
        trace = simulate_crawler("bot", site, requests=80)
        for request in trace:
            if request.referrer is not None:
                assert site.has_link(request.referrer, request.page)

    def test_restarts_when_frontier_exhausts(self, site):
        # far more requests than pages forces at least one full re-crawl.
        trace = simulate_crawler("bot", site,
                                 requests=site.page_count * 3)
        assert len(trace) == site.page_count * 3

    @pytest.mark.parametrize("kwargs", [dict(requests=0),
                                        dict(interval=0.0),
                                        dict(interval=-1.0)])
    def test_bad_arguments_rejected(self, site, kwargs):
        with pytest.raises(SimulationError):
            simulate_crawler("bot", site, **kwargs)


class TestNatPool:
    def test_merges_humans_under_one_key(self, site):
        trace = simulate_nat_pool("nat", site, humans=6, seed=3)
        assert trace
        assert {r.user_id for r in trace} == {"nat"}
        times = [r.timestamp for r in trace]
        assert times == sorted(times)

    def test_prefix_stable_in_humans(self, site):
        # growing the pool must not change the existing humans' walks.
        small = simulate_nat_pool("nat", site, humans=3, seed=3)
        large = simulate_nat_pool("nat", site, humans=6, seed=3)
        assert set(small) <= set(large)

    def test_distinct_pools_differ(self, site):
        config = SimulationConfig(seed=0)
        assert (simulate_nat_pool("nat-a", site, config, humans=4, seed=3)
                != simulate_nat_pool("nat-b", site, config, humans=4,
                                     seed=3))

    @pytest.mark.parametrize("kwargs", [dict(humans=0),
                                        dict(start_spread=-1.0)])
    def test_bad_arguments_rejected(self, site, kwargs):
        with pytest.raises(SimulationError):
            simulate_nat_pool("nat", site, **kwargs)


class TestAdversarialWorkload:
    def test_mixes_all_traffic_classes_in_time_order(self, site):
        requests = adversarial_workload(
            site, crawlers=2, crawler_requests=30, nat_pools=2,
            humans_per_pool=3, normal_agents=2, seed=4)
        users = {r.user_id for r in requests}
        assert {"crawler-0", "crawler-1", "nat-0", "nat-1"} <= users
        assert any(user.startswith("user-") for user in users)
        times = [r.timestamp for r in requests]
        assert times == sorted(times)

    def test_deterministic(self, site):
        kwargs = dict(crawlers=1, crawler_requests=20, nat_pools=1,
                      humans_per_pool=2, normal_agents=2, seed=4)
        assert (adversarial_workload(site, **kwargs)
                == adversarial_workload(site, **kwargs))
