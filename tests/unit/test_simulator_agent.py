"""Unit tests for single-agent simulation (behaviors 1-4)."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ConfigurationError
from repro.simulator.agent import simulate_agent
from repro.simulator.config import SimulationConfig
from repro.topology.graph import WebGraph


@pytest.fixture()
def line_site():
    """A -> B -> C -> D, single start page A."""
    return WebGraph([("A", "B"), ("B", "C"), ("C", "D")], start_pages=["A"])


def _config(**overrides):
    defaults = dict(stp=0.05, lpp=0.0, nip=0.0, n_agents=1, seed=0)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestBasicWalk:
    def test_sessions_start_at_start_page(self, line_site):
        trace = simulate_agent("u", line_site, _config(), random.Random(1))
        assert trace.real_sessions[0].pages[0] == "A"

    def test_follows_links_forward(self, line_site):
        # With stp tiny, lpp=nip=0, the agent walks the whole line then
        # dead-ends (no unvisited successor, nothing to branch from).
        trace = simulate_agent("u", line_site, _config(stp=0.0001),
                               random.Random(3))
        assert trace.real_sessions[-1].pages == ("A", "B", "C", "D")

    def test_ground_truth_satisfies_topology_rule(self, line_site):
        trace = simulate_agent("u", line_site, _config(stp=0.001),
                               random.Random(5))
        for session in trace.real_sessions:
            for left, right in zip(session.pages, session.pages[1:]):
                assert line_site.has_link(left, right)

    def test_server_requests_chronological(self, line_site):
        trace = simulate_agent("u", line_site, _config(stp=0.001),
                               random.Random(5))
        times = [r.timestamp for r in trace.server_requests]
        assert times == sorted(times)

    def test_start_time_offsets_clock(self, line_site):
        trace = simulate_agent("u", line_site, _config(), random.Random(1),
                               start_time=1000.0)
        assert trace.server_requests[0].timestamp == 1000.0

    def test_request_bound_is_respected(self, line_site):
        config = _config(stp=0.0001, max_requests_per_agent=3)
        trace = simulate_agent("u", line_site, config, random.Random(2))
        total_landings = sum(len(s) for s in trace.real_sessions)
        assert total_landings <= 3


class TestCacheInteraction:
    def test_first_visits_reach_server(self, line_site):
        trace = simulate_agent("u", line_site, _config(stp=0.0001),
                               random.Random(3))
        assert [r.page for r in trace.server_requests] == ["A", "B", "C", "D"]
        assert trace.cache_misses == 4
        assert trace.cache_hits == 0

    def test_lpp_backtrack_hides_target_from_log(self):
        # A -> {B, C}; B is a dead end, so after [A, B] the agent must
        # branch back through A to reach C.  The second visit to A is a
        # cache hit: absent from the log, present in the ground truth.
        site = WebGraph([("A", "B"), ("A", "C")], start_pages=["A"])
        config = _config(stp=0.0001, lpp=0.9)
        trace = simulate_agent("u", site, config, random.Random(0))
        logged = [r.page for r in trace.server_requests]
        assert logged.count("A") == 1
        all_landings = [p for s in trace.real_sessions for p in s.pages]
        assert all_landings.count("A") >= 2
        assert trace.cache_hits >= 1

    def test_lpp_splits_real_session_at_branch(self):
        site = WebGraph([("A", "B"), ("A", "C")], start_pages=["A"])
        config = _config(stp=0.0001, lpp=0.9)
        trace = simulate_agent("u", site, config, random.Random(0))
        # paper behavior 3: the branched session starts at the backtrack
        # target, e.g. [A, B] then [A, C].
        assert len(trace.real_sessions) == 2
        firsts = {s.pages[0] for s in trace.real_sessions}
        assert firsts == {"A"}

    def test_synthetic_flags_mark_cache_hits(self):
        site = WebGraph([("A", "B"), ("A", "C")], start_pages=["A"])
        config = _config(stp=0.0001, lpp=0.9)
        trace = simulate_agent("u", site, config, random.Random(0))
        synthetic = [r for s in trace.real_sessions for r in s if r.synthetic]
        assert len(synthetic) == trace.cache_hits


class TestNIPBehavior:
    def test_nip_jump_starts_new_session(self):
        site = WebGraph([("A", "B"), ("S", "B")], start_pages=["A", "S"])
        config = _config(stp=0.0001, nip=0.95, max_requests_per_agent=6)
        trace = simulate_agent("u", site, config, random.Random(4))
        assert len(trace.real_sessions) >= 2

    def test_unaccessed_only_mode_terminates_when_exhausted(self):
        site = WebGraph([("A", "B")], pages=["A", "B", "S"],
                        start_pages=["A", "S"])
        config = _config(stp=0.0001, nip=0.99, nip_revisits=False,
                         max_requests_per_agent=50)
        trace = simulate_agent("u", site, config, random.Random(8))
        # only two start pages exist; the agent cannot jump forever.
        landings = sum(len(s) for s in trace.real_sessions)
        assert landings <= 4

    def test_revisit_mode_allows_repeated_entries(self):
        site = WebGraph([("A", "B"), ("S", "B")], start_pages=["A", "S"])
        config = _config(stp=0.0001, nip=0.95, nip_revisits=True,
                         max_requests_per_agent=20)
        trace = simulate_agent("u", site, config, random.Random(4))
        entries = [s.pages[0] for s in trace.real_sessions]
        assert len(entries) > 2  # keeps jumping long past 2 distinct starts


class TestDeadEnds:
    def test_dead_end_without_branch_terminates(self):
        site = WebGraph([("A", "B")], start_pages=["A"])
        trace = simulate_agent("u", site, _config(stp=0.0001),
                               random.Random(1))
        assert trace.real_sessions[-1].pages == ("A", "B")

    def test_trace_is_deterministic(self, line_site):
        a = simulate_agent("u", line_site, _config(), random.Random(42))
        b = simulate_agent("u", line_site, _config(), random.Random(42))
        assert a.real_sessions == b.real_sessions
        assert a.server_requests == b.server_requests


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"stp": 0.0}, {"stp": 1.5}, {"lpp": 1.0}, {"nip": -0.1},
        {"mean_stay": 0.0}, {"stay_deviation": -1.0}, {"max_stay": 0.0},
        {"n_agents": 0}, {"max_requests_per_agent": 0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**kwargs)

    def test_with_replaces_fields(self):
        config = SimulationConfig()
        assert config.with_(stp=0.2).stp == 0.2
        assert config.stp == 0.05
