"""Unit tests for the log writer, reader, and user partitioning."""

from __future__ import annotations

import pytest

from repro.exceptions import LogFormatError
from repro.logs.clf import CLFRecord
from repro.logs.reader import (
    iter_clf_lines,
    read_clf_file,
    records_to_requests,
)
from repro.logs.users import (
    IdentityAddressMap,
    UserAddressMap,
    partition_by_user,
)
from repro.logs.writer import requests_to_records, write_clf_file
from repro.sessions.model import Request


@pytest.fixture()
def sample_requests():
    return [
        Request(100.0, "alice", "P1"),
        Request(160.0, "alice", "P2"),
        Request(130.0, "bob", "P1"),
    ]


class TestUserAddressMap:
    def test_one_to_one_by_default(self):
        addresses = UserAddressMap()
        first = addresses.ip_for("alice")
        second = addresses.ip_for("bob")
        assert first != second
        assert addresses.ip_for("alice") == first  # stable

    def test_allocation_order(self):
        addresses = UserAddressMap()
        assert addresses.ip_for("a") == "10.0.0.1"
        assert addresses.ip_for("b") == "10.0.0.2"

    def test_proxy_grouping(self):
        addresses = UserAddressMap(proxy_group_size=2)
        ips = [addresses.ip_for(f"u{i}") for i in range(4)]
        assert ips[0] == ips[1]
        assert ips[2] == ips[3]
        assert ips[0] != ips[2]
        assert addresses.users_for(ips[0]) == ("u0", "u1")

    def test_rollover_across_host_byte(self):
        addresses = UserAddressMap()
        for index in range(255):
            addresses.ip_for(f"u{index}")
        assert addresses.ip_for("u254") == "10.0.1.1"

    def test_rejects_bad_group_size(self):
        with pytest.raises(LogFormatError):
            UserAddressMap(proxy_group_size=0)

    def test_identity_map(self):
        identity = IdentityAddressMap()
        assert identity.ip_for("alice") == "alice"
        assert identity.users_for("alice") == ("alice",)


class TestWriter:
    def test_records_carry_request_fields(self, sample_requests):
        records = requests_to_records(sample_requests, IdentityAddressMap())
        assert [r.host for r in records] == ["alice", "alice", "bob"]
        assert records[0].url == "/P1.html"
        assert records[0].method == "GET"
        assert records[0].status == 200

    def test_sizes_deterministic(self, sample_requests):
        first = requests_to_records(sample_requests, IdentityAddressMap())
        second = requests_to_records(sample_requests, IdentityAddressMap())
        assert [r.size for r in first] == [r.size for r in second]

    def test_write_returns_line_count(self, sample_requests, tmp_path):
        records = requests_to_records(sample_requests)
        path = str(tmp_path / "access.log")
        assert write_clf_file(path, records) == 3
        with open(path, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 3


class TestReader:
    def test_file_roundtrip(self, sample_requests, tmp_path):
        records = requests_to_records(sample_requests, IdentityAddressMap())
        path = str(tmp_path / "access.log")
        write_clf_file(path, records)
        parsed = read_clf_file(path)
        assert [r.url for r in parsed] == [r.url for r in records]
        assert [r.host for r in parsed] == [r.host for r in records]

    def test_requests_roundtrip_modulo_quantization(self, sample_requests,
                                                    tmp_path):
        records = requests_to_records(sample_requests, IdentityAddressMap())
        path = str(tmp_path / "access.log")
        write_clf_file(path, records)
        back = records_to_requests(read_clf_file(path))
        assert [(r.user_id, r.page) for r in back] == [
            ("alice", "P1"), ("alice", "P2"), ("bob", "P1")]
        # CLF stores whole seconds.
        assert [r.timestamp for r in back] == [100.0, 160.0, 130.0]

    def test_skip_malformed(self, tmp_path):
        path = str(tmp_path / "dirty.log")
        good = requests_to_records([Request(1.0, "u", "P1")],
                                   IdentityAddressMap())
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("garbage line\n")
            from repro.logs.clf import format_clf_line
            handle.write(format_clf_line(good[0]) + "\n")
        assert len(read_clf_file(path, skip_malformed=True)) == 1
        with pytest.raises(LogFormatError):
            read_clf_file(path)

    def test_blank_lines_skipped(self):
        assert list(iter_clf_lines(["", "  ", "\n"])) == []

    def test_page_view_filter(self):
        records = [
            CLFRecord("h", 1.0, "GET", "/a.html", "HTTP/1.1", 200, 1),
            CLFRecord("h", 2.0, "POST", "/a.html", "HTTP/1.1", 200, 1),
        ]
        assert len(records_to_requests(records)) == 1
        assert len(records_to_requests(records, page_views_only=False)) == 2


class TestPartitionByUser:
    def test_groups_and_sorts(self):
        records = [
            CLFRecord("ip1", 5.0, "GET", "/b.html", "HTTP/1.1", 200, 1),
            CLFRecord("ip2", 1.0, "GET", "/x.html", "HTTP/1.1", 200, 1),
            CLFRecord("ip1", 2.0, "GET", "/a.html", "HTTP/1.1", 200, 1),
        ]
        streams = partition_by_user(records)
        assert [r.page for r in streams["ip1"]] == ["a", "b"]
        assert [r.page for r in streams["ip2"]] == ["x"]

    def test_filters_non_page_views(self):
        records = [
            CLFRecord("ip1", 1.0, "GET", "/a.html", "HTTP/1.1", 404, 1),
        ]
        assert partition_by_user(records) == {}
        assert "ip1" in partition_by_user(records, page_views_only=False)
