"""Unit tests for repro.obs.baseline and ``repro bench-diff``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.obs import (
    build_baseline,
    compare_to_baseline,
    derive_metrics,
    load_sidecars,
)


def _snapshot(counters=None, histograms=None):
    return {"version": 1, "counters": counters or {}, "gauges": {},
            "histograms": histograms or {}}


def _seconds_histogram(total, count):
    return {"buckets": [[1.0, count]], "overflow": 0,
            "sum": total, "count": count}


#: a streaming sidecar: 1000 requests fed in 10s -> rate 100/s.
_FAST = _snapshot(
    counters={"stream.requests.fed": 1000},
    histograms={"stream.feed.seconds": _seconds_histogram(10.0, 1000)})


def _write_sidecar(directory, name, snapshot):
    path = directory / f"{name}.metrics.json"
    path.write_text(json.dumps(snapshot), encoding="utf-8")
    return path


class TestDeriveMetrics:
    def test_counters_pass_through_verbatim(self):
        metrics = derive_metrics(_snapshot(counters={"a.b": 7}))
        assert metrics["a.b"] == 7

    def test_histogram_mean_and_seconds_rate(self):
        metrics = derive_metrics(_FAST)
        assert metrics["stream.feed.seconds:mean"] == 10.0 / 1000
        assert metrics["stream.feed.seconds:rate"] == 1000 / 10.0

    def test_empty_histogram_mean_is_zero_no_rate(self):
        snapshot = _snapshot(histograms={
            "idle.seconds": _seconds_histogram(0.0, 0)})
        metrics = derive_metrics(snapshot)
        assert metrics["idle.seconds:mean"] == 0.0
        assert "idle.seconds:rate" not in metrics

    def test_non_seconds_histogram_gets_no_rate(self):
        snapshot = _snapshot(histograms={
            "session.length": _seconds_histogram(50.0, 10)})
        metrics = derive_metrics(snapshot)
        assert "session.length:mean" in metrics
        assert "session.length:rate" not in metrics


class TestSidecars:
    def test_load_names_by_stem(self, tmp_path):
        _write_sidecar(tmp_path, "bench_streaming", _FAST)
        sidecars = load_sidecars(str(tmp_path))
        assert list(sidecars) == ["bench_streaming"]

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="--emit-metrics"):
            load_sidecars(str(tmp_path))

    def test_invalid_json_raises(self, tmp_path):
        (tmp_path / "bad.metrics.json").write_text("{", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_sidecars(str(tmp_path))

    def test_wrong_version_raises(self, tmp_path):
        _write_sidecar(tmp_path, "bad", {"version": 2})
        with pytest.raises(ConfigurationError, match="version-1"):
            load_sidecars(str(tmp_path))

    def test_build_baseline_shape(self):
        baseline = build_baseline({"bench_streaming": _FAST})
        assert baseline["version"] == 1
        metrics = baseline["benches"]["bench_streaming"]["metrics"]
        assert metrics["stream.feed.seconds:rate"] == 100.0


class TestCompare:
    def _baseline(self):
        return build_baseline({"bench_streaming": _FAST})

    def test_identical_run_is_ok(self):
        report = compare_to_baseline({"bench_streaming": _FAST},
                                     self._baseline())
        assert report.ok and not report.regressions

    def test_rate_drop_over_threshold_regresses(self):
        slower = _snapshot(
            counters={"stream.requests.fed": 1000},
            histograms={"stream.feed.seconds":
                        _seconds_histogram(10.0, 750)})  # rate 75: -25%
        report = compare_to_baseline({"bench_streaming": slower},
                                     self._baseline(), threshold=0.20)
        assert not report.ok
        assert any(status == "REGRESSION" and metric.endswith(":rate")
                   for __, metric, status, __ in report.rows)

    def test_rate_drop_within_threshold_is_ok(self):
        slower = _snapshot(
            counters={"stream.requests.fed": 1000},
            histograms={"stream.feed.seconds":
                        _seconds_histogram(10.0, 900)})  # rate 90: -10%
        assert compare_to_baseline({"bench_streaming": slower},
                                   self._baseline(), threshold=0.20).ok

    def test_rate_gain_never_regresses(self):
        faster = _snapshot(
            counters={"stream.requests.fed": 1000},
            histograms={"stream.feed.seconds":
                        _seconds_histogram(10.0, 2000)})
        assert compare_to_baseline({"bench_streaming": faster},
                                   self._baseline()).ok

    def test_seconds_mean_rise_regresses(self):
        # mean rose 1.0 -> 2.0 while the rate column stays put (count
        # halves, sum constant would move both; pin the mean only).
        base = build_baseline({"bench": _snapshot(histograms={
            "step.other": _seconds_histogram(0.0, 0),
            "lat.seconds.observed":
                {"buckets": [[1.0, 10]], "overflow": 0,
                 "sum": 10.0, "count": 10}})})
        risen = _snapshot(histograms={
            "step.other": _seconds_histogram(0.0, 0),
            "lat.seconds.observed":
                {"buckets": [[1.0, 10]], "overflow": 0,
                 "sum": 20.0, "count": 10}})
        report = compare_to_baseline({"bench": risen}, base,
                                     threshold=0.20)
        rows = {metric: status for __, metric, status, __ in report.rows}
        assert rows["lat.seconds.observed:mean"] == "REGRESSION"

    def test_counter_change_is_drift_not_failure(self):
        shifted = _snapshot(
            counters={"stream.requests.fed": 2000},
            histograms={"stream.feed.seconds":
                        _seconds_histogram(10.0, 1000)})
        report = compare_to_baseline({"bench_streaming": shifted},
                                     self._baseline())
        assert report.ok
        rows = {metric: status for __, metric, status, __ in report.rows}
        assert rows["stream.requests.fed"] == "drift"

    def test_baselined_bench_without_sidecar_is_missing(self):
        report = compare_to_baseline({}, self._baseline())
        assert not report.ok
        assert report.rows[0][2] == "missing"

    def test_metric_no_longer_derivable_is_missing(self):
        gutted = _snapshot(counters={"stream.requests.fed": 1000})
        report = compare_to_baseline({"bench_streaming": gutted},
                                     self._baseline())
        assert not report.ok

    def test_new_bench_is_not_ratcheted(self):
        report = compare_to_baseline(
            {"bench_streaming": _FAST, "bench_new": _FAST},
            self._baseline())
        assert report.ok
        assert all(bench == "bench_streaming"
                   for bench, __, __, __ in report.rows)

    def test_quick_mode_ignores_values_but_not_structure(self):
        crawl = _snapshot(
            counters={"stream.requests.fed": 1},
            histograms={"stream.feed.seconds":
                        _seconds_histogram(100.0, 1)})
        assert compare_to_baseline({"bench_streaming": crawl},
                                   self._baseline(), quick=True).ok
        assert not compare_to_baseline({}, self._baseline(),
                                       quick=True).ok

    def test_zero_baseline_value_is_not_comparable(self):
        base = build_baseline({"bench": _snapshot(counters={"n": 0})})
        assert compare_to_baseline(
            {"bench": _snapshot(counters={"n": 50})}, base).ok

    def test_non_positive_threshold_raises(self):
        with pytest.raises(ConfigurationError, match="threshold"):
            compare_to_baseline({"bench_streaming": _FAST},
                                self._baseline(), threshold=0.0)

    def test_bad_baseline_version_raises(self):
        with pytest.raises(ConfigurationError, match="version"):
            compare_to_baseline({"bench_streaming": _FAST},
                                {"version": 99})

    def test_render_elides_ok_rows_unless_verbose(self):
        report = compare_to_baseline({"bench_streaming": _FAST},
                                     self._baseline())
        quiet = report.render()
        assert "all metrics within threshold" in quiet
        assert "verdict: ok" in quiet
        verbose = report.render(verbose=True)
        assert "stream.feed.seconds:rate" in verbose


class TestBenchDiffCli:
    @pytest.fixture()
    def recorded(self, tmp_path):
        """A results dir with one sidecar and a recorded baseline."""
        results = tmp_path / "results"
        results.mkdir()
        _write_sidecar(results, "bench_streaming", _FAST)
        baseline = tmp_path / "BENCH_BASELINE.json"
        assert main(["bench-diff", "--results", str(results),
                     "--baseline", str(baseline), "--update"]) == 0
        return {"results": results, "baseline": baseline,
                "dir": tmp_path}

    def test_update_writes_sorted_versioned_baseline(self, recorded):
        document = json.loads(
            recorded["baseline"].read_text(encoding="utf-8"))
        assert document["version"] == 1
        assert "bench_streaming" in document["benches"]
        metrics = document["benches"]["bench_streaming"]["metrics"]
        assert list(metrics) == sorted(metrics)

    def test_unchanged_run_exits_zero(self, recorded, capsys):
        assert main(["bench-diff", "--results", str(recorded["results"]),
                     "--baseline", str(recorded["baseline"])]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_synthetic_20pct_regression_exits_nonzero(self, recorded,
                                                      capsys):
        slower = _snapshot(
            counters={"stream.requests.fed": 1000},
            histograms={"stream.feed.seconds":
                        _seconds_histogram(10.0, 700)})  # -30% throughput
        _write_sidecar(recorded["results"], "bench_streaming", slower)
        assert main(["bench-diff", "--results", str(recorded["results"]),
                     "--baseline", str(recorded["baseline"])]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_quick_mode_passes_the_same_regression(self, recorded):
        slower = _snapshot(
            counters={"stream.requests.fed": 1000},
            histograms={"stream.feed.seconds":
                        _seconds_histogram(10.0, 700)})
        _write_sidecar(recorded["results"], "bench_streaming", slower)
        assert main(["bench-diff", "--results", str(recorded["results"]),
                     "--baseline", str(recorded["baseline"]),
                     "--quick"]) == 0

    def test_custom_threshold_tightens_the_ratchet(self, recorded):
        slightly = _snapshot(
            counters={"stream.requests.fed": 1000},
            histograms={"stream.feed.seconds":
                        _seconds_histogram(10.0, 900)})  # -10%
        _write_sidecar(recorded["results"], "bench_streaming", slightly)
        argv = ["bench-diff", "--results", str(recorded["results"]),
                "--baseline", str(recorded["baseline"])]
        assert main(argv) == 0
        assert main(argv + ["--threshold", "0.05"]) == 1

    def test_json_output_parses(self, recorded, capsys):
        assert main(["bench-diff", "--results", str(recorded["results"]),
                     "--baseline", str(recorded["baseline"]),
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True

    def test_update_quick_is_a_usage_error(self, recorded, capsys):
        assert main(["bench-diff", "--results", str(recorded["results"]),
                     "--baseline", str(recorded["baseline"]),
                     "--update", "--quick"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_results_dir_is_one_line_error(self, tmp_path,
                                                   capsys):
        assert main(["bench-diff",
                     "--results", str(tmp_path / "nowhere"),
                     "--baseline", str(tmp_path / "b.json")]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_missing_baseline_file_is_one_line_error(self, recorded,
                                                     capsys):
        assert main(["bench-diff", "--results", str(recorded["results"]),
                     "--baseline",
                     str(recorded["dir"] / "absent.json")]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_committed_baseline_matches_committed_sidecars(self):
        """The repo's own BENCH_BASELINE.json must stay in quick-mode
        agreement with the committed sidecars (the CI smoke contract)."""
        import pathlib
        root = pathlib.Path(__file__).parent.parent.parent
        assert main(["bench-diff", "--quick",
                     "--results", str(root / "benchmarks" / "results"),
                     "--baseline",
                     str(root / "BENCH_BASELINE.json")]) == 0
