"""Unit tests for the spec runner and the k-th order Markov predictor."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.evaluation.harness import SweepResult, TrialResult
from repro.evaluation.spec import build_heuristics, build_topology, run_spec
from repro.exceptions import EvaluationError
from repro.mining.prediction import KthOrderMarkovPredictor
from repro.sessions.model import Session, SessionSet


def _base_spec(**overrides):
    spec = {
        "topology": {"family": "random", "pages": 40, "out_degree": 4,
                     "seed": 3},
        "simulation": {"n_agents": 30, "seed": 1},
        "heuristics": ["heur2", "heur4"],
    }
    spec.update(overrides)
    return spec


class TestBuildTopology:
    def test_random_family(self):
        graph = build_topology({"family": "random", "pages": 25,
                                "out_degree": 3, "seed": 1})
        assert graph.page_count == 25

    def test_default_family_is_random(self):
        graph = build_topology({"pages": 10, "out_degree": 2, "seed": 0})
        assert graph.page_count == 10

    def test_hierarchical_family(self):
        graph = build_topology({"family": "hierarchical", "pages": 20,
                                "branching": 3, "seed": 2})
        assert graph.page_count == 20

    def test_unknown_family_rejected(self):
        with pytest.raises(EvaluationError, match="unknown topology family"):
            build_topology({"family": "mesh"})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(EvaluationError, match="unknown topology param"):
            build_topology({"family": "random", "n_nodes": 10})


class TestBuildHeuristics:
    def test_all_known_names(self, small_site):
        names = ["heur1", "heur2", "heur3", "heur4", "phase1", "referrer"]
        built = build_heuristics(names, small_site)
        assert list(built) == names

    def test_unknown_name_rejected(self, small_site):
        with pytest.raises(EvaluationError, match="unknown heuristic"):
            build_heuristics(["heur9"], small_site)

    def test_empty_rejected(self, small_site):
        with pytest.raises(EvaluationError, match="no heuristics"):
            build_heuristics([], small_site)


class TestRunSpec:
    def test_single_trial(self):
        result = run_spec(_base_spec())
        assert isinstance(result, TrialResult)
        assert set(result.reports) == {"heur2", "heur4"}

    def test_sweep(self):
        result = run_spec(_base_spec(
            sweep={"parameter": "stp", "values": [0.05, 0.2]}))
        assert isinstance(result, SweepResult)
        assert result.values == (0.05, 0.2)
        assert set(result.series()) == {"heur2", "heur4"}

    def test_default_heuristics(self):
        spec = _base_spec()
        del spec["heuristics"]
        result = run_spec(spec)
        assert set(result.reports) == {"heur1", "heur2", "heur3", "heur4"}

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(EvaluationError, match="unknown spec keys"):
            run_spec(_base_spec(outputs={}))

    def test_unknown_simulation_field_rejected(self):
        with pytest.raises(EvaluationError, match="unknown simulation"):
            run_spec(_base_spec(simulation={"agents": 10}))

    def test_bad_sweep_rejected(self):
        with pytest.raises(EvaluationError, match="values"):
            run_spec(_base_spec(sweep={"parameter": "stp", "values": []}))
        with pytest.raises(EvaluationError, match="unknown sweep"):
            run_spec(_base_spec(
                sweep={"parameter": "stp", "values": [0.1], "step": 1}))

    def test_cli_run_spec(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_base_spec(
            sweep={"parameter": "lpp", "values": [0.0, 0.5]})),
            encoding="utf-8")
        csv_path = tmp_path / "out.csv"
        assert main(["run-spec", str(path), "--csv", str(csv_path)]) == 0
        assert "spec sweep" in capsys.readouterr().out
        assert csv_path.read_text(encoding="utf-8").startswith("lpp,")

    def test_cli_run_spec_trial(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_base_spec()), encoding="utf-8")
        assert main(["run-spec", str(path)]) == 0
        assert "matched" in capsys.readouterr().out


def _sessions(*page_lists):
    return SessionSet([Session.from_pages(pages) for pages in page_lists])


class TestKthOrderMarkov:
    def test_second_order_disambiguates(self):
        # after B, the next page depends on how you reached B.
        sessions = _sessions(*(["A", "B", "C"],) * 5, *(["X", "B", "D"],) * 5)
        model = KthOrderMarkovPredictor(order=2).fit(sessions)
        assert model.predict(("A", "B"), top=1) == ["C"]
        assert model.predict(("X", "B"), top=1) == ["D"]

    def test_first_order_cannot(self):
        sessions = _sessions(*(["A", "B", "C"],) * 5, *(["X", "B", "D"],) * 6)
        model = KthOrderMarkovPredictor(order=1).fit(sessions)
        # order 1 sees only "B" and must answer the majority for both.
        assert model.predict(("A", "B"), top=1) == model.predict(
            ("X", "B"), top=1)

    def test_backoff_to_lower_order(self):
        sessions = _sessions(["A", "B", "C"])
        model = KthOrderMarkovPredictor(order=2).fit(sessions)
        # context (Z, B) unseen at order 2 -> back off to (B,).
        assert model.predict(("Z", "B"), top=1) == ["C"]

    def test_unseen_everywhere_gives_empty(self):
        model = KthOrderMarkovPredictor(order=2).fit(
            _sessions(["A", "B"]))
        assert model.predict(("Q",)) == []

    def test_hit_rate_improves_with_order_on_path_dependent_data(self):
        sessions = _sessions(*(["A", "B", "C"],) * 10,
                             *(["X", "B", "D"],) * 10)
        first = KthOrderMarkovPredictor(order=1).fit(sessions)
        second = KthOrderMarkovPredictor(order=2).fit(sessions)
        assert second.hit_rate(sessions, top=1) > first.hit_rate(
            sessions, top=1)

    def test_validation(self):
        with pytest.raises(EvaluationError):
            KthOrderMarkovPredictor(order=0)
        with pytest.raises(EvaluationError):
            KthOrderMarkovPredictor().fit(SessionSet([]))
        model = KthOrderMarkovPredictor().fit(_sessions(["A", "B"]))
        with pytest.raises(EvaluationError):
            model.predict(())
        with pytest.raises(EvaluationError):
            model.predict(("A",), top=0)
        with pytest.raises(EvaluationError, match="not trained"):
            KthOrderMarkovPredictor().predict(("A",))
        with pytest.raises(EvaluationError, match="no transitions"):
            model.hit_rate(_sessions(["A"]))
