"""Unit tests for the columnar data plane (:mod:`repro.core.columnar`).

Covers the symbol table, backend selection, column ingest, the
materialization boundary, engine selection on the reconstructor facade,
parallel payload compaction (the A17 fix) and metric-counter parity
between the object and columnar engines.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.columnar import (
    COLUMNAR_FALLBACK_ENV,
    ColumnBatch,
    SymbolTable,
    UserColumns,
    active_backend,
    numpy_available,
)
from repro.core.smart_sra import SmartSRA
from repro.exceptions import ConfigurationError, ReconstructionError
from repro.obs import Registry, use_local_registry
from repro.sessions.model import Request, Session
from repro.sessions.navigation_oriented import NavigationHeuristic
from repro.sessions.time_oriented import DurationHeuristic, PageStayHeuristic
from repro.topology.generators import random_site

MIN = 60.0


def _stream(site, n_users=12, per_user=9):
    """A small deterministic multi-user stream over ``site``'s pages."""
    pages = site.adjacency_index().pages
    requests = []
    for u in range(n_users):
        for i in range(per_user):
            requests.append(Request(
                timestamp=40.0 * i + (u % 3),
                user_id=f"u{u:02d}",
                page=pages[(u * 7 + i * 3) % len(pages)]))
    return requests


@pytest.fixture(scope="module")
def site():
    return random_site(n_pages=40, avg_out_degree=5, seed=11)


class TestSymbolTable:
    def test_intern_resolve_round_trip(self):
        table = SymbolTable(["/a", "/b"])
        assert len(table) == 2
        assert table.n_topology == 2
        assert table.intern("/a") == 0
        assert table.intern("/c") == 2      # first sight appends
        assert table.intern("/c") == 2      # stable thereafter
        assert [table.resolve(i) for i in range(3)] == ["/a", "/b", "/c"]
        assert "/c" in table and "/d" not in table
        assert table.pages == ("/a", "/b", "/c")

    def test_duplicate_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            SymbolTable(["/a", "/a"])

    def test_resolve_unknown_id_raises(self):
        table = SymbolTable(["/a"])
        with pytest.raises(ReconstructionError):
            table.resolve(5)
        with pytest.raises(ReconstructionError):
            table.resolve(-1)

    def test_topology_ids_coincide_with_adjacency_ranks(self, site):
        table = SymbolTable.for_topology(site)
        index = site.adjacency_index()
        assert table.pages == tuple(index.pages)
        assert table.n_topology == len(index.pages)


class TestBackendSelection:
    def test_env_forces_fallback(self, monkeypatch):
        monkeypatch.setenv(COLUMNAR_FALLBACK_ENV, "1")
        assert active_backend() == "fallback"
        monkeypatch.setenv(COLUMNAR_FALLBACK_ENV, "0")
        assert active_backend() == ("numpy" if numpy_available()
                                    else "fallback")

    def test_explicit_backend_names(self):
        assert active_backend("fallback") == "fallback"
        with pytest.raises(ConfigurationError):
            active_backend("cupy")


class TestIngest:
    def test_off_topology_pages_interned_on_first_sight(self, site):
        table = SymbolTable.for_topology(site)
        bound = table.n_topology
        requests = [Request(timestamp=float(i), user_id="u0",
                            page=f"/external/{i % 2}") for i in range(4)]
        batch = ColumnBatch.from_user_requests([("u0", requests)], table)
        ids = list(batch.pages)
        assert set(ids) == {bound, bound + 1}
        assert table.resolve(bound) == "/external/0"
        assert table.resolve(bound + 1) == "/external/1"

    def test_fallback_columns_match_numpy(self, site):
        if not numpy_available():
            pytest.skip("numpy backend unavailable")
        requests = _stream(site)
        per_user: dict[str, list[Request]] = {}
        for request in requests:
            per_user.setdefault(request.user_id, []).append(request)
        items = list(per_user.items())
        a = ColumnBatch.from_user_requests(items, SymbolTable.for_topology(
            site), backend="numpy")
        b = ColumnBatch.from_user_requests(items, SymbolTable.for_topology(
            site), backend="fallback")
        assert a.backend == "numpy" and b.backend == "fallback"
        assert list(a.times) == list(b.times)
        assert list(a.pages) == list(b.pages)
        assert list(a.user_starts) == list(b.user_starts)
        assert a.users == b.users


class TestUserColumnsPayload:
    def test_pickle_round_trip(self, site):
        table = SymbolTable.for_topology(site)
        requests = [Request(timestamp=10.0 * i, user_id="u1",
                            page=site.adjacency_index().pages[i % 5]) for i in range(7)]
        column = UserColumns.from_requests("u1", requests, table)
        clone = pickle.loads(pickle.dumps(column))
        assert clone.user_id == "u1"
        assert list(clone.times) == [10.0 * i for i in range(7)]
        assert list(clone.pages) == list(column.pages)
        assert list(clone.referrers) == list(column.referrers)
        assert list(clone.synthetic) == list(column.synthetic)

    def test_column_payload_smaller_than_request_objects(self, site):
        """The A17 fix: the pool ships well under half the bytes when
        workers receive column buffers instead of pickled ``Request``
        lists (12 wire bytes per plain-CLF request against ~30)."""
        table = SymbolTable.for_topology(site)
        requests = [Request(timestamp=10.0 * i, user_id="user-17",
                            page=site.adjacency_index().pages[i % 40])
                    for i in range(64)]
        objects = len(pickle.dumps(requests))
        columns = len(pickle.dumps(
            UserColumns.from_requests("user-17", requests, table)))
        assert columns < objects / 2, (columns, objects)


class TestEngineSelection:
    def test_unknown_engine_rejected(self, site):
        with pytest.raises(ConfigurationError):
            SmartSRA(site).reconstruct([], engine="tabular")

    def test_columnar_without_support_rejected(self, site):
        heuristic = NavigationHeuristic(site)
        assert not heuristic.supports_columnar
        with pytest.raises(ConfigurationError):
            heuristic.reconstruct([], engine="columnar")

    def test_smart_sra_canonical_equivalence(self, site):
        requests = _stream(site)
        smart = SmartSRA(site)
        obj = smart.reconstruct(requests)
        col = smart.reconstruct(requests, engine="columnar")

        def canon(sessions):
            return sorted(tuple((r.timestamp, r.user_id, r.page)
                                for r in s.requests) for s in sessions)
        assert canon(obj) == canon(col)

    def test_serial_and_parallel_columnar_identical(self, site):
        requests = _stream(site)
        smart = SmartSRA(site)
        serial = smart.reconstruct(requests, engine="columnar")
        parallel = smart.reconstruct(requests, engine="columnar", workers=2)
        assert list(serial) == list(parallel)

    @pytest.mark.parametrize("heuristic_cls", [DurationHeuristic,
                                               PageStayHeuristic])
    def test_time_oriented_columnar_identical_to_object(self, site,
                                                        heuristic_cls):
        requests = _stream(site)
        heuristic = heuristic_cls()
        assert heuristic.supports_columnar
        obj = heuristic.reconstruct(requests)
        col = heuristic.reconstruct(requests, engine="columnar")
        assert list(obj) == list(col)

    def test_fallback_backend_identical_output(self, site, monkeypatch):
        requests = _stream(site)
        smart = SmartSRA(site)
        reference = smart.reconstruct(requests, engine="columnar")
        monkeypatch.setenv(COLUMNAR_FALLBACK_ENV, "1")
        forced = SmartSRA(site).reconstruct(requests, engine="columnar")
        assert list(reference) == list(forced)


class TestMaterialization:
    def test_sessions_reuse_original_request_objects(self, site):
        requests = _stream(site, n_users=3, per_user=6)
        smart = SmartSRA(site)
        sessions = smart.reconstruct(requests, engine="columnar")
        originals = {id(request) for request in requests}
        for session in sessions:
            for request in session.requests:
                assert id(request) in originals

    def test_trusted_parts_pages_are_lazy_and_cached(self):
        requests = (Request(timestamp=0.0, user_id="u", page="/a"),
                    Request(timestamp=1.0, user_id="u", page="/b"))
        session = Session.from_trusted_parts(requests)
        assert session._pages is None          # not yet computed
        assert session.pages == ("/a", "/b")   # computed on demand
        assert session._pages == ("/a", "/b")  # and cached
        assert session.pages is session._pages


class TestCounterParity:
    def test_phase_counters_match_object_engine(self, site):
        requests = _stream(site)
        smart = SmartSRA(site)

        def counters(engine):
            registry = Registry()
            with use_local_registry(registry):
                smart.reconstruct(requests, engine=engine)
            snapshot = registry.snapshot()
            return {key: value
                    for key, value in snapshot.get("counters", {}).items()
                    if "phase1" in key or "phase2" in key}

        obj = counters("object")
        col = counters("columnar")
        assert obj and obj == col
