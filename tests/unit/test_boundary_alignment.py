"""Threshold boundary alignment across every sessionization path.

The paper's thresholds are *inclusive*: a page-stay gap of exactly ρ and
a session span of exactly δ are legal; only strictly-greater values cut.
These tests pin that reading — with the same parametrized boundary
streams — across heur1, heur2, Smart-SRA Phase 1, the batch Smart-SRA
reconstructor and the streaming pipeline, so a drive-by ``>=`` in any
one of them breaks a named test instead of silently diverging from the
other paths.
"""

from __future__ import annotations

import pytest

from repro.core.config import SmartSRAConfig
from repro.core.phase1 import split_candidates
from repro.core.smart_sra import SmartSRA
from repro.sessions.model import Request
from repro.sessions.time_oriented import DurationHeuristic, PageStayHeuristic
from repro.streaming.pipeline import streaming_phase1, streaming_smart_sra
from repro.topology.graph import WebGraph

RHO = 600.0
DELTA = 1800.0
EPS = 1e-6

CHAIN = WebGraph([("A", "B"), ("B", "C"), ("C", "D")],
                 pages=["A", "B", "C", "D"], start_pages=["A"])


def _stream(gaps, user="u"):
    pages = ["A", "B", "C", "D"]
    t = 0.0
    requests = [Request(t, user, pages[0])]
    for i, gap in enumerate(gaps):
        t += gap
        requests.append(Request(t, user, pages[(i + 1) % 4]))
    return requests


#: (gap sequence, expected candidate count) under inclusive ρ/δ —
#: exactly-on-threshold stays together, epsilon past splits.
GAP_CASES = [
    pytest.param([RHO], 1, id="gap-exactly-rho"),
    pytest.param([RHO + EPS], 2, id="gap-just-past-rho"),
    pytest.param([RHO, RHO], 1, id="two-rho-gaps-within-delta"),
    pytest.param([RHO, RHO, RHO + EPS], 2, id="rho-chain-then-split"),
    pytest.param([0.0], 1, id="zero-gap-tie"),
]

#: δ-boundary gap sequences whose individual gaps all respect ρ, so the
#: duration rule (not the gap rule) decides the cut.
DURATION_CASES = [
    pytest.param([RHO, RHO, RHO], 1, id="span-exactly-delta"),
    pytest.param([RHO, RHO, RHO, EPS], 2, id="span-just-past-delta"),
    pytest.param([500.0, 500.0, 500.0], 1, id="three-hops-under-delta"),
]

#: heur1 ignores ρ entirely, so its δ cases may use larger hops.
HEUR1_DURATION_CASES = [
    pytest.param([DELTA / 2, DELTA / 2], 1, id="span-exactly-delta"),
    pytest.param([DELTA / 2, DELTA / 2 + EPS], 2, id="span-just-past-delta"),
]


class TestPhase1Boundaries:
    @pytest.mark.parametrize("gaps, expected", GAP_CASES + DURATION_CASES)
    def test_split_candidates(self, gaps, expected):
        config = SmartSRAConfig(max_duration=DELTA, max_gap=RHO)
        candidates = split_candidates(_stream(gaps), config)
        assert len(candidates) == expected

    @pytest.mark.parametrize("gaps, expected", GAP_CASES + DURATION_CASES)
    def test_streaming_phase1_matches_batch(self, gaps, expected):
        config = SmartSRAConfig(max_duration=DELTA, max_gap=RHO)
        pipeline = streaming_phase1(config)
        emitted = pipeline.feed_many(_stream(gaps))
        emitted.extend(pipeline.flush())
        assert len(emitted) == expected
        batch = split_candidates(_stream(gaps), config)
        assert ([tuple(r.page for r in s) for s in emitted]
                == [tuple(r.page for r in c) for c in batch])


class TestTimeOrientedBoundaries:
    @pytest.mark.parametrize("gap, sessions", [
        pytest.param(RHO, 1, id="gap-exactly-rho"),
        pytest.param(RHO + EPS, 2, id="gap-just-past-rho"),
    ])
    def test_page_stay_heuristic(self, gap, sessions):
        out = PageStayHeuristic(max_gap=RHO).reconstruct(_stream([gap]))
        assert len(out) == sessions

    @pytest.mark.parametrize("gaps, sessions", HEUR1_DURATION_CASES)
    def test_duration_heuristic(self, gaps, sessions):
        out = DurationHeuristic(max_duration=DELTA).reconstruct(
            _stream(gaps))
        assert len(out) == sessions


class TestSmartSRABoundaries:
    @pytest.mark.parametrize("gaps, expected", GAP_CASES + DURATION_CASES)
    def test_batch_equals_streaming_at_boundaries(self, gaps, expected):
        config = SmartSRAConfig(max_duration=DELTA, max_gap=RHO)
        requests = _stream(gaps)
        batch = SmartSRA(CHAIN, config).reconstruct(requests)
        pipeline = streaming_smart_sra(CHAIN, config)
        streamed = pipeline.feed_many(requests)
        streamed.extend(pipeline.flush())
        from repro.sessions.model import SessionSet
        assert (SessionSet(streamed).canonical_digest()
                == batch.canonical_digest())

    def test_rho_boundary_request_joins_session_everywhere(self):
        # one request exactly ρ after its predecessor must land in the
        # *same* session in batch and streaming alike.
        config = SmartSRAConfig(max_duration=DELTA, max_gap=RHO)
        requests = [Request(0.0, "u", "A"), Request(RHO, "u", "B")]
        batch = SmartSRA(CHAIN, config).reconstruct(requests)
        assert [s.pages for s in batch] == [("A", "B")]
        pipeline = streaming_smart_sra(CHAIN, config)
        streamed = pipeline.feed_many(requests)
        streamed.extend(pipeline.flush())
        assert [s.pages for s in streamed] == [("A", "B")]
