"""Unit tests for the experiment harness and report rendering."""

from __future__ import annotations

import pytest

from repro.core.smart_sra import SmartSRA
from repro.evaluation.harness import run_trial, standard_heuristics, sweep
from repro.evaluation.report import (
    render_csv,
    render_sweep_table,
    render_trial_details,
)
from repro.exceptions import EvaluationError
from repro.sessions.navigation_oriented import NavigationHeuristic
from repro.sessions.time_oriented import DurationHeuristic, PageStayHeuristic
from repro.simulator.config import SimulationConfig


class TestStandardHeuristics:
    def test_contains_the_papers_four(self, small_site):
        heuristics = standard_heuristics(small_site)
        assert list(heuristics) == ["heur1", "heur2", "heur3", "heur4"]
        assert isinstance(heuristics["heur1"], DurationHeuristic)
        assert isinstance(heuristics["heur2"], PageStayHeuristic)
        assert isinstance(heuristics["heur3"], NavigationHeuristic)
        assert isinstance(heuristics["heur4"], SmartSRA)


class TestRunTrial:
    def test_reports_every_heuristic(self, small_site):
        trial = run_trial(small_site, SimulationConfig(n_agents=30, seed=5))
        assert set(trial.reports) == {"heur1", "heur2", "heur3", "heur4"}
        for report in trial.reports.values():
            assert 0.0 <= report.matched_accuracy <= 1.0
            assert report.matched <= report.captured

    def test_accuracies_metric_selection(self, small_site):
        trial = run_trial(small_site, SimulationConfig(n_agents=20, seed=5))
        matched = trial.accuracies("matched")
        captured = trial.accuracies("captured")
        assert all(matched[name] <= captured[name] for name in matched)
        with pytest.raises(EvaluationError):
            trial.accuracies("bogus")

    def test_custom_heuristics(self, small_site):
        trial = run_trial(small_site, SimulationConfig(n_agents=10, seed=5),
                          heuristics={"only": PageStayHeuristic()})
        assert list(trial.reports) == ["only"]


class TestSweep:
    @pytest.fixture(scope="class")
    def small_sweep(self, small_site):
        config = SimulationConfig(n_agents=30, seed=5)
        return sweep(small_site, config, "stp", [0.05, 0.2])

    def test_one_trial_per_value(self, small_sweep):
        assert small_sweep.values == (0.05, 0.2)
        assert len(small_sweep.trials) == 2

    def test_series_alignment(self, small_sweep):
        series = small_sweep.series()
        assert set(series) == {"heur1", "heur2", "heur3", "heur4"}
        assert all(len(values) == 2 for values in series.values())

    def test_rows_view(self, small_sweep):
        rows = small_sweep.rows()
        assert rows[0]["stp"] == 0.05
        assert "heur4" in rows[0]

    def test_rejects_empty_values(self, small_site):
        with pytest.raises(EvaluationError, match="at least one"):
            sweep(small_site, SimulationConfig(), "stp", [])

    def test_rejects_unknown_parameter(self, small_site):
        with pytest.raises(EvaluationError, match="unknown"):
            sweep(small_site, SimulationConfig(), "nonsense", [0.1])


class TestRendering:
    @pytest.fixture(scope="class")
    def rendered_sweep(self, small_site):
        config = SimulationConfig(n_agents=20, seed=5)
        return sweep(small_site, config, "lpp", [0.0, 0.5])

    def test_table_contains_headers_and_values(self, rendered_sweep):
        text = render_sweep_table(rendered_sweep, title="My Title")
        assert "My Title" in text
        assert "LPP" in text
        assert "heur4" in text
        assert "0.5" in text

    def test_csv_shape(self, rendered_sweep):
        csv = render_csv(rendered_sweep)
        lines = csv.strip().splitlines()
        assert lines[0] == "lpp,heur1,heur2,heur3,heur4"
        assert len(lines) == 3

    def test_details_mention_cache_rate(self, rendered_sweep):
        details = render_trial_details(rendered_sweep)
        assert "cache hit rate" in details
        assert "matched" in details


class TestMarkdown:
    def test_markdown_table_shape(self, small_site):
        from repro.evaluation.report import render_markdown
        from repro.evaluation.harness import sweep
        from repro.simulator.config import SimulationConfig
        result = sweep(small_site, SimulationConfig(n_agents=20, seed=5),
                       "nip", [0.0, 0.5])
        text = render_markdown(result)
        lines = text.strip().splitlines()
        assert lines[0].startswith("| NIP |")
        assert lines[1].startswith("|---|")
        assert len(lines) == 4
        assert all(line.count("|") == 6 for line in lines if "---" not in line)


class TestTrialCaching:
    def test_run_trial_uses_cache(self, small_site, tmp_path, monkeypatch):
        from repro.evaluation.harness import run_trial
        from repro.simulator.config import SimulationConfig
        config = SimulationConfig(n_agents=15, seed=8)
        first = run_trial(small_site, config, cache_dir=str(tmp_path))

        import repro.evaluation.simcache as simcache

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("cache hit expected")

        monkeypatch.setattr(simcache, "simulate_population", boom)
        second = run_trial(small_site, config, cache_dir=str(tmp_path))
        assert first.accuracies() == second.accuracies()
