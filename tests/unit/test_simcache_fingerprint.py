"""Unit tests for topology fingerprints and the simulation disk cache."""

from __future__ import annotations

import pytest

from repro.evaluation.simcache import cached_simulation, simulation_cache_key
from repro.simulator.config import SimulationConfig
from repro.topology.generators import random_site
from repro.topology.graph import WebGraph


class TestFingerprint:
    def test_equal_graphs_equal_fingerprints(self):
        a = WebGraph([("A", "B"), ("B", "C")], start_pages=["A"])
        b = WebGraph([("B", "C"), ("A", "B")], start_pages=["A"])
        assert a.fingerprint() == b.fingerprint()

    def test_edge_changes_fingerprint(self):
        a = WebGraph([("A", "B")], start_pages=["A"])
        b = WebGraph([("A", "B"), ("B", "A")], start_pages=["A"])
        assert a.fingerprint() != b.fingerprint()

    def test_start_page_changes_fingerprint(self):
        a = WebGraph([("A", "B")], start_pages=["A"])
        b = WebGraph([("A", "B")], start_pages=["A", "B"])
        assert a.fingerprint() != b.fingerprint()

    def test_isolated_page_changes_fingerprint(self):
        a = WebGraph([("A", "B")], start_pages=["A"])
        b = WebGraph([("A", "B")], pages=["A", "B", "C"],
                     start_pages=["A"])
        assert a.fingerprint() != b.fingerprint()

    def test_generator_stability(self):
        assert (random_site(30, 3, seed=1).fingerprint()
                == random_site(30, 3, seed=1).fingerprint())


class TestCacheKey:
    def test_key_covers_config(self, small_site):
        base = SimulationConfig(n_agents=10)
        assert simulation_cache_key(
            small_site, base, 0.0, "uniform") != simulation_cache_key(
            small_site, base.with_(stp=0.2), 0.0, "uniform")

    def test_key_covers_horizon_and_profile(self, small_site):
        config = SimulationConfig(n_agents=10)
        keys = {
            simulation_cache_key(small_site, config, 100.0, "uniform"),
            simulation_cache_key(small_site, config, 200.0, "uniform"),
            simulation_cache_key(small_site, config, 100.0, "diurnal"),
        }
        assert len(keys) == 3


class TestCachedSimulation:
    def test_miss_then_hit_identical_payload(self, small_site, tmp_path):
        config = SimulationConfig(n_agents=25, seed=4)
        first = cached_simulation(small_site, config, str(tmp_path))
        second = cached_simulation(small_site, config, str(tmp_path))
        assert first.ground_truth == second.ground_truth
        assert [(r.user_id, r.page, r.timestamp, r.referrer)
                for r in first.log_requests] == [
            (r.user_id, r.page, r.timestamp, r.referrer)
            for r in second.log_requests]
        # the hit does not carry traces (documented contract).
        assert first.traces and not second.traces

    def test_hit_skips_simulation(self, small_site, tmp_path, monkeypatch):
        config = SimulationConfig(n_agents=10, seed=4)
        cached_simulation(small_site, config, str(tmp_path))

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("simulate_population must not run on hit")

        import repro.evaluation.simcache as simcache
        monkeypatch.setattr(simcache, "simulate_population", boom)
        result = cached_simulation(small_site, config, str(tmp_path))
        assert len(result.ground_truth) > 0

    def test_distinct_configs_do_not_collide(self, small_site, tmp_path):
        a = cached_simulation(small_site, SimulationConfig(n_agents=10),
                              str(tmp_path))
        b = cached_simulation(small_site,
                              SimulationConfig(n_agents=10, seed=9),
                              str(tmp_path))
        assert a.log_requests != b.log_requests

    def test_cached_result_supports_evaluation(self, small_site, tmp_path):
        from repro.core.smart_sra import SmartSRA
        from repro.evaluation.metrics import evaluate_reconstruction
        config = SimulationConfig(n_agents=40, seed=4)
        cached_simulation(small_site, config, str(tmp_path))  # warm
        hit = cached_simulation(small_site, config, str(tmp_path))
        sessions = SmartSRA(small_site).reconstruct(hit.log_requests)
        report = evaluate_reconstruction("heur4", hit.ground_truth,
                                         sessions)
        assert report.matched_accuracy > 0
