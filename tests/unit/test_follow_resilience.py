"""Resilience tests for the log follower: retries, rotation, accounting."""

from __future__ import annotations

import os

import pytest

from repro.exceptions import IngestError
from repro.logs.clf import CLFRecord, format_clf_line
from repro.logs.stream import FollowStats, _read_chunk, follow_log


def _line(host, t):
    return format_clf_line(
        CLFRecord(host, float(t), "GET", "/P1.html", "HTTP/1.1", 200,
                  10)) + "\n"


class TestRetryBackoff:
    def test_gives_up_after_bounded_retries(self, tmp_path):
        missing = str(tmp_path / "nope" / "access.log")
        sleeps = []
        stats = FollowStats()
        with pytest.raises(IngestError, match="after 3 retries"):
            _read_chunk(missing, 0, max_retries=3, backoff_base=0.01,
                        _sleep=sleeps.append, stats=stats)
        assert stats.retries == 3
        # exponential: 0.01, 0.02, 0.04 — and nothing after the last try.
        assert sleeps == [0.01, 0.02, 0.04]

    def test_recovers_when_file_reappears(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(_line("a", 1), encoding="utf-8")
        calls = {"n": 0}
        real_exists = path.exists()
        assert real_exists

        # no failure injected: a healthy file reads with zero retries.
        stats = FollowStats()
        chunk, offset = _read_chunk(str(path), 0, max_retries=3,
                                    backoff_base=0.01,
                                    _sleep=lambda _: calls.__setitem__(
                                        "n", calls["n"] + 1),
                                    stats=stats)
        assert chunk == _line("a", 1)
        assert stats.retries == 0 and calls["n"] == 0


class TestRotationDetection:
    def test_rename_and_recreate_larger_file_detected(self, tmp_path):
        """The classic miss: the new file is already *larger* than the old
        read offset, so size alone never shrinks — only the inode gives
        the rotation away."""
        path = tmp_path / "access.log"
        path.write_text(_line("old", 1), encoding="utf-8")
        state = {"step": 0}

        def sleeper(duration):
            if state["step"] == 0:
                os.rename(path, tmp_path / "access.log.1")
                path.write_text(
                    _line("new1", 2) + _line("new2", 3) + _line("new3", 4),
                    encoding="utf-8")
            state["step"] += 1

        stats = FollowStats()
        records = list(follow_log(str(path), poll_interval=0.01,
                                  idle_timeout=0.02, _sleep=sleeper,
                                  stats=stats))
        assert [r.host for r in records] == ["old", "new1", "new2", "new3"]
        assert stats.rotations == 1

    def test_truncation_still_restarts(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(_line("a", 1) + _line("b", 2), encoding="utf-8")
        state = {"step": 0}

        def sleeper(duration):
            if state["step"] == 0:
                path.write_text(_line("c", 3), encoding="utf-8")
            state["step"] += 1

        stats = FollowStats()
        records = list(follow_log(str(path), poll_interval=0.01,
                                  idle_timeout=0.02, _sleep=sleeper,
                                  stats=stats))
        assert [r.host for r in records] == ["a", "b", "c"]
        assert stats.rotations == 1

    def test_line_numbers_reset_after_rotation(self, tmp_path):
        """Errors after a rotation must report positions in the *new*
        file, not a running total across incarnations."""
        path = tmp_path / "access.log"
        path.write_text(_line("a", 1) + _line("b", 2) + _line("c", 3),
                        encoding="utf-8")
        state = {"step": 0}

        def sleeper(duration):
            if state["step"] == 0:
                path.write_text(_line("d", 4) + "garbage\n",
                                encoding="utf-8")
            state["step"] += 1

        errors = []
        records = list(follow_log(str(path), poll_interval=0.01,
                                  idle_timeout=0.02, _sleep=sleeper,
                                  on_malformed=errors.append))
        assert [r.host for r in records] == ["a", "b", "c", "d"]
        assert len(errors) == 1
        assert errors[0].line_number == 2   # line 2 of the new file


class TestAccounting:
    def test_stats_track_every_outcome(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(_line("a", 1) + "\n" + "garbage\n" + _line("b", 2),
                        encoding="utf-8")
        stats = FollowStats()
        errors = []
        records = list(follow_log(str(path), poll_interval=0.01,
                                  idle_timeout=0.02, stats=stats,
                                  on_malformed=errors.append))
        assert [r.host for r in records] == ["a", "b"]
        assert stats.lines == 4
        assert stats.parsed == 2
        assert stats.blank == 1
        assert stats.malformed == 1
        assert stats.fault_counts == {"garbage": 1}
        assert len(errors) == 1

    def test_strict_mode_still_raises(self, tmp_path):
        from repro.exceptions import LogFormatError
        path = tmp_path / "access.log"
        path.write_text("garbage\n", encoding="utf-8")
        stats = FollowStats()
        with pytest.raises(LogFormatError):
            list(follow_log(str(path), poll_interval=0.01,
                            idle_timeout=0.02, skip_malformed=False,
                            stats=stats))
        assert stats.malformed == 1
