"""Unit tests for sequential (ordered) rules."""

from __future__ import annotations

import pytest

from repro.exceptions import EvaluationError
from repro.mining.sequence_rules import (
    mine_sequential_rules,
    sequential_rules,
)
from repro.mining.sequential import SequentialPattern, frequent_sequences
from repro.sessions.model import Session, SessionSet


def _s(pages):
    return Session.from_pages(pages)


@pytest.fixture()
def funnel_sessions():
    return SessionSet([
        _s(["home", "list", "item"]),
        _s(["home", "list", "item"]),
        _s(["home", "list", "cart"]),
        _s(["home", "about"]),
    ])


class TestSequentialRules:
    def test_confidence_computation(self, funnel_sessions):
        rules = mine_sequential_rules(funnel_sessions, min_support=0.2,
                                      min_confidence=0.1)
        by_key = {(rule.path, rule.next_page): rule for rule in rules}
        rule = by_key[(("home", "list"), "item")]
        assert rule.confidence == pytest.approx(2 / 3)
        assert rule.support == pytest.approx(0.5)
        rule = by_key[(("home",), "list")]
        assert rule.confidence == pytest.approx(0.75)

    def test_min_confidence_filters(self, funnel_sessions):
        strict = mine_sequential_rules(funnel_sessions, min_support=0.2,
                                       min_confidence=0.7)
        keys = {(rule.path, rule.next_page) for rule in strict}
        assert (("home",), "list") in keys
        assert (("home", "list"), "cart") not in keys  # conf 1/3

    def test_sorted_by_confidence(self, funnel_sessions):
        rules = mine_sequential_rules(funnel_sessions, min_support=0.2,
                                      min_confidence=0.1)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_order_matters(self):
        # "list -> home" never happens even though both pages co-occur.
        sessions = SessionSet([_s(["home", "list"])] * 4)
        rules = mine_sequential_rules(sessions, min_support=0.2,
                                      min_confidence=0.1)
        keys = {(rule.path, rule.next_page) for rule in rules}
        assert (("home",), "list") in keys
        assert (("list",), "home") not in keys

    def test_missing_prefix_rejected(self):
        orphan = [SequentialPattern(("a", "b"), 0.5, 1)]
        with pytest.raises(EvaluationError, match="missing the prefix"):
            sequential_rules(orphan, min_confidence=0.1)

    def test_bad_confidence_rejected(self, funnel_sessions):
        patterns = frequent_sequences(funnel_sessions, min_support=0.2)
        with pytest.raises(EvaluationError):
            sequential_rules(patterns, min_confidence=0.0)

    def test_str_rendering(self, funnel_sessions):
        rules = mine_sequential_rules(funnel_sessions, min_support=0.2,
                                      min_confidence=0.1)
        assert "=>" in str(rules[0])
        assert "->" in str(
            next(rule for rule in rules if len(rule.path) > 1))

    def test_rules_agree_with_markov_top1(self, funnel_sessions):
        """Length-1 rules are exactly the first-order Markov transition
        probabilities."""
        from repro.mining.prediction import MarkovPredictor
        model = MarkovPredictor().fit(funnel_sessions)
        rules = mine_sequential_rules(funnel_sessions, min_support=0.01,
                                      min_confidence=0.01)
        for rule in rules:
            if len(rule.path) == 1:
                assert rule.confidence == pytest.approx(
                    model.transition_probability(rule.path[0],
                                                 rule.next_page))
