"""Unit tests for the paper presets in repro.evaluation.experiments."""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import (
    FIG8_STP_VALUES,
    FIG9_LPP_VALUES,
    FIG10_NIP_VALUES,
    PAPER_DEFAULTS,
    paper_example_topology,
    paper_table1_stream,
    paper_table3_stream,
    paper_topology,
)


class TestPaperDefaults:
    def test_table5_values(self):
        assert PAPER_DEFAULTS.n_pages == 300
        assert PAPER_DEFAULTS.avg_out_degree == 15.0
        assert PAPER_DEFAULTS.mean_stay_minutes == 2.2
        assert PAPER_DEFAULTS.stay_deviation_minutes == 0.5
        assert PAPER_DEFAULTS.n_agents == 10_000
        assert PAPER_DEFAULTS.stp == 0.05
        assert PAPER_DEFAULTS.lpp == 0.30
        assert PAPER_DEFAULTS.nip == 0.30

    def test_simulation_config_materialization(self):
        config = PAPER_DEFAULTS.simulation_config()
        assert config.mean_stay == pytest.approx(2.2 * 60)
        assert config.stay_deviation == pytest.approx(0.5 * 60)
        assert config.n_agents == 10_000

    def test_simulation_config_overrides(self):
        config = PAPER_DEFAULTS.simulation_config(n_agents=50, stp=0.2)
        assert config.n_agents == 50
        assert config.stp == 0.2
        assert config.lpp == 0.30  # untouched


class TestSweepGrids:
    def test_fig8_axis(self):
        assert FIG8_STP_VALUES[0] == 0.01
        assert FIG8_STP_VALUES[-1] == 0.20
        assert len(FIG8_STP_VALUES) == 20

    def test_fig9_axis(self):
        assert FIG9_LPP_VALUES == (0.0, 0.1, 0.2, 0.3, 0.4,
                                   0.5, 0.6, 0.7, 0.8, 0.9)

    def test_fig10_axis(self):
        assert FIG10_NIP_VALUES == FIG9_LPP_VALUES


class TestLiterals:
    def test_fig1_topology_edges(self):
        graph = paper_example_topology()
        expected = {("P1", "P20"), ("P1", "P13"), ("P13", "P49"),
                    ("P13", "P34"), ("P20", "P23"), ("P34", "P23"),
                    ("P49", "P23")}
        assert set(graph.edges()) == expected
        assert graph.start_pages == {"P1", "P49"}

    def test_table1_timestamps_in_minutes(self):
        stream = paper_table1_stream()
        assert [r.timestamp / 60 for r in stream] == [0, 6, 15, 29, 32, 47]
        assert [r.page for r in stream] == ["P1", "P20", "P13", "P49",
                                            "P34", "P23"]

    def test_table3_timestamps_in_minutes(self):
        stream = paper_table3_stream()
        assert [r.timestamp / 60 for r in stream] == [0, 6, 9, 12, 14, 15]

    def test_streams_carry_custom_user(self):
        assert paper_table1_stream("alice")[0].user_id == "alice"

    def test_paper_topology_shape(self):
        graph = paper_topology(seed=5)
        assert graph.page_count == 300
        from repro.topology.analysis import degree_statistics
        assert 13 < degree_statistics(graph).mean_out < 17.5
