"""Unit tests for resilient ingestion (repro.logs.ingest)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, LogFormatError
from repro.logs.clf import CLFRecord, format_clf_line, format_combined_line
from repro.logs.ingest import (
    ErrorPolicy,
    IngestReport,
    attempt_repair,
    classify_fault,
    ingest_clf_file,
    ingest_lines,
)
from repro.logs.reader import iter_clf_lines, read_clf_file


def _line(host="10.0.0.1", t=1000.0, url="/P1.html"):
    return format_clf_line(
        CLFRecord(host, t, "GET", url, "HTTP/1.1", 200, 64))


GOOD = _line()
BAD = "utter garbage, not a log line"


class TestPolicies:
    def test_strict_raises_with_line_number(self):
        with pytest.raises(LogFormatError) as caught:
            list(ingest_lines([GOOD, BAD, GOOD], policy="strict"))
        assert caught.value.line_number == 2

    def test_skip_counts_every_drop(self):
        report = IngestReport()
        records = list(ingest_lines([GOOD, BAD, "", GOOD, BAD],
                                    policy="skip", report=report))
        assert len(records) == 2
        assert report.total_lines == 5
        assert report.parsed == 2
        assert report.blank == 1
        assert report.dropped == 2
        assert report.quarantined == 0
        assert report.reconciles()

    def test_quarantine_preserves_raw_lines(self):
        report, sink = IngestReport(), []
        records = list(ingest_lines([GOOD, BAD, GOOD],
                                    policy="quarantine",
                                    report=report, quarantine=sink))
        assert len(records) == 2
        assert report.quarantined == 1 and report.dropped == 0
        assert len(sink) == 1
        metadata, raw, trailer = sink[0].split("\n")
        assert metadata.startswith("# line 2 fault=")
        assert raw == BAD
        assert trailer == ""
        assert report.reconciles()

    def test_quarantine_requires_sink(self):
        with pytest.raises(ConfigurationError, match="sink"):
            ingest_lines([GOOD], policy="quarantine")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown error policy"):
            ingest_lines([GOOD], policy="panic")

    def test_policy_accepts_enum_and_string(self):
        assert ErrorPolicy.coerce("repair") is ErrorPolicy.REPAIR
        assert ErrorPolicy.coerce(ErrorPolicy.SKIP) is ErrorPolicy.SKIP

    def test_on_malformed_callback_surfaces_errors(self):
        seen = []
        list(ingest_lines([GOOD, BAD], policy="skip",
                          on_malformed=seen.append))
        assert len(seen) == 1
        assert isinstance(seen[0], LogFormatError)
        assert seen[0].line_number == 2


class TestRepair:
    def test_strip_controls_rescues_nul_injection(self):
        corrupted = GOOD.replace("GET", "G\x00ET")
        report = IngestReport()
        records = list(ingest_lines([corrupted], policy="repair",
                                    report=report))
        assert len(records) == 1
        assert records[0].host == "10.0.0.1"
        assert report.repaired == 1
        assert report.fault_counts.get("repaired:strip-controls") == 1
        assert report.reconciles()

    def test_clf_prefix_rescues_torn_combined_tail(self):
        combined = format_combined_line(
            CLFRecord("10.0.0.1", 1000.0, "GET", "/P1.html", "HTTP/1.1",
                      200, 64, referrer="/P0.html",
                      user_agent="Mozilla/5.0"))
        torn = combined[:len(GOOD) + 6]        # cut inside the referrer
        report = IngestReport()
        records = list(ingest_lines([torn], policy="repair",
                                    report=report))
        assert len(records) == 1
        assert records[0].url == "/P1.html"
        assert records[0].referrer is None     # the torn tail is gone
        assert report.fault_counts.get("repaired:clf-prefix") == 1

    def test_unrepairable_falls_back_to_quarantine(self):
        report, sink = IngestReport(), []
        records = list(ingest_lines([BAD], policy="repair",
                                    report=report, quarantine=sink))
        assert records == []
        assert report.quarantined == 1
        assert len(sink) == 1
        assert report.reconciles()

    def test_unrepairable_without_sink_is_counted_drop(self):
        report = IngestReport()
        list(ingest_lines([BAD], policy="repair", report=report))
        assert report.dropped == 1
        assert report.reconciles()


class TestClassification:
    def test_encoding(self):
        line = GOOD[:5] + "\x00" + GOOD[5:]
        assert classify_fault(line, LogFormatError("x")) == "encoding"

    def test_truncated_unclosed_quote(self):
        line = GOOD[:GOOD.index('"') + 5]
        assert classify_fault(line, LogFormatError("x")) == "truncated"

    def test_truncated_unclosed_date(self):
        line = GOOD[:GOOD.index("[") + 4]
        assert classify_fault(line, LogFormatError("x")) == "truncated"

    def test_bad_timestamp(self):
        line = GOOD.replace("/Jan/", "/Foo/")
        error = LogFormatError("unknown month abbreviation 'Foo'")
        assert classify_fault(line, error) == "bad-timestamp"

    def test_garbage(self):
        assert classify_fault(BAD, LogFormatError("x")) == "garbage"

    def test_trailing_newline_is_not_encoding(self):
        assert classify_fault(BAD + "\n", LogFormatError("x")) == "garbage"


class TestAttemptRepair:
    def test_no_strategy_returns_none(self):
        assert attempt_repair(BAD) is None

    def test_repair_keeps_line_number(self):
        corrupted = GOOD.replace("GET", "G\x00ET")
        record, strategy = attempt_repair(corrupted, line_number=7)
        assert strategy == "strip-controls"
        assert record.timestamp == 1000.0


class TestFileApi:
    def test_ingest_clf_file_with_quarantine(self, tmp_path):
        log = tmp_path / "access.log"
        log.write_text(f"{GOOD}\n{BAD}\n{GOOD}\n", encoding="utf-8")
        quarantine = tmp_path / "bad.log"
        result = ingest_clf_file(str(log), policy="quarantine",
                                 quarantine_path=str(quarantine))
        assert len(result.records) == 2
        assert result.report.quarantined == 1
        assert result.report.reconciles()
        content = quarantine.read_text(encoding="utf-8")
        assert BAD in content

    def test_quarantine_output_is_run_identical(self, tmp_path):
        log = tmp_path / "access.log"
        log.write_text(f"{BAD}\n{GOOD}\n{BAD} again\n", encoding="utf-8")
        outputs = []
        for run in range(2):
            quarantine = tmp_path / f"q{run}.log"
            ingest_clf_file(str(log), policy="quarantine",
                            quarantine_path=str(quarantine))
            outputs.append(quarantine.read_bytes())
        assert outputs[0] == outputs[1]

    def test_summary_renders(self):
        report = IngestReport()
        list(ingest_lines([GOOD, BAD], policy="skip", report=report))
        text = report.summary()
        assert "parsed:      1" in text
        assert "reconciled:  ok" in text


class TestLegacyReaderCompatibility:
    def test_iter_clf_lines_strict_unchanged(self):
        records = list(iter_clf_lines([GOOD, "", GOOD]))
        assert len(records) == 2
        with pytest.raises(LogFormatError):
            list(iter_clf_lines([BAD]))

    def test_skip_malformed_now_accounts(self):
        report = IngestReport()
        records = list(iter_clf_lines([GOOD, BAD], skip_malformed=True,
                                      report=report))
        assert len(records) == 1
        assert report.dropped == 1

    def test_read_clf_file_surfaces_drops_via_callback(self, tmp_path):
        log = tmp_path / "a.log"
        log.write_text(f"{GOOD}\n{BAD}\n", encoding="utf-8")
        seen = []
        records = read_clf_file(str(log), skip_malformed=True,
                                on_malformed=seen.append)
        assert len(records) == 1
        assert len(seen) == 1
