"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.sessions.model import SessionSet
from repro.topology.io import load_graph


def test_parser_lists_all_commands():
    parser = build_parser()
    actions = {action.dest: action for action in parser._actions}
    choices = actions["command"].choices
    assert set(choices) == {"topology", "simulate", "clean", "reconstruct",
                            "sessionize", "stream", "evaluate",
                            "experiment", "sweep", "mine", "stats",
                            "run-spec", "dataset", "compare", "anonymize",
                            "selftest", "leaderboard", "chaos", "ingest",
                            "doctor", "diffcheck", "trace", "bench-diff"}


def test_topology_command(tmp_path, capsys):
    out = str(tmp_path / "site.json")
    code = main(["topology", "--pages", "40", "--out-degree", "4",
                 "--seed", "3", "--output", out])
    assert code == 0
    graph = load_graph(out)
    assert graph.page_count == 40
    printed = capsys.readouterr().out
    assert "pages: 40" in printed


@pytest.mark.parametrize("family", ["hierarchical", "power-law"])
def test_topology_families(tmp_path, family):
    out = str(tmp_path / "site.json")
    assert main(["topology", "--family", family, "--pages", "30",
                 "--output", out]) == 0
    assert load_graph(out).page_count == 30


@pytest.fixture()
def pipeline_files(tmp_path):
    """Run topology+simulate once; return the file paths."""
    site = str(tmp_path / "site.json")
    log = str(tmp_path / "access.log")
    truth = str(tmp_path / "truth.json")
    assert main(["topology", "--pages", "40", "--out-degree", "4",
                 "--seed", "3", "--output", site]) == 0
    assert main(["simulate", "--topology", site, "--agents", "40",
                 "--seed", "1", "--log", log, "--sessions", truth]) == 0
    return {"site": site, "log": log, "truth": truth, "dir": tmp_path}


def test_simulate_writes_log_and_truth(pipeline_files):
    truth = SessionSet.load(pipeline_files["truth"])
    assert len(truth) > 0
    with open(pipeline_files["log"], encoding="utf-8") as handle:
        assert len(handle.readlines()) > 0


def test_reconstruct_and_evaluate(pipeline_files, capsys):
    out = str(pipeline_files["dir"] / "reconstructed.json")
    assert main(["reconstruct", "--log", pipeline_files["log"],
                 "--heuristic", "heur4",
                 "--topology", pipeline_files["site"],
                 "--output", out]) == 0
    assert main(["evaluate", "--truth", pipeline_files["truth"],
                 "--reconstructed", out]) == 0
    printed = capsys.readouterr().out
    assert "real accuracy" in printed


def test_reconstruct_time_heuristic_needs_no_topology(pipeline_files):
    out = str(pipeline_files["dir"] / "heur2.json")
    assert main(["reconstruct", "--log", pipeline_files["log"],
                 "--heuristic", "heur2", "--output", out]) == 0
    assert len(SessionSet.load(out)) > 0


def test_reconstruct_heur3_without_topology_fails(pipeline_files, capsys):
    out = str(pipeline_files["dir"] / "fail.json")
    code = main(["reconstruct", "--log", pipeline_files["log"],
                 "--heuristic", "heur3", "--output", out])
    assert code == 2
    assert "requires --topology" in capsys.readouterr().err


def test_clean_command(pipeline_files, capsys):
    out = str(pipeline_files["dir"] / "clean.log")
    assert main(["clean", "--log", pipeline_files["log"],
                 "--output", out]) == 0
    assert "kept" in capsys.readouterr().out


def test_mine_command(pipeline_files, capsys):
    assert main(["mine", "--sessions", pipeline_files["truth"],
                 "--min-support", "0.005"]) == 0
    assert "frequent patterns" in capsys.readouterr().out


def test_experiment_command_writes_csv(tmp_path, capsys, monkeypatch):
    # shrink the sweep so the test stays fast: patch the value grids.
    import repro.evaluation.experiments as experiments
    monkeypatch.setattr(experiments, "FIG8_STP_VALUES", (0.05, 0.2))
    csv_path = str(tmp_path / "fig8.csv")
    assert main(["experiment", "fig8", "--agents", "30", "--seed", "2",
                 "--csv", csv_path]) == 0
    printed = capsys.readouterr().out
    assert "Figure 8" in printed
    with open(csv_path, encoding="utf-8") as handle:
        header = handle.readline()
    assert header.startswith("stp,")


def test_repro_error_returns_one(tmp_path, capsys):
    # evaluating against an empty ground truth is a ReproError -> exit 1.
    empty = str(tmp_path / "empty.json")
    SessionSet([]).save(empty)
    code = main(["evaluate", "--truth", empty, "--reconstructed", empty])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_compare_command(pipeline_files, capsys):
    heur4_out = str(pipeline_files["dir"] / "cmp_heur4.json")
    heur2_out = str(pipeline_files["dir"] / "cmp_heur2.json")
    assert main(["reconstruct", "--log", pipeline_files["log"],
                 "--heuristic", "heur4",
                 "--topology", pipeline_files["site"],
                 "--output", heur4_out]) == 0
    assert main(["reconstruct", "--log", pipeline_files["log"],
                 "--heuristic", "heur2", "--output", heur2_out]) == 0
    capsys.readouterr()
    assert main(["compare", "--truth", pipeline_files["truth"],
                 "--a", heur4_out, "--b", heur2_out,
                 "--name-a", "heur4", "--name-b", "heur2"]) == 0
    printed = capsys.readouterr().out
    assert "p=" in printed
    assert "significant at 5%" in printed


def test_stats_command(pipeline_files, capsys):
    assert main(["stats", "--sessions", pipeline_files["truth"]]) == 0
    assert "length histogram" in capsys.readouterr().out


def test_anonymize_command(pipeline_files, capsys):
    out = str(pipeline_files["dir"] / "anon.log")
    assert main(["anonymize", "--log", pipeline_files["log"],
                 "--output", out, "--key", "secret"]) == 0
    printed = capsys.readouterr().out
    assert "keyed pseudonyms" in printed
    from repro.logs.reader import read_clf_file
    records = read_clf_file(out)
    assert all(record.host.startswith("user-") for record in records)


def test_anonymize_truncate_mode(pipeline_files, capsys):
    out = str(pipeline_files["dir"] / "trunc.log")
    assert main(["anonymize", "--log", pipeline_files["log"],
                 "--output", out, "--truncate", "2"]) == 0
    assert "truncation" in capsys.readouterr().out


def test_selftest_command(capsys):
    assert main(["selftest"]) == 0
    printed = capsys.readouterr().out
    assert "selftest passed" in printed
    assert "Smart-SRA: ok" in printed


def test_leaderboard_command(capsys):
    assert main(["leaderboard", "--agents", "40", "--seed", "3"]) == 0
    printed = capsys.readouterr().out
    assert "matched [95% CI]" in printed
    assert "referrer" in printed


def test_chaos_then_ingest_roundtrip(pipeline_files, capsys):
    dirty = str(pipeline_files["dir"] / "dirty.log")
    quarantine = str(pipeline_files["dir"] / "bad.log")
    assert main(["chaos", "--log", pipeline_files["log"],
                 "--output", dirty, "--seed", "7",
                 "--fault", "truncate:0.1", "--fault", "garble:0.05"]) == 0
    assert main(["ingest", "--log", dirty,
                 "--error-policy", "quarantine",
                 "--quarantine", quarantine]) == 0
    printed = capsys.readouterr().out
    assert "reconciled:  ok" in printed
    with open(quarantine, encoding="utf-8") as handle:
        assert any(line.startswith("# line ") for line in handle)


def test_chaos_same_seed_is_byte_identical(pipeline_files):
    outs = []
    for name in ("a.log", "b.log"):
        out = str(pipeline_files["dir"] / name)
        assert main(["chaos", "--log", pipeline_files["log"],
                     "--output", out, "--seed", "11"]) == 0
        with open(out, "rb") as handle:
            outs.append(handle.read())
    assert outs[0] == outs[1]


def test_ingest_strict_fails_on_dirty_log(pipeline_files, capsys):
    dirty = str(pipeline_files["dir"] / "dirty2.log")
    assert main(["chaos", "--log", pipeline_files["log"],
                 "--output", dirty, "--seed", "7",
                 "--fault", "truncate:0.2"]) == 0
    assert main(["ingest", "--log", dirty,
                 "--error-policy", "strict"]) == 1
    assert "error:" in capsys.readouterr().err


class TestWorkersFlag:
    def test_negative_workers_rejected(self, pipeline_files, capsys):
        out = str(pipeline_files["dir"] / "neg.json")
        code = main(["reconstruct", "--log", pipeline_files["log"],
                     "--heuristic", "heur2", "--output", out,
                     "--workers", "-2"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: --workers must be >= 0")

    def test_simulate_negative_workers_rejected(self, tmp_path, capsys):
        site = str(tmp_path / "site.json")
        assert main(["topology", "--pages", "20", "--output", site]) == 0
        code = main(["simulate", "--topology", site, "--agents", "5",
                     "--log", str(tmp_path / "x.log"),
                     "--sessions", str(tmp_path / "x.json"),
                     "--workers", "-1"])
        assert code == 2
        assert "error: --workers" in capsys.readouterr().err

    def test_parallel_reconstruction_matches_serial(self, pipeline_files):
        serial = str(pipeline_files["dir"] / "serial.json")
        parallel = str(pipeline_files["dir"] / "parallel.json")
        base = ["reconstruct", "--log", pipeline_files["log"],
                "--heuristic", "heur4",
                "--topology", pipeline_files["site"]]
        assert main(base + ["--output", serial]) == 0
        assert main(base + ["--output", parallel, "--workers", "2"]) == 0
        assert SessionSet.load(parallel) == SessionSet.load(serial)

    def test_simulate_auto_workers_matches_serial(self, tmp_path):
        site = str(tmp_path / "site.json")
        assert main(["topology", "--pages", "20", "--seed", "4",
                     "--output", site]) == 0
        logs = []
        for name, extra in (("a.log", []), ("b.log", ["--workers", "0"])):
            log = str(tmp_path / name)
            assert main(["simulate", "--topology", site, "--agents", "10",
                         "--seed", "2", "--log", log,
                         "--sessions", log + ".json"] + extra) == 0
            with open(log, "rb") as handle:
                logs.append(handle.read())
        assert logs[0] == logs[1]


def test_sessionize_alias(pipeline_files):
    out = str(pipeline_files["dir"] / "alias.json")
    assert main(["sessionize", "--log", pipeline_files["log"],
                 "--heuristic", "heur2", "--output", out]) == 0
    assert len(SessionSet.load(out)) > 0


class TestSweepCommand:
    def test_sweep_writes_table_and_csv(self, pipeline_files, capsys):
        csv_path = str(pipeline_files["dir"] / "sweep.csv")
        assert main(["sweep", "--topology", pipeline_files["site"],
                     "--parameter", "stp", "--values", "0.1,0.3",
                     "--agents", "15", "--seed", "2",
                     "--csv", csv_path]) == 0
        printed = capsys.readouterr().out
        assert "vs STP" in printed
        with open(csv_path, encoding="utf-8") as handle:
            assert handle.readline().startswith("stp,")

    def test_sweep_rejects_garbage_values(self, capsys):
        code = main(["sweep", "--parameter", "stp",
                     "--values", "0.1,banana"])
        assert code == 2
        assert "error: --values" in capsys.readouterr().err

    def test_sweep_rejects_empty_values(self, capsys):
        code = main(["sweep", "--parameter", "stp", "--values", ","])
        assert code == 2
        assert "at least one value" in capsys.readouterr().err


def test_stats_merges_multiple_snapshots(tmp_path, capsys):
    import json as json_module
    paths = []
    for name, count in (("w1.json", 3), ("w2.json", 4)):
        path = tmp_path / name
        path.write_text(json_module.dumps(
            {"version": 1, "counters": {"sessions.requests": count},
             "gauges": {"depth": count}, "histograms": {}}))
        paths.append(str(path))
    assert main(["stats", "--snapshot", paths[0], "--snapshot", paths[1],
                 "--format", "json"]) == 0
    merged = json_module.loads(capsys.readouterr().out)
    assert merged["counters"]["sessions.requests"] == 7   # counters add
    assert merged["gauges"]["depth"] == 4                 # last write wins


# -- stream / governor -------------------------------------------------------


def test_stream_matches_batch_reconstruct(pipeline_files, capsys):
    streamed = str(pipeline_files["dir"] / "streamed.json")
    batch = str(pipeline_files["dir"] / "batch.json")
    assert main(["stream", "--log", pipeline_files["log"],
                 "--topology", pipeline_files["site"],
                 "--output", streamed]) == 0
    assert "ungoverned" in capsys.readouterr().out
    assert main(["reconstruct", "--log", pipeline_files["log"],
                 "--heuristic", "smart-sra",
                 "--topology", pipeline_files["site"],
                 "--output", batch]) == 0
    key = lambda sessions: sorted((s.user_id, s.pages, s.start_time)
                                  for s in sessions)
    assert key(SessionSet.load(streamed)) == key(SessionSet.load(batch))


def test_stream_governed_reports_degradation(pipeline_files, capsys):
    out = str(pipeline_files["dir"] / "governed.json")
    assert main(["stream", "--log", pipeline_files["log"],
                 "--topology", pipeline_files["site"], "--output", out,
                 "--memory-budget", "4k", "--overload-policy", "evict",
                 "--per-user-cap", "16", "--late-policy", "drop",
                 "--flush-every", "600"]) == 0
    printed = capsys.readouterr().out
    assert "governed" in printed
    assert "bounded" in printed
    assert "evictions" in printed
    assert len(SessionSet.load(out)) > 0


def test_stream_block_policy_spills(pipeline_files, capsys):
    out = str(pipeline_files["dir"] / "spilled.json")
    spill = str(pipeline_files["dir"] / "spill")
    assert main(["stream", "--log", pipeline_files["log"],
                 "--topology", pipeline_files["site"], "--output", out,
                 "--memory-budget", "4k", "--overload-policy", "block",
                 "--spill-dir", spill, "--late-policy", "drop"]) == 0
    assert "spills" in capsys.readouterr().out


def test_stream_phase1_needs_no_topology(pipeline_files):
    out = str(pipeline_files["dir"] / "phase1.json")
    assert main(["stream", "--log", pipeline_files["log"],
                 "--heuristic", "phase1", "--output", out]) == 0


def test_stream_smart_sra_without_topology_fails(pipeline_files, capsys):
    code = main(["stream", "--log", pipeline_files["log"],
                 "--output", str(pipeline_files["dir"] / "x.json")])
    assert code == 2
    assert "requires --topology" in capsys.readouterr().err


def test_stream_rejects_bad_governor_combination(pipeline_files, capsys):
    code = main(["stream", "--log", pipeline_files["log"],
                 "--heuristic", "phase1",
                 "--output", str(pipeline_files["dir"] / "x.json"),
                 "--overload-policy", "block"])
    assert code == 1
    assert "spill_dir" in capsys.readouterr().err


def test_stream_rejects_malformed_budget(pipeline_files, capsys):
    code = main(["stream", "--log", pipeline_files["log"],
                 "--heuristic", "phase1",
                 "--output", str(pipeline_files["dir"] / "x.json"),
                 "--memory-budget", "lots"])
    assert code == 1
    assert "malformed memory budget" in capsys.readouterr().err


def test_doctor_audits_overload_configuration(capsys):
    assert main(["doctor", "--memory-budget", "64k",
                 "--per-user-cap", "64"]) == 0
    assert "verdict: ok" in capsys.readouterr().out
    assert main(["doctor", "--memory-budget", "4k"]) == 1
    assert "DEGRADED" in capsys.readouterr().out


def test_doctor_overload_json(capsys):
    assert main(["doctor", "--json", "--memory-budget", "64k",
                 "--per-user-cap", "64"]) == 0
    import json as json_module
    document = json_module.loads(capsys.readouterr().out)
    assert document["ok"] is True
    assert document["memory_budget"] == 64 * 1024


def test_doctor_audits_telemetry_configuration(capsys):
    assert main(["doctor", "--serve-metrics", "9100",
                 "--timeline-interval", "1.0",
                 "--timeline-capacity", "600"]) == 0
    printed = capsys.readouterr().out
    assert "telemetry configuration:" in printed
    assert "verdict: ok" in printed
    # an impossible port is a failing verdict, not a warning.
    assert main(["doctor", "--serve-metrics", "70000"]) == 1
    assert "DEGRADED" in capsys.readouterr().out


def test_doctor_combined_overload_and_telemetry_json(capsys):
    import json as json_module
    assert main(["doctor", "--json", "--memory-budget", "64k",
                 "--per-user-cap", "64",
                 "--timeline-interval", "0.001",
                 "--timeline-capacity", "600"]) == 0
    document = json_module.loads(capsys.readouterr().out)
    assert document["ok"] is True
    assert len(document["audits"]) == 2
    # the tiny interval warns; the governor budget feeds the ring check.
    telemetry = document["audits"][1]
    assert any(check["level"] == "warn"
               for check in telemetry["checks"])


def test_doctor_without_target_fails(capsys):
    assert main(["doctor"]) == 2
    assert "needs a checkpoint DIR" in capsys.readouterr().err


def test_doctor_rejects_both_modes(tmp_path, capsys):
    assert main(["doctor", str(tmp_path), "--memory-budget", "64k"]) == 2
    assert "not both" in capsys.readouterr().err


def test_chaos_overload_selftest(capsys):
    assert main(["chaos", "--overload-selftest",
                 "--overload-budget", "48k"]) == 0
    err = capsys.readouterr().err
    assert "bounded" in err
    assert "reconciles" in err


def test_chaos_overload_selftest_json(capsys):
    assert main(["chaos", "--overload-selftest", "--json",
                 "--overload-budget", "48k",
                 "--exec-fault", "mem-pressure:400:0.5"]) == 0
    import json as json_module
    document = json_module.loads(capsys.readouterr().out)
    assert document["ok"] is True
    assert document["bounded"] is True


def test_chaos_selftests_mutually_exclusive(capsys):
    assert main(["chaos", "--exec-selftest", "--overload-selftest"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err
