"""Unit tests for topology analysis helpers and (de)serialization."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topology.analysis import (
    degree_statistics,
    entry_candidates,
    reachable_fraction,
    summarize,
)
from repro.topology.graph import WebGraph
from repro.topology.io import (
    graph_from_adjacency_lines,
    graph_from_jsonable,
    graph_to_adjacency_lines,
    graph_to_jsonable,
    load_graph,
    save_graph,
)


@pytest.fixture()
def chain_with_island():
    """A -> B -> C plus an isolated page X (unreachable)."""
    return WebGraph([("A", "B"), ("B", "C")], pages=["A", "B", "C", "X"],
                    start_pages=["A"])


class TestAnalysis:
    def test_degree_statistics(self, chain_with_island):
        stats = degree_statistics(chain_with_island)
        assert stats.mean_out == pytest.approx(0.5)
        assert stats.max_out == 1
        assert stats.max_in == 1
        assert stats.dead_end_count == 2  # C and X

    def test_reachable_fraction(self, chain_with_island):
        assert reachable_fraction(chain_with_island) == pytest.approx(0.75)

    def test_entry_candidates_prefer_declared_starts(self, chain_with_island):
        ranked = entry_candidates(chain_with_island, top=2)
        assert ranked[0] == "A"

    def test_entry_candidates_validates_top(self, chain_with_island):
        with pytest.raises(TopologyError):
            entry_candidates(chain_with_island, top=0)

    def test_summarize_keys(self, chain_with_island):
        summary = summarize(chain_with_island)
        assert summary["pages"] == 4
        assert summary["links"] == 2
        assert summary["start_pages"] == 1
        assert summary["reachable_fraction"] == pytest.approx(0.75)


class TestJsonIO:
    def test_jsonable_roundtrip(self, chain_with_island):
        data = graph_to_jsonable(chain_with_island)
        assert graph_from_jsonable(data) == chain_with_island

    def test_file_roundtrip(self, chain_with_island, tmp_path):
        path = str(tmp_path / "site.json")
        save_graph(chain_with_island, path)
        assert load_graph(path) == chain_with_island

    def test_rejects_bad_version(self, chain_with_island):
        data = graph_to_jsonable(chain_with_island)
        data["version"] = 99
        with pytest.raises(TopologyError, match="version"):
            graph_from_jsonable(data)

    def test_rejects_missing_keys(self):
        with pytest.raises(TopologyError, match="malformed"):
            graph_from_jsonable({"pages": []})


class TestAdjacencyLines:
    def test_roundtrip(self, chain_with_island):
        lines = graph_to_adjacency_lines(chain_with_island)
        assert graph_from_adjacency_lines(lines) == chain_with_island

    def test_start_page_marker(self, chain_with_island):
        lines = graph_to_adjacency_lines(chain_with_island)
        assert "*A -> B" in lines

    def test_parses_comments_and_blanks(self):
        lines = ["# a comment", "", "*A -> B C", "B -> C"]
        graph = graph_from_adjacency_lines(lines)
        assert graph.pages == {"A", "B", "C"}
        assert graph.start_pages == {"A"}

    def test_rejects_missing_separator(self):
        with pytest.raises(TopologyError, match="separator"):
            graph_from_adjacency_lines(["*A B C"])

    def test_rejects_no_start_page(self):
        with pytest.raises(TopologyError, match="start page"):
            graph_from_adjacency_lines(["A -> B"])

    def test_rejects_empty_source(self):
        with pytest.raises(TopologyError, match="empty source"):
            graph_from_adjacency_lines(["* -> B"])


class TestPathStatistics:
    def test_chain_depths(self, chain_with_island):
        from repro.topology.analysis import path_statistics
        stats = path_statistics(chain_with_island)
        # A=0, B=1, C=2; island X unreachable and excluded.
        assert stats.depth_histogram == {0: 1, 1: 1, 2: 1}
        assert stats.mean_depth == pytest.approx(1.0)
        assert stats.max_depth == 2

    def test_multiple_start_pages_take_minimum(self):
        from repro.topology.analysis import path_statistics
        graph = WebGraph([("A", "B"), ("B", "C")],
                         start_pages=["A", "C"])
        stats = path_statistics(graph)
        assert stats.depth_histogram == {0: 2, 1: 1}
        assert stats.max_depth == 1

    def test_summarize_includes_depths(self, chain_with_island):
        from repro.topology.analysis import summarize
        summary = summarize(chain_with_island)
        assert summary["max_click_depth"] == 2
        assert summary["mean_click_depth"] == pytest.approx(1.0)

    def test_generated_sites_are_shallow(self):
        from repro.topology.analysis import path_statistics
        from repro.topology.generators import random_site
        stats = path_statistics(random_site(300, 15, seed=0))
        # dense random sites: nearly everything within a few clicks.
        assert stats.max_depth <= 6
