"""Unit tests for the frozen benchmark datasets."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.datasets import DATASET_TIERS, build_dataset, write_dataset
from repro.exceptions import ConfigurationError
from repro.logs.reader import read_clf_file
from repro.sessions.model import SessionSet
from repro.topology.io import load_graph


class TestTierRegistry:
    def test_three_tiers(self):
        assert set(DATASET_TIERS) == {"small", "medium", "large"}

    def test_large_is_paper_scale(self):
        spec = DATASET_TIERS["large"]
        assert spec.n_pages == 300
        assert spec.avg_out_degree == 15.0
        assert spec.n_agents == 10_000

    def test_tier_seeds_are_distinct(self):
        seeds = {(spec.topology_seed, spec.simulation_seed)
                 for spec in DATASET_TIERS.values()}
        assert len(seeds) == 3


class TestBuildDataset:
    def test_small_tier_builds(self):
        spec, topology, simulation = build_dataset("small")
        assert topology.page_count == spec.n_pages
        assert len(simulation.traces) == spec.n_agents
        assert len(simulation.ground_truth) > 0

    def test_deterministic(self):
        first = build_dataset("small")[2]
        second = build_dataset("small")[2]
        assert first.log_requests == second.log_requests

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            build_dataset("huge")


class TestWriteDataset:
    @pytest.fixture(scope="class")
    def bundle(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("dataset")
        manifest = write_dataset("small", str(directory))
        return directory, manifest

    def test_all_files_present(self, bundle):
        directory, manifest = bundle
        for name in manifest["files"]:
            assert (directory / name).exists()
        assert (directory / "MANIFEST.json").exists()

    def test_manifest_statistics_consistent(self, bundle):
        directory, manifest = bundle
        statistics = manifest["statistics"]
        truth = SessionSet.load(str(directory / "ground_truth.json"))
        assert statistics["real_sessions"] == len(truth)
        records = read_clf_file(str(directory / "access.log"))
        assert statistics["log_records"] == len(records)
        topology = load_graph(str(directory / "topology.json"))
        assert statistics["pages"] == topology.page_count

    def test_combined_log_has_headers(self, bundle):
        directory, __ = bundle
        records = read_clf_file(str(directory / "access_combined.log"))
        assert any(record.user_agent for record in records)

    def test_manifest_json_round_trips(self, bundle):
        directory, manifest = bundle
        with open(directory / "MANIFEST.json", encoding="utf-8") as handle:
            assert json.load(handle) == manifest

    def test_bundle_supports_full_evaluation(self, bundle):
        """A dataset consumer can score a heuristic with no simulator."""
        directory, __ = bundle
        from repro.core.smart_sra import SmartSRA
        from repro.evaluation.metrics import evaluate_reconstruction
        from repro.logs.reader import records_to_requests
        topology = load_graph(str(directory / "topology.json"))
        truth = SessionSet.load(str(directory / "ground_truth.json"))
        requests = records_to_requests(
            read_clf_file(str(directory / "access.log")))
        sessions = SmartSRA(topology).reconstruct(requests)
        report = evaluate_reconstruction("heur4", truth, sessions)
        assert report.matched_accuracy > 0.3

    def test_cli_dataset_command(self, tmp_path, capsys):
        out = str(tmp_path / "bundle")
        assert main(["dataset", "small", "--output", out]) == 0
        printed = capsys.readouterr().out
        assert "real_sessions" in printed
