"""Unit tests for the mining package (apriori, sequences, rules, Markov)."""

from __future__ import annotations

import pytest

from repro.exceptions import EvaluationError
from repro.mining.apriori import apriori
from repro.mining.prediction import MarkovPredictor
from repro.mining.rules import association_rules
from repro.mining.sequential import frequent_sequences, pattern_overlap
from repro.sessions.model import Session, SessionSet


def _s(pages, user="u0"):
    return Session.from_pages(pages, user_id=user)


@pytest.fixture()
def shop_sessions():
    """Four sessions over a toy shop: {home, list, item, cart}."""
    return SessionSet([
        _s(["home", "list", "item", "cart"]),
        _s(["home", "list", "item"]),
        _s(["home", "list"]),
        _s(["home", "about"]),
    ])


class TestApriori:
    def test_singleton_supports(self, shop_sessions):
        itemsets = apriori(shop_sessions, min_support=0.5)
        by_pages = {item.pages: item.support for item in itemsets}
        assert by_pages[("home",)] == 1.0
        assert by_pages[("list",)] == 0.75
        assert by_pages[("item",)] == 0.5

    def test_pair_supports(self, shop_sessions):
        itemsets = apriori(shop_sessions, min_support=0.5)
        by_pages = {item.pages for item in itemsets}
        assert ("home", "list") in by_pages
        assert ("home", "item") in by_pages
        assert ("cart",) not in by_pages  # support 0.25 < 0.5

    def test_downward_closure(self, shop_sessions):
        itemsets = apriori(shop_sessions, min_support=0.25, max_size=4)
        mined = {frozenset(item.pages) for item in itemsets}
        for itemset in mined:
            if len(itemset) > 1:
                for page in itemset:
                    assert itemset - {page} in mined

    def test_max_size_bounds_lattice(self, shop_sessions):
        itemsets = apriori(shop_sessions, min_support=0.25, max_size=2)
        assert max(len(item.pages) for item in itemsets) == 2

    def test_distinct_pages_per_transaction(self):
        # repeats within one session must not inflate support.
        repeated = SessionSet([_s(["A", "B", "A"])])
        itemsets = apriori(repeated, min_support=1.0)
        by_pages = {item.pages: item.count for item in itemsets}
        assert by_pages[("A",)] == 1

    @pytest.mark.parametrize("kwargs", [
        {"min_support": 0.0}, {"min_support": 1.1}, {"max_size": 0}])
    def test_rejects_invalid(self, shop_sessions, kwargs):
        with pytest.raises(EvaluationError):
            apriori(shop_sessions, **kwargs)

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError):
            apriori(SessionSet([]))


class TestFrequentSequences:
    def test_contiguous_paths(self, shop_sessions):
        patterns = frequent_sequences(shop_sessions, min_support=0.5)
        mined = {pattern.pages for pattern in patterns}
        assert ("home", "list") in mined
        assert ("home", "list", "item") in mined
        assert ("home", "item") not in mined  # never contiguous

    def test_session_counted_once_per_pattern(self):
        looping = SessionSet([_s(["A", "B", "A", "B"])])
        patterns = frequent_sequences(looping, min_support=1.0)
        by_pages = {pattern.pages: pattern.count for pattern in patterns}
        assert by_pages[("A", "B")] == 1

    def test_max_length_bound(self, shop_sessions):
        patterns = frequent_sequences(shop_sessions, min_support=0.25,
                                      max_length=2)
        assert max(len(p.pages) for p in patterns) == 2

    def test_rejects_invalid(self, shop_sessions):
        with pytest.raises(EvaluationError):
            frequent_sequences(shop_sessions, min_support=2.0)
        with pytest.raises(EvaluationError):
            frequent_sequences(shop_sessions, max_length=0)
        with pytest.raises(EvaluationError):
            frequent_sequences(SessionSet([]))


class TestPatternOverlap:
    def test_identical_sets(self, shop_sessions):
        mined = frequent_sequences(shop_sessions, min_support=0.5)
        assert pattern_overlap(mined, mined) == 1.0

    def test_disjoint_sets(self, shop_sessions):
        mined = frequent_sequences(shop_sessions, min_support=0.5)
        other = frequent_sequences(
            SessionSet([_s(["X", "Y"]), _s(["X", "Y"])]), min_support=1.0)
        assert pattern_overlap(mined, other) == 0.0

    def test_both_empty(self):
        assert pattern_overlap([], []) == 1.0


class TestAssociationRules:
    def test_confidence_and_lift(self, shop_sessions):
        itemsets = apriori(shop_sessions, min_support=0.25)
        rules = association_rules(itemsets, min_confidence=0.7)
        by_key = {(rule.antecedent, rule.consequent): rule for rule in rules}
        rule = by_key[(("list",), ("home",))]
        assert rule.confidence == 1.0      # every "list" session has "home"
        assert rule.lift == pytest.approx(1.0)  # home is in every session

    def test_min_confidence_filters(self, shop_sessions):
        itemsets = apriori(shop_sessions, min_support=0.25)
        strict = association_rules(itemsets, min_confidence=0.99)
        loose = association_rules(itemsets, min_confidence=0.3)
        assert len(strict) < len(loose)

    def test_rejects_non_closed_input(self, shop_sessions):
        itemsets = apriori(shop_sessions, min_support=0.25)
        pairs_only = [item for item in itemsets if len(item.pages) == 2]
        with pytest.raises(EvaluationError, match="downward"):
            association_rules(pairs_only, min_confidence=0.1)

    def test_rejects_bad_confidence(self):
        with pytest.raises(EvaluationError):
            association_rules([], min_confidence=0.0)

    def test_str_rendering(self, shop_sessions):
        itemsets = apriori(shop_sessions, min_support=0.25)
        rules = association_rules(itemsets, min_confidence=0.7)
        assert "=>" in str(rules[0])


class TestMarkovPredictor:
    def test_predicts_most_frequent_transition(self, shop_sessions):
        model = MarkovPredictor().fit(shop_sessions)
        assert model.predict("home", top=1) == ["list"]

    def test_transition_probability(self, shop_sessions):
        model = MarkovPredictor().fit(shop_sessions)
        assert model.transition_probability("home", "list") == 0.75
        assert model.transition_probability("home", "about") == 0.25
        assert model.transition_probability("home", "cart") == 0.0
        assert model.transition_probability("nowhere", "list") == 0.0

    def test_unknown_page_predicts_nothing(self, shop_sessions):
        model = MarkovPredictor().fit(shop_sessions)
        assert model.predict("cart") == []

    def test_hit_rate_perfect_on_training_chain(self):
        sessions = SessionSet([_s(["A", "B", "C"])] * 3)
        model = MarkovPredictor().fit(sessions)
        assert model.hit_rate(sessions, top=1) == 1.0

    def test_hit_rate_requires_transitions(self, shop_sessions):
        model = MarkovPredictor().fit(shop_sessions)
        with pytest.raises(EvaluationError, match="no transitions"):
            model.hit_rate(SessionSet([_s(["A"])]))

    def test_untrained_raises(self):
        with pytest.raises(EvaluationError, match="not trained"):
            MarkovPredictor().predict("home")

    def test_rejects_empty_training(self):
        with pytest.raises(EvaluationError):
            MarkovPredictor().fit(SessionSet([]))

    def test_rejects_bad_top(self, shop_sessions):
        model = MarkovPredictor().fit(shop_sessions)
        with pytest.raises(EvaluationError):
            model.predict("home", top=0)

    def test_vocabulary(self, shop_sessions):
        model = MarkovPredictor().fit(shop_sessions)
        assert "home" in model.vocabulary()
        assert "cart" not in model.vocabulary()  # never a source
