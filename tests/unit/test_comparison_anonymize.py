"""Unit tests for McNemar comparison and log anonymization."""

from __future__ import annotations

import pytest

from repro.evaluation.comparison import compare_heuristics
from repro.exceptions import EvaluationError, LogFormatError
from repro.logs.anonymize import pseudonymize_hosts, truncate_ipv4_hosts
from repro.logs.clf import CLFRecord
from repro.sessions.model import Session, SessionSet


def _s(pages, user="u0"):
    return Session.from_pages(pages, user_id=user)


class TestCompareHeuristics:
    @pytest.fixture()
    def truth(self):
        return SessionSet([_s([f"A{i}", f"B{i}"], user=f"u{i}")
                           for i in range(30)])

    def test_identical_reconstructions_tie(self, truth):
        result = compare_heuristics(truth, truth, truth, "x", "y")
        assert result.p_value == 1.0
        assert result.winner is None
        assert result.both == 30
        assert not result.significant()

    def test_one_sided_dominance_is_significant(self, truth):
        nothing = SessionSet([_s(["Z"], user=f"u{i}") for i in range(30)])
        result = compare_heuristics(truth, truth, nothing, "good", "bad")
        assert result.only_a == 30
        assert result.only_b == 0
        assert result.winner == "good"
        assert result.significant(0.001)
        assert result.accuracy_a == 1.0
        assert result.accuracy_b == 0.0

    def test_small_discordance_not_significant(self, truth):
        # B misses exactly one session A gets: 1 discordant pair, p = 1.0.
        almost = SessionSet(
            [_s(["A0", "X"], user="u0")]
            + [_s([f"A{i}", f"B{i}"], user=f"u{i}") for i in range(1, 30)])
        result = compare_heuristics(truth, truth, almost)
        assert result.only_a == 1
        assert result.p_value == 1.0

    def test_counts_partition_ground_truth(self, truth):
        half = SessionSet([_s([f"A{i}", f"B{i}"], user=f"u{i}")
                           for i in range(15)])
        result = compare_heuristics(truth, half, truth)
        assert (result.both + result.only_a + result.only_b
                + result.neither) == len(truth)

    def test_str_rendering(self, truth):
        text = str(compare_heuristics(truth, truth, truth, "a", "b"))
        assert "p=" in text and "tie" in text

    def test_empty_truth_rejected(self):
        with pytest.raises(EvaluationError):
            compare_heuristics(SessionSet([]), SessionSet([]),
                               SessionSet([]))

    def test_smart_sra_beats_time_significantly(self, small_site,
                                                small_simulation):
        from repro.core.smart_sra import SmartSRA
        from repro.sessions.time_oriented import PageStayHeuristic
        smart = SmartSRA(small_site).reconstruct(
            small_simulation.log_requests)
        naive = PageStayHeuristic().reconstruct(
            small_simulation.log_requests)
        result = compare_heuristics(small_simulation.ground_truth,
                                    smart, naive, "heur4", "heur2")
        assert result.winner == "heur4"
        assert result.significant(0.01)


def _record(host, t=0.0):
    return CLFRecord(host, t, "GET", "/P1.html", "HTTP/1.1", 200, 100)


class TestPseudonymize:
    def test_stable_within_key(self):
        records = [_record("1.2.3.4"), _record("1.2.3.4"),
                   _record("5.6.7.8")]
        out = pseudonymize_hosts(records, key="secret")
        assert out[0].host == out[1].host
        assert out[0].host != out[2].host
        assert out[0].host.startswith("user-")

    def test_different_keys_differ(self):
        record = _record("1.2.3.4")
        first = pseudonymize_hosts([record], key="k1")[0].host
        second = pseudonymize_hosts([record], key="k2")[0].host
        assert first != second

    def test_other_fields_untouched(self):
        record = _record("1.2.3.4", t=42.0)
        out = pseudonymize_hosts([record], key="k")[0]
        assert out.timestamp == 42.0
        assert out.url == record.url

    def test_empty_key_rejected(self):
        with pytest.raises(LogFormatError):
            pseudonymize_hosts([_record("1.2.3.4")], key="")

    def test_reconstruction_survives(self, small_simulation):
        """Pseudonymization must not change per-user session structure."""
        from repro.logs.reader import records_to_requests
        from repro.logs.users import IdentityAddressMap
        from repro.logs.writer import requests_to_records
        from repro.sessions.time_oriented import PageStayHeuristic
        records = requests_to_records(small_simulation.log_requests,
                                      IdentityAddressMap())
        anonymous = pseudonymize_hosts(records, key="k")
        original = PageStayHeuristic().reconstruct(
            records_to_requests(records))
        masked = PageStayHeuristic().reconstruct(
            records_to_requests(anonymous))
        assert sorted(s.pages for s in original) == sorted(
            s.pages for s in masked)


class TestTruncate:
    def test_truncates_low_octets(self):
        out = truncate_ipv4_hosts([_record("10.20.30.40")], keep_octets=3)
        assert out[0].host == "10.20.30.0"
        out = truncate_ipv4_hosts([_record("10.20.30.40")], keep_octets=1)
        assert out[0].host == "10.0.0.0"

    def test_non_ipv4_passes_through(self):
        out = truncate_ipv4_hosts([_record("agent000042")])
        assert out[0].host == "agent000042"

    def test_collapses_neighbors(self):
        out = truncate_ipv4_hosts([_record("10.0.0.1"), _record("10.0.0.2")])
        assert out[0].host == out[1].host

    def test_invalid_octets_rejected(self):
        with pytest.raises(LogFormatError):
            truncate_ipv4_hosts([_record("1.2.3.4")], keep_octets=0)
        with pytest.raises(LogFormatError):
            truncate_ipv4_hosts([_record("1.2.3.4")], keep_octets=4)
