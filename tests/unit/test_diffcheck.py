"""Unit tests for the differential correctness oracle (repro.diffcheck)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.config import SmartSRAConfig
from repro.diffcheck import (
    ENGINE_BASELINE,
    ENGINE_SEMANTICS,
    INVARIANT_ONLY_ENGINES,
    CorpusCase,
    EngineContext,
    available_engines,
    case_from_jsonable,
    case_to_jsonable,
    generate_corpus,
    load_corpus,
    resolve_engines,
    run_diffcheck,
    run_engine,
    save_corpus,
    verify_sessions,
)
from repro.exceptions import ConfigurationError
from repro.sessions.model import Request, Session, SessionSet
from repro.topology.graph import WebGraph


@pytest.fixture()
def chain_topology():
    return WebGraph([("A", "B"), ("B", "C"), ("C", "D")],
                    pages=["A", "B", "C", "D", "LONE"],
                    start_pages=["A"])


def _session(pairs, user="u"):
    return Session(Request(t, user, page) for t, page in pairs)


# -- invariant verifier ------------------------------------------------------


class TestInvariants:
    def test_clean_output_passes(self, chain_topology):
        sessions = [_session([(0.0, "A"), (100.0, "B"), (200.0, "C")]),
                    _session([(5.0, "LONE")], user="v")]
        assert verify_sessions(sessions, chain_topology) == ()

    def test_ordering_violation(self, chain_topology):
        # bare request lists bypass Session's constructor checks — the
        # verifier must catch what a deserialized/buggy engine could emit.
        broken = [[Request(100.0, "u", "A"), Request(50.0, "u", "B")]]
        rules = [v.rule for v in verify_sessions(broken, chain_topology)]
        assert "ordering" in rules

    def test_topology_violation(self, chain_topology):
        sessions = [_session([(0.0, "A"), (10.0, "D")])]   # no A->D link
        violations = verify_sessions(sessions, chain_topology)
        assert [v.rule for v in violations] == ["topology"]
        assert "A" in violations[0].detail and "D" in violations[0].detail

    def test_topology_skipped_without_graph(self):
        sessions = [_session([(0.0, "A"), (10.0, "D")])]
        assert verify_sessions(sessions, topology=None) == ()

    def test_gap_boundary_is_inclusive(self, chain_topology):
        config = SmartSRAConfig(max_gap=600.0, max_duration=1800.0)
        at_rho = [_session([(0.0, "A"), (600.0, "B")])]
        past_rho = [_session([(0.0, "A"), (600.0 + 1e-6, "B")])]
        assert verify_sessions(at_rho, chain_topology, config) == ()
        assert [v.rule for v in
                verify_sessions(past_rho, chain_topology, config)] == [
                    "max-gap"]

    def test_duration_boundary_is_inclusive(self, chain_topology):
        config = SmartSRAConfig(max_gap=600.0, max_duration=1000.0)
        at_delta = [_session([(0.0, "A"), (500.0, "B"), (1000.0, "C")])]
        past_delta = [_session([(0.0, "A"), (500.0, "B"),
                                (1000.0 + 1e-6, "C")])]
        assert verify_sessions(at_delta, chain_topology, config) == ()
        assert [v.rule for v in
                verify_sessions(past_delta, chain_topology, config)] == [
                    "max-duration"]

    def test_synthetic_request_is_maximality_violation(self, chain_topology):
        sessions = [[Request(0.0, "u", "A"),
                     Request(10.0, "u", "B", synthetic=True)]]
        rules = [v.rule for v in verify_sessions(sessions, chain_topology)]
        assert rules == ["maximality"]

    def test_proper_prefix_is_maximality_violation(self, chain_topology):
        sessions = [_session([(0.0, "A")]),
                    _session([(0.0, "A"), (10.0, "B")])]
        violations = verify_sessions(sessions, chain_topology)
        assert [v.rule for v in violations] == ["maximality"]
        assert violations[0].session_index == 0

    def test_equal_sessions_are_not_prefix_violations(self, chain_topology):
        sessions = [_session([(0.0, "A")]), _session([(0.0, "A")])]
        assert verify_sessions(sessions, chain_topology) == ()

    def test_violations_serialize(self, chain_topology):
        sessions = [_session([(0.0, "A"), (10.0, "D")])]
        (violation,) = verify_sessions(sessions, chain_topology)
        document = violation.to_dict()
        assert document["rule"] == "topology"
        assert json.dumps(document)   # JSON-safe


# -- canonical hooks ---------------------------------------------------------


class TestCanonicalForm:
    def test_form_ignores_construction_order(self):
        a = _session([(0.0, "A"), (10.0, "B")])
        b = _session([(700.0, "C")])
        c = _session([(1.0, "A")], user="v")
        left = SessionSet([a, b, c])
        right = SessionSet([c, b, a])
        assert left.canonical_form() == right.canonical_form()
        assert left.canonical_digest() == right.canonical_digest()

    def test_form_keeps_multiplicity(self):
        a = _session([(0.0, "A")])
        once = SessionSet([a])
        twice = SessionSet([a, a])
        assert once.canonical_form() != twice.canonical_form()
        assert once.canonical_digest() != twice.canonical_digest()

    def test_digest_differs_on_content(self):
        assert (SessionSet([_session([(0.0, "A")])]).canonical_digest()
                != SessionSet([_session([(0.0, "B")])]).canonical_digest())

    def test_canonical_key_excludes_referrer(self):
        plain = Session([Request(0.0, "u", "A")])
        with_ref = Session([Request(0.0, "u", "A", referrer="B")])
        assert plain.canonical_key() == with_ref.canonical_key()


# -- engines -----------------------------------------------------------------


class TestEngines:
    def test_serial_is_always_included(self):
        assert resolve_engines("streaming") == ("serial", "streaming")

    def test_all_expands_to_registry_order(self):
        assert resolve_engines("all") == available_engines()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            resolve_engines("serial,warp-drive")
        with pytest.raises(ConfigurationError, match="unknown engine"):
            run_engine("warp-drive", None)

    def test_each_engine_matches_serial(self, chain_topology):
        requests = tuple(sorted([
            Request(0.0, "u1", "A"), Request(30.0, "u1", "B"),
            Request(31.0, "u2", "A"), Request(700.0, "u1", "C"),
            Request(700.0, "u2", "B"), Request(5000.0, "u2", "A"),
        ]))
        ctx = EngineContext(requests=requests, topology=chain_topology,
                            config=SmartSRAConfig(), seed=3)
        reference = run_engine("serial", ctx).canonical_digest()
        for name in available_engines():
            if name in INVARIANT_ONLY_ENGINES:
                continue
            if ENGINE_SEMANTICS.get(name, "smart-sra") != "smart-sra":
                continue  # amp engines answer to amp-reference, not serial
            assert run_engine(name, ctx).canonical_digest() == reference, name

    def test_invariant_only_engines_stay_rule_clean(self, chain_topology):
        # forced-degradation engines may segment differently, but every
        # session they emit must still pass the output-rule verifier.
        requests = tuple(sorted([
            Request(float(i), f"u{i % 3}", page)
            for i, page in enumerate("AB" * 12)
        ], key=lambda r: (r.timestamp, r.user_id)))
        ctx = EngineContext(requests=requests, topology=chain_topology,
                            config=SmartSRAConfig(), seed=3)
        assert INVARIANT_ONLY_ENGINES  # the set must not silently empty
        for name in INVARIANT_ONLY_ENGINES:
            output = run_engine(name, ctx)
            assert verify_sessions(output, chain_topology,
                                   SmartSRAConfig()) == ()


# -- amp engines -------------------------------------------------------------


class TestAmpEngines:
    def test_registered_with_baseline_and_semantics(self):
        engines = available_engines()
        assert "amp-reference" in engines and "amp-optimized" in engines
        assert ENGINE_BASELINE["amp-reference"] is None
        assert ENGINE_BASELINE["amp-optimized"] == "amp-reference"
        assert ENGINE_SEMANTICS["amp-reference"] == "amp"
        assert ENGINE_SEMANTICS["amp-optimized"] == "amp"

    def test_selecting_optimized_pulls_in_its_baseline(self):
        assert resolve_engines("amp-optimized") == (
            "serial", "amp-reference", "amp-optimized")

    def test_implementations_agree_on_a_case(self, chain_topology):
        requests = tuple(sorted([
            Request(float(i * 30), f"u{i % 2}", page)
            for i, page in enumerate("ABCD" * 3)
        ], key=lambda r: (r.timestamp, r.user_id)))
        ctx = EngineContext(requests=requests, topology=chain_topology,
                            config=SmartSRAConfig(), seed=1)
        assert (run_engine("amp-reference", ctx).canonical_digest()
                == run_engine("amp-optimized", ctx).canonical_digest())

    def test_harness_runs_amp_clean(self, chain_topology):
        case = CorpusCase(
            name="amp-tiny", description="", seed=0,
            config=SmartSRAConfig(), topology=chain_topology,
            requests=(Request(0.0, "u", "A"), Request(10.0, "u", "B"),
                      Request(20.0, "u", "C"), Request(1000.0, "u", "A")))
        report = run_diffcheck(
            [case], engines="serial,amp-reference,amp-optimized")
        assert report.ok, report.render()

    def test_amp_golden_mismatch_is_divergence(self, chain_topology):
        case = CorpusCase(
            name="amp-golden", description="", seed=0,
            config=SmartSRAConfig(), topology=chain_topology,
            requests=(Request(0.0, "u", "A"), Request(10.0, "u", "B")))
        ctx = EngineContext(case.requests, case.topology, case.config)
        pinned = case.with_expected(
            run_engine("serial", ctx),
            amp_reference=SessionSet([_session([(0.0, "A"), (10.0, "C")])]))
        report = run_diffcheck([pinned], engines="amp-reference")
        assert not report.ok
        (divergence,) = [d for d in report.outcomes[0].divergences
                         if d.baseline == "golden-amp"]
        assert divergence.engine == "amp-reference"
        assert divergence.rule == "digest"

    def test_sabotaged_optimized_is_caught_by_reference(self, monkeypatch,
                                                        chain_topology):
        import repro.diffcheck.engines as engines_module

        def lossy(ctx):
            good = engines_module.ENGINE_REGISTRY["amp-reference"](ctx)
            return SessionSet(list(good)[:-1])

        monkeypatch.setitem(engines_module.ENGINE_REGISTRY,
                            "amp-optimized", lossy)
        case = CorpusCase(
            name="amp-sabotage", description="", seed=0,
            config=SmartSRAConfig(), topology=chain_topology,
            requests=(Request(0.0, "u", "A"), Request(10.0, "u", "B"),
                      Request(20.0, "u", "C")))
        report = run_diffcheck([case], engines="amp-optimized")
        assert not report.ok
        divergence = report.outcomes[0].divergences[0]
        assert divergence.engine == "amp-optimized"
        assert divergence.baseline == "amp-reference"

    def test_golden_corpus_pins_amp_and_cyclic_case(self):
        cases = load_corpus(GOLDEN_DIR)
        assert "cyclic-topologies" in {case.name for case in cases}
        assert all(case.expected_amp_digest for case in cases)

    def test_golden_corpus_cli_with_amp_engines(self, capsys):
        from repro.cli import main
        assert main(["diffcheck", "--corpus", GOLDEN_DIR, "--engines",
                     "serial,amp-reference,amp-optimized"]) == 0
        assert "all engines equivalent" in capsys.readouterr().out


# -- corpus ------------------------------------------------------------------


class TestCorpus:
    def test_generation_is_deterministic(self):
        first = [case_to_jsonable(c) for c in generate_corpus(seed=0)]
        second = [case_to_jsonable(c) for c in generate_corpus(seed=0)]
        assert first == second

    def test_case_roundtrip(self, chain_topology):
        case = CorpusCase(
            name="tiny", description="roundtrip", seed=9,
            config=SmartSRAConfig(max_gap=60.0, max_duration=300.0),
            topology=chain_topology,
            requests=(Request(0.0, "u", "A"), Request(10.0, "u", "B")))
        pinned = case.with_expected(
            run_engine("serial", EngineContext(
                case.requests, case.topology, case.config)))
        recovered = case_from_jsonable(case_to_jsonable(pinned))
        assert case_to_jsonable(recovered) == case_to_jsonable(pinned)
        assert recovered.expected_digest == pinned.expected_digest

    def test_unknown_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="schema"):
            case_from_jsonable({"schema": 999})

    def test_empty_corpus_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no corpus cases"):
            load_corpus(tmp_path)

    def test_unreadable_case_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="unreadable"):
            load_corpus(tmp_path)


# -- harness -----------------------------------------------------------------


class TestHarness:
    def _tiny_case(self, chain_topology, **overrides):
        defaults = dict(
            name="tiny", description="", seed=0, config=SmartSRAConfig(),
            topology=chain_topology,
            requests=(Request(0.0, "u", "A"), Request(10.0, "u", "B"),
                      Request(1000.0, "u", "A")))
        defaults.update(overrides)
        return CorpusCase(**defaults)

    def test_agreeing_engines_report_ok(self, chain_topology):
        report = run_diffcheck([self._tiny_case(chain_topology)],
                               engines="serial,streaming,parallel-2")
        assert report.ok
        assert report.total_divergences == 0
        assert report.total_violations == 0
        assert "all engines equivalent" in report.render()

    def test_golden_mismatch_is_divergence(self, chain_topology):
        case = self._tiny_case(chain_topology)
        wrong = SessionSet([_session([(0.0, "A"), (10.0, "C")])])
        pinned = case.with_expected(wrong)
        report = run_diffcheck([pinned], engines="serial")
        assert not report.ok
        divergence = report.outcomes[0].divergences[0]
        assert divergence.baseline == "golden"
        assert divergence.user_id == "u"

    def test_divergence_locates_first_differing_session(self, monkeypatch,
                                                        chain_topology):
        # sabotage one engine so the harness has something to catch.
        import repro.diffcheck.engines as engines_module

        def broken(ctx):
            good = engines_module.ENGINE_REGISTRY["serial"](ctx)
            return SessionSet(list(good)[:-1])   # drop the last session

        monkeypatch.setitem(engines_module.ENGINE_REGISTRY, "broken", broken)
        report = run_diffcheck([self._tiny_case(chain_topology)],
                               engines="serial,broken")
        assert not report.ok
        divergence = report.outcomes[0].divergences[0]
        assert divergence.engine == "broken"
        assert divergence.engine_session is None   # engine lost a session
        assert divergence.baseline_session is not None
        assert "broken" in report.render()

    def test_report_serializes(self, chain_topology):
        report = run_diffcheck([self._tiny_case(chain_topology)],
                               engines="serial,streaming")
        document = report.to_dict()
        assert document["ok"] is True
        assert json.dumps(document)
        assert document["cases"][0]["digests"]["serial"]


# -- CLI ---------------------------------------------------------------------

GOLDEN_DIR = str(Path(__file__).resolve().parent.parent
                 / "data" / "diffcheck")


class TestDiffcheckCli:
    def test_golden_corpus_exits_zero(self, capsys):
        from repro.cli import main
        assert main(["diffcheck", "--corpus", GOLDEN_DIR,
                     "--engines", "serial,parallel-2,streaming"]) == 0
        out = capsys.readouterr().out
        assert "all engines equivalent" in out

    def test_json_output_parses(self, capsys):
        from repro.cli import main
        assert main(["diffcheck", "--corpus", GOLDEN_DIR,
                     "--engines", "serial,streaming", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["total_divergences"] == 0

    def test_unknown_engine_is_one_line_error(self, capsys):
        from repro.cli import main
        assert main(["diffcheck", "--corpus", GOLDEN_DIR,
                     "--engines", "warp-drive"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_write_golden_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        target = tmp_path / "golden"
        assert main(["diffcheck", "--write-golden", str(target)]) == 0
        assert main(["diffcheck", "--corpus", str(target),
                     "--engines", "serial,streaming"]) == 0
