"""Late-event, duplicate and reorder handling in the streaming pipeline."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ConfigurationError, LateEventError
from repro.sessions.model import Request
from repro.streaming.pipeline import streaming_phase1, streaming_smart_sra

MIN = 60.0


def _sessions_signature(sessions):
    return sorted((s.user_id, s.pages, s.start_time) for s in sessions)


class TestLatePolicy:
    def test_request_before_flushed_watermark_raises_typed_error(self):
        pipeline = streaming_phase1()
        pipeline.feed(Request(100.0, "u", "A"))
        pipeline.flush(watermark=50.0)
        with pytest.raises(LateEventError, match="predates the flushed "
                                                 "watermark"):
            pipeline.feed(Request(49.0, "v", "B"))

    def test_request_at_watermark_is_legal(self):
        pipeline = streaming_phase1()
        pipeline.feed(Request(100.0, "u", "A"))
        pipeline.flush(watermark=50.0)
        pipeline.feed(Request(50.0, "v", "B"))   # ties are fine
        assert pipeline.stats().fed_requests == 2

    def test_out_of_order_is_a_late_event_error(self):
        pipeline = streaming_phase1()
        pipeline.feed(Request(100.0, "u", "A"))
        with pytest.raises(LateEventError, match="out-of-order"):
            pipeline.feed(Request(50.0, "u", "B"))

    def test_drop_policy_counts_instead_of_raising(self):
        pipeline = streaming_phase1(late_policy="drop")
        pipeline.feed(Request(100.0, "u", "A"))
        assert pipeline.feed(Request(50.0, "u", "B")) == []
        pipeline.flush(watermark=90.0)
        assert pipeline.feed(Request(10.0, "v", "C")) == []
        stats = pipeline.stats()
        assert stats.late_dropped == 2
        assert stats.fed_requests == 1

    def test_equal_timestamp_tie_break_accepted(self):
        pipeline = streaming_phase1()
        pipeline.feed(Request(100.0, "u", "A"))
        pipeline.feed(Request(100.0, "u", "B"))   # equal: legal
        sessions = pipeline.flush()
        assert [s.pages for s in sessions] == [("A", "B")]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="late_policy"):
            streaming_phase1(late_policy="ignore")

    def test_negative_reorder_window_rejected(self):
        with pytest.raises(ConfigurationError, match="reorder_window"):
            streaming_phase1(reorder_window=-1.0)


class TestDeduplication:
    def test_adjacent_duplicate_dropped_and_counted(self):
        pipeline = streaming_phase1(dedup=True)
        pipeline.feed(Request(0.0, "u", "A"))
        pipeline.feed(Request(0.0, "u", "A"))     # double-logged
        pipeline.feed(Request(MIN, "u", "B"))
        sessions = pipeline.flush()
        assert [s.pages for s in sessions] == [("A", "B")]
        assert pipeline.stats().duplicates_dropped == 1

    def test_same_time_different_page_kept(self):
        pipeline = streaming_phase1(dedup=True)
        pipeline.feed(Request(0.0, "u", "A"))
        pipeline.feed(Request(0.0, "u", "B"))
        sessions = pipeline.flush()
        assert [s.pages for s in sessions] == [("A", "B")]
        assert pipeline.stats().duplicates_dropped == 0

    def test_dedup_off_by_default(self):
        pipeline = streaming_phase1()
        pipeline.feed(Request(0.0, "u", "A"))
        pipeline.feed(Request(0.0, "u", "A"))
        sessions = pipeline.flush()
        assert [s.pages for s in sessions] == [("A", "A")]


class TestReorderBuffer:
    def _stream(self, users=6, per_user=8):
        requests = []
        for u in range(users):
            for i in range(per_user):
                requests.append(
                    Request(i * MIN + u, f"u{u}", f"P{i % 4}"))
        requests.sort()
        return requests

    def test_bounded_shuffle_restores_batch_output(self):
        requests = self._stream()
        reference = streaming_phase1()
        expected = reference.feed_many(list(requests))
        expected.extend(reference.flush())

        shuffled = list(requests)
        rng = random.Random(3)
        # bounded disorder: swap neighbours within a 4-position window.
        for index in range(len(shuffled) - 1, 0, -1):
            other = max(0, index - rng.randint(0, 3))
            if abs(shuffled.index(shuffled[index]) - index) <= 4:
                shuffled[index], shuffled[other] = (shuffled[other],
                                                    shuffled[index])
        max_lateness = max(
            (sorted_req.timestamp - shuffled[i].timestamp
             for i, sorted_req in enumerate(requests)), default=0.0)

        pipeline = streaming_phase1(reorder_window=max(MIN * 4,
                                                       max_lateness + 1))
        streamed = pipeline.feed_many(shuffled)
        streamed.extend(pipeline.flush())
        assert _sessions_signature(streamed) == _sessions_signature(expected)

    def test_reorder_output_is_arrival_order_independent(self):
        requests = self._stream(users=4, per_user=6)
        signatures = set()
        for seed in range(5):
            shuffled = list(requests)
            rng = random.Random(seed)
            for index in range(len(shuffled) - 1):
                if rng.random() < 0.5:
                    shuffled[index], shuffled[index + 1] = (
                        shuffled[index + 1], shuffled[index])
            pipeline = streaming_phase1(reorder_window=5 * MIN)
            streamed = pipeline.feed_many(shuffled)
            streamed.extend(pipeline.flush())
            signatures.add(tuple(_sessions_signature(streamed)))
        assert len(signatures) == 1

    def test_request_behind_release_floor_is_late(self):
        pipeline = streaming_phase1(reorder_window=10.0)
        pipeline.feed(Request(0.0, "u", "A"))
        pipeline.feed(Request(100.0, "u", "B"))   # floor is now 90
        with pytest.raises(LateEventError, match="release floor"):
            pipeline.feed(Request(50.0, "u", "C"))

    def test_reorder_buffer_visible_in_stats(self):
        pipeline = streaming_phase1(reorder_window=100.0)
        pipeline.feed(Request(0.0, "u", "A"))
        pipeline.feed(Request(10.0, "u", "B"))
        stats = pipeline.stats()
        assert stats.reorder_buffered == 2
        assert stats.fed_requests == 0            # nothing released yet
        pipeline.flush()
        assert pipeline.stats().reorder_buffered == 0

    def test_flush_watermark_releases_safe_prefix_only(self):
        pipeline = streaming_phase1(reorder_window=100.0)
        pipeline.feed(Request(0.0, "u", "A"))
        pipeline.feed(Request(50.0, "u", "B"))
        pipeline.feed(Request(90.0, "u", "C"))
        pipeline.flush(watermark=60.0)
        stats = pipeline.stats()
        assert stats.fed_requests == 2            # A and B released
        assert stats.reorder_buffered == 1        # C still protected


class TestSmartSRAWithResilience:
    def test_smart_sra_stream_survives_duplicates_and_disorder(
            self, small_site, small_simulation):
        from repro.core.smart_sra import SmartSRA
        log = sorted(small_simulation.log_requests)
        batch = SmartSRA(small_site).reconstruct(log)

        # corrupt the arrival order within a bounded event-time jitter
        # (every request arrives at most 60s "late") and double-log a few
        # requests — the resilient pipeline must still match batch.
        rng = random.Random(5)
        jittered = []
        for request in log:
            delay = rng.uniform(0.0, 60.0) if rng.random() < 0.3 else 0.0
            jittered.append((request.timestamp + delay, request))
            if rng.random() < 0.05:
                jittered.append((request.timestamp + rng.uniform(0.0, 60.0),
                                 request))        # duplicate delivery
        jittered.sort(key=lambda pair: pair[0])
        arrivals = [request for _, request in jittered]

        pipeline = streaming_smart_sra(small_site, late_policy="drop",
                                       reorder_window=120.0, dedup=True)
        streamed = pipeline.feed_many(arrivals)
        streamed.extend(pipeline.flush())
        assert _sessions_signature(streamed) == _sessions_signature(batch)


class TestReorderTieDeterminism:
    """Equal-timestamp ties straddling the release floor (regression).

    The reorder buffer used to release requests *at* the floor eagerly,
    so a tie arriving exactly at the floor could not sort against an
    equal-timestamp peer released moments earlier — the output depended
    on arrival interleaving.  Release is now strictly below the bound:
    a request at the floor is not late yet, so its ties are still due.
    """

    ORDERS = [
        [Request(100.0, "u", "A"), Request(100.0, "u", "B"),
         Request(110.0, "u", "Z")],
        [Request(100.0, "u", "B"), Request(110.0, "u", "Z"),
         Request(100.0, "u", "A")],   # tie arrives exactly at the floor
        [Request(110.0, "u", "Z"), Request(100.0, "u", "B"),
         Request(100.0, "u", "A")],
    ]

    def _run(self, order):
        pipeline = streaming_phase1(reorder_window=10.0)
        emitted = pipeline.feed_many(order)
        emitted.extend(pipeline.flush())
        return _sessions_signature(emitted)

    def test_tie_at_release_floor_is_arrival_order_independent(self):
        signatures = {tuple(map(tuple, self._run(order)))
                      for order in self.ORDERS}
        assert len(signatures) == 1

    def test_tie_at_release_floor_is_not_late(self):
        pipeline = streaming_phase1(reorder_window=10.0)
        pipeline.feed(Request(110.0, "u", "Z"))
        # exactly at the floor (110 - 10): legal, buffered, not late.
        pipeline.feed(Request(100.0, "u", "A"))
        assert pipeline.stats().late_dropped == 0
        assert pipeline.stats().reorder_buffered == 2

    def test_release_at_flush_watermark_holds_ties(self):
        pipeline = streaming_phase1(reorder_window=50.0)
        pipeline.feed(Request(60.0, "u", "B"))
        pipeline.flush(60.0)
        # a tie at the watermark is still legal input; it must sort
        # against the held request instead of trailing it.
        pipeline.feed(Request(60.0, "u", "A"))
        emitted = pipeline.flush()
        assert [s.pages for s in emitted] == [("A", "B")]


class TestEndOfStreamSeal:
    """flush(None) must terminate the stream, not quietly restart it.

    Feeding after the end-of-stream flush used to open a fresh candidate
    where batch processing would have merged the requests — a silent
    divergence.  The final flush now seals the pipeline: later feeds are
    late events under the configured policy.
    """

    def test_feed_after_final_flush_raises(self):
        pipeline = streaming_phase1()
        pipeline.feed(Request(0.0, "u", "A"))
        pipeline.flush()
        with pytest.raises(LateEventError, match="sealed"):
            pipeline.feed(Request(10.0, "u", "B"))

    def test_feed_after_final_flush_drops_under_drop_policy(self):
        pipeline = streaming_phase1(late_policy="drop")
        pipeline.feed(Request(0.0, "u", "A"))
        sealed = pipeline.flush()
        assert [s.pages for s in sealed] == [("A",)]
        assert pipeline.feed(Request(10.0, "u", "B")) == []
        assert pipeline.flush() == []
        assert pipeline.stats().late_dropped == 1

    def test_flush_styles_emit_identical_sessions(self):
        requests = [Request(0.0, "u", "A"), Request(30.0, "u", "B"),
                    Request(700.0, "u", "A"), Request(710.0, "v", "B")]

        def collect(flusher):
            pipeline = streaming_phase1()
            emitted = pipeline.feed_many(requests)
            emitted.extend(flusher(pipeline))
            return _sessions_signature(emitted)

        end_of_stream = collect(lambda p: p.flush())
        explicit_none = collect(lambda p: p.flush(None))
        stepped = collect(lambda p: p.flush(1500.0) + p.flush())
        assert end_of_stream == explicit_none == stepped


class TestStatsReconciliation:
    """StreamingStats must account for every request exactly once."""

    def test_counters_reconcile_throughout_stream_life(self):
        pipeline = streaming_phase1(late_policy="drop", dedup=True,
                                    reorder_window=20.0)
        arrivals = [
            Request(0.0, "u", "A"),
            Request(50.0, "u", "B"),
            Request(45.0, "u", "A"),     # reordered within the window
            Request(50.0, "u", "B"),     # duplicate of the buffered tail
            Request(5.0, "u", "A"),      # hopelessly late -> dropped
            Request(900.0, "u", "C"),    # closes the first candidate
            Request(905.0, "v", "A"),
        ]
        for request in arrivals:
            pipeline.feed(request)
            assert pipeline.stats().reconciles()
        pipeline.flush()
        stats = pipeline.stats()
        assert stats.reconciles()
        assert stats.buffered_requests == 0
        assert stats.closed_requests == stats.fed_requests
        assert stats.late_dropped == 1
        assert stats.duplicates_dropped == 1
        total_in = (stats.fed_requests + stats.late_dropped
                    + stats.duplicates_dropped + stats.reorder_buffered)
        assert total_in == len(arrivals)

    def test_closed_requests_track_finished_candidates(self):
        pipeline = streaming_phase1()
        pipeline.feed(Request(0.0, "u", "A"))
        pipeline.feed(Request(10.0, "u", "B"))
        assert pipeline.stats().closed_requests == 0
        pipeline.feed(Request(5000.0, "u", "C"))   # closes [A, B]
        stats = pipeline.stats()
        assert stats.closed_requests == 2
        assert stats.buffered_requests == 1
        assert stats.reconciles()


class TestGovernedFlushInteraction:
    """Watermark flushes, late events and equal-timestamp boundaries must
    keep their contracts when the governor evicts or spills buffers."""

    def _evicting(self, **overrides):
        from repro.streaming.governor import GovernorConfig
        kwargs = dict(memory_budget=300)
        kwargs.update(overrides)
        return streaming_phase1(governor=GovernorConfig(**kwargs))

    def _fill_until_eviction(self, pipeline):
        """Two-request candidate for u1 (tail t=10), then pressure."""
        pipeline.feed(Request(0.0, "u1", "A"))
        pipeline.feed(Request(10.0, "u1", "B"))
        for index, user in enumerate(["u2", "u3", "u4"]):
            pipeline.feed(Request(11.0 + index, user, "A"))
        assert pipeline.stats().evictions > 0
        return pipeline

    def test_watermark_flush_after_eviction_stays_reconciled(self):
        pipeline = self._fill_until_eviction(self._evicting())
        pipeline.flush(watermark=5000.0)     # closes every open candidate
        stats = pipeline.stats()
        assert stats.buffered_requests == 0
        assert stats.reconciles()
        # the flushed watermark now dominates: older than it is late even
        # for the evicted user whose own watermark was earlier.
        with pytest.raises(LateEventError, match="flushed watermark"):
            pipeline.feed(Request(10.0, "u1", "C"))

    def test_equal_timestamp_at_eviction_watermark_then_flush(self):
        pipeline = self._fill_until_eviction(self._evicting())
        # tie at the eviction watermark starts a fresh candidate (its
        # admission may immediately re-trigger rebalancing) ...
        sessions = pipeline.feed(Request(10.0, "u1", "C"))
        # ... and a later watermark flush closes whatever remains open.
        sessions.extend(pipeline.flush(watermark=10.0 + 1800.0))
        assert ("u1", ("C",), 10.0) in _sessions_signature(sessions)
        assert pipeline.stats().reconciles()

    def test_seal_after_eviction_keeps_late_accounting(self):
        pipeline = self._fill_until_eviction(
            self._evicting(overload_policy="evict"))
        pipeline.flush()                     # seals the stream
        with pytest.raises(LateEventError, match="sealed"):
            pipeline.feed(Request(9999.0, "u1", "C"))
        assert pipeline.stats().reconciles()

    def test_watermark_flush_closes_due_spilled_buffers_from_disk(self,
                                                                  tmp_path):
        from repro.streaming.governor import GovernorConfig, SpillStore
        governor = GovernorConfig(memory_budget=800,
                                  overload_policy="block",
                                  spill_dir=str(tmp_path / "spill"))
        pipeline = streaming_phase1(governor=governor)
        for index in range(12):
            pipeline.feed(Request(float(index), f"u{index % 5}", "A"))
        spilled_before = pipeline.stats().spilled_requests
        assert spilled_before > 0
        # every spilled tail is < 12; a watermark past tail + rho closes
        # them straight from disk without re-entering tracked state.
        tracked_before = pipeline.stats().tracked_bytes
        sessions = pipeline.flush(watermark=12.0 + 600.0 + 1.0)
        stats = pipeline.stats()
        assert stats.spilled_requests == 0
        assert stats.spill_restores > 0
        assert stats.tracked_bytes <= tracked_before
        assert stats.closed_requests >= spilled_before
        assert stats.reconciles()
        assert sum(len(s.requests) for s in sessions) == stats.fed_requests
        assert SpillStore(governor.spill_dir).pending() == 0

    def test_early_watermark_keeps_undue_spilled_buffers_cold(self,
                                                              tmp_path):
        from repro.streaming.governor import GovernorConfig
        governor = GovernorConfig(memory_budget=800,
                                  overload_policy="block",
                                  spill_dir=str(tmp_path / "spill"))
        pipeline = streaming_phase1(governor=governor)
        for index in range(12):
            pipeline.feed(Request(float(index), f"u{index % 5}", "A"))
        spilled_before = pipeline.stats().spilled_requests
        assert spilled_before > 0
        # a watermark within rho of the spilled tails closes nothing cold.
        pipeline.flush(watermark=20.0)
        stats = pipeline.stats()
        assert stats.spilled_requests == spilled_before
        assert stats.reconciles()

    def test_equal_timestamp_restore_boundary(self, tmp_path):
        from repro.streaming.governor import GovernorConfig
        governor = GovernorConfig(memory_budget=800,
                                  overload_policy="block",
                                  spill_dir=str(tmp_path / "spill"))
        pipeline = streaming_phase1(governor=governor)
        for index in range(12):
            pipeline.feed(Request(float(index), f"u{index % 5}", "A"))
        assert pipeline.stats().spill_writes > 0
        # an equal-timestamp request for a spilled user restores the cold
        # buffer and appends as a legal tie, not a late event.
        pipeline.feed(Request(11.0, "u1", "Z"))
        stats = pipeline.stats()
        assert stats.late_dropped == 0
        assert stats.reconciles()
        sessions = pipeline.flush()
        joined = [s for s in sessions
                  if s.user_id == "u1" and "Z" in s.pages]
        assert joined                        # the tie landed in u1's trace
