"""Unit tests for the WebGraph value type."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import TopologyError
from repro.topology.graph import WebGraph


@pytest.fixture()
def diamond():
    """A -> {B, C} -> D with A as the start page."""
    return WebGraph([("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
                    start_pages=["A"])


class TestConstruction:
    def test_basic_counts(self, diamond):
        assert diamond.page_count == 4
        assert diamond.edge_count == 4
        assert diamond.start_pages == {"A"}

    def test_duplicate_edges_collapse(self):
        graph = WebGraph([("A", "B"), ("A", "B")], start_pages=["A"])
        assert graph.edge_count == 1

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError, match="self-loop"):
            WebGraph([("A", "A")], start_pages=["A"])

    def test_rejects_empty_graph(self):
        with pytest.raises(TopologyError, match="at least one page"):
            WebGraph([], start_pages=[])

    def test_rejects_missing_start_pages(self):
        with pytest.raises(TopologyError, match="start page"):
            WebGraph([("A", "B")], start_pages=[])

    def test_rejects_unknown_start_page(self):
        with pytest.raises(TopologyError, match="not present"):
            WebGraph([("A", "B")], start_pages=["Z"])

    def test_rejects_edge_outside_explicit_pages(self):
        with pytest.raises(TopologyError, match="outside"):
            WebGraph([("A", "Z")], pages=["A", "B"], start_pages=["A"])

    def test_isolated_pages_via_explicit_set(self):
        graph = WebGraph([("A", "B")], pages=["A", "B", "C"],
                         start_pages=["A"])
        assert "C" in graph
        assert graph.out_degree("C") == 0


class TestQueries:
    def test_has_link(self, diamond):
        assert diamond.has_link("A", "B")
        assert not diamond.has_link("B", "A")
        assert not diamond.has_link("A", "nope")
        assert not diamond.has_link("nope", "A")

    def test_successors_predecessors(self, diamond):
        assert diamond.successors("A") == {"B", "C"}
        assert diamond.predecessors("D") == {"B", "C"}
        assert diamond.successors("unknown") == frozenset()
        assert diamond.predecessors("unknown") == frozenset()

    def test_degrees(self, diamond):
        assert diamond.out_degree("A") == 2
        assert diamond.in_degree("D") == 2
        assert diamond.out_degree("missing") == 0

    def test_edges_sorted(self, diamond):
        assert list(diamond.edges()) == [
            ("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]

    def test_container_protocol(self, diamond):
        assert "A" in diamond
        assert len(diamond) == 4
        assert list(diamond) == ["A", "B", "C", "D"]

    def test_equality(self, diamond):
        same = WebGraph([("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
                        start_pages=["A"])
        assert diamond == same
        different_start = WebGraph(
            [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
            start_pages=["A", "B"])
        assert diamond != different_start


class TestRestriction:
    def test_induced_subgraph(self, diamond):
        sub = diamond.restricted_to(["A", "B", "D"])
        assert sub.pages == {"A", "B", "D"}
        assert sub.has_link("A", "B")
        assert sub.has_link("B", "D")
        assert not sub.has_link("A", "D")

    def test_unknown_pages_ignored(self, diamond):
        sub = diamond.restricted_to(["A", "XX"])
        assert sub.pages == {"A"}

    def test_empty_restriction_rejected(self, diamond):
        with pytest.raises(TopologyError, match="empty"):
            diamond.restricted_to(["XX"])

    def test_start_pages_promoted_when_lost(self, diamond):
        sub = diamond.restricted_to(["B", "D"])
        assert sub.start_pages == {"B", "D"}


class TestNetworkxInterop:
    def test_roundtrip(self, diamond):
        back = WebGraph.from_networkx(diamond.to_networkx())
        assert back == diamond

    def test_start_attribute_export(self, diamond):
        nx_graph = diamond.to_networkx()
        assert nx_graph.nodes["A"].get("start") is True
        assert "start" not in nx_graph.nodes["B"]

    def test_from_networkx_infers_roots(self):
        nx_graph = nx.DiGraph([("A", "B"), ("B", "C")])
        graph = WebGraph.from_networkx(nx_graph)
        assert graph.start_pages == {"A"}

    def test_from_networkx_all_pages_fallback(self):
        nx_graph = nx.DiGraph([("A", "B"), ("B", "A")])
        graph = WebGraph.from_networkx(nx_graph)
        assert graph.start_pages == {"A", "B"}

    def test_from_networkx_drops_self_loops(self):
        nx_graph = nx.DiGraph([("A", "A"), ("A", "B")])
        graph = WebGraph.from_networkx(nx_graph, start_pages=["A"])
        assert not graph.has_link("A", "A")


class TestFromAdjacency:
    def test_builds_from_mapping(self):
        graph = WebGraph.from_adjacency(
            {"A": ["B", "C"], "B": ["C"]}, start_pages=["A"])
        assert graph.successors("A") == {"B", "C"}
        assert graph.page_count == 3
