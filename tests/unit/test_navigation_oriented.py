"""Unit tests for heur3 — including the paper's Table 2 trace."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, ReconstructionError
from repro.sessions.base import get_heuristic
from repro.sessions.model import Request
from repro.sessions.navigation_oriented import NavigationHeuristic
from repro.topology.graph import WebGraph


def test_paper_table2_trace(fig1_topology, table1_stream):
    """The full §2.2 worked example: the final session must be
    [P1 P20 P1 P13 P49 P13 P34 P23] with the backward movements inserted."""
    sessions = NavigationHeuristic(fig1_topology).reconstruct_user(
        table1_stream)
    assert len(sessions) == 1
    assert sessions[0].pages == (
        "P1", "P20", "P1", "P13", "P49", "P13", "P34", "P23")


def test_paper_table2_inserted_requests_are_synthetic(fig1_topology,
                                                      table1_stream):
    session, = NavigationHeuristic(fig1_topology).reconstruct_user(
        table1_stream)
    flags = [request.synthetic for request in session]
    # positions 2 (P1) and 5 (P13) are the inserted backward movements.
    assert flags == [False, False, True, False, False, True, False, False]


def test_direct_link_appends(fig1_topology):
    stream = [Request(0.0, "u", "P1"), Request(60.0, "u", "P13")]
    sessions = NavigationHeuristic(fig1_topology).reconstruct_user(stream)
    assert [s.pages for s in sessions] == [("P1", "P13")]


def test_unreachable_page_starts_new_session():
    graph = WebGraph([("A", "B")], pages=["A", "B", "Z"], start_pages=["A"])
    stream = [Request(0.0, "u", "A"), Request(60.0, "u", "Z")]
    sessions = NavigationHeuristic(graph).reconstruct_user(stream)
    assert [s.pages for s in sessions] == [("A",), ("Z",)]


def test_backward_walk_ends_at_latest_linker():
    # A -> B -> C, and both A and B link to D.  After [A, B, C] the request
    # for D must back up only to B (the *latest* linker), inserting just C's
    # predecessor B — not all the way to A.
    graph = WebGraph([("A", "B"), ("B", "C"), ("A", "D"), ("B", "D")],
                     start_pages=["A"])
    stream = [Request(0.0, "u", "A"), Request(60.0, "u", "B"),
              Request(120.0, "u", "C"), Request(180.0, "u", "D")]
    sessions = NavigationHeuristic(graph).reconstruct_user(stream)
    assert [s.pages for s in sessions] == [("A", "B", "C", "B", "D")]


def test_no_time_limit_by_default():
    graph = WebGraph([("A", "B")], start_pages=["A"])
    stream = [Request(0.0, "u", "A"), Request(7200.0, "u", "B")]
    sessions = NavigationHeuristic(graph).reconstruct_user(stream)
    assert len(sessions) == 1


def test_optional_max_gap_splits():
    graph = WebGraph([("A", "B")], start_pages=["A"])
    stream = [Request(0.0, "u", "A"), Request(7200.0, "u", "B")]
    sessions = NavigationHeuristic(graph, max_gap=600.0).reconstruct_user(
        stream)
    assert [s.pages for s in sessions] == [("A",), ("B",)]


def test_rejects_nonpositive_max_gap():
    graph = WebGraph([("A", "B")], start_pages=["A"])
    with pytest.raises(ConfigurationError):
        NavigationHeuristic(graph, max_gap=0.0)


def test_pages_outside_topology_become_singletons():
    graph = WebGraph([("A", "B")], start_pages=["A"])
    stream = [Request(0.0, "u", "X"), Request(60.0, "u", "Y")]
    sessions = NavigationHeuristic(graph).reconstruct_user(stream)
    assert [s.pages for s in sessions] == [("X",), ("Y",)]


def test_repeated_page_handled():
    # The log may legitimately repeat a page (e.g. a forced reload).
    graph = WebGraph([("A", "B"), ("B", "A")], start_pages=["A"])
    stream = [Request(0.0, "u", "A"), Request(60.0, "u", "B"),
              Request(120.0, "u", "A")]
    sessions = NavigationHeuristic(graph).reconstruct_user(stream)
    assert [s.pages for s in sessions] == [("A", "B", "A")]


def test_registry_entry_raises_helpfully():
    with pytest.raises(ConfigurationError, match="requires a site topology"):
        get_heuristic("heur3")


def test_unknown_heuristic_lists_names():
    with pytest.raises(ReconstructionError, match="heur1"):
        get_heuristic("definitely-not-registered")
