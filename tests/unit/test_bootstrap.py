"""Unit tests for the bootstrap accuracy confidence intervals."""

from __future__ import annotations

import pytest

from repro.evaluation.bootstrap import bootstrap_accuracy
from repro.exceptions import EvaluationError
from repro.sessions.model import Session, SessionSet


def _s(pages, user):
    return Session.from_pages(pages, user_id=user)


@pytest.fixture()
def half_right():
    """20 users; each has two sessions, exactly one reconstructed."""
    truth = []
    recon = []
    for index in range(20):
        user = f"u{index}"
        truth.append(_s(["A", "B"], user))
        truth.append(_s(["C", "D"], user))
        recon.append(_s(["A", "B"], user))
        recon.append(_s(["X", "Y"], user))
    return SessionSet(truth), SessionSet(recon)


class TestBootstrapAccuracy:
    def test_estimate_matches_full_sample(self, half_right):
        truth, recon = half_right
        interval = bootstrap_accuracy(truth, recon, replicates=100, seed=1)
        assert interval.estimate == 0.5

    def test_interval_contains_estimate(self, half_right):
        truth, recon = half_right
        interval = bootstrap_accuracy(truth, recon, replicates=200, seed=1)
        assert interval.low <= interval.estimate <= interval.high

    def test_degenerate_population_has_zero_width(self, half_right):
        truth, recon = half_right
        # every user contributes identical (1, 2) stats: resampling cannot
        # move the ratio.
        interval = bootstrap_accuracy(truth, recon, replicates=100, seed=2)
        assert interval.width == 0.0

    def test_heterogeneous_population_has_positive_width(self):
        truth = []
        recon = []
        for index in range(20):
            user = f"u{index}"
            truth.append(_s(["A", "B"], user))
            # half the users reconstructed perfectly, half not at all.
            recon.append(_s(["A", "B"] if index % 2 == 0 else ["X"], user))
        interval = bootstrap_accuracy(SessionSet(truth), SessionSet(recon),
                                      replicates=300, seed=3)
        assert interval.width > 0.0
        assert interval.low <= 0.5 <= interval.high

    def test_perfect_reconstruction(self, half_right):
        truth, __ = half_right
        interval = bootstrap_accuracy(truth, truth, replicates=50, seed=1)
        assert interval.estimate == 1.0
        assert interval.low == 1.0
        assert interval.high == 1.0

    def test_deterministic_given_seed(self, half_right):
        truth, recon = half_right
        first = bootstrap_accuracy(truth, recon, replicates=100, seed=7)
        second = bootstrap_accuracy(truth, recon, replicates=100, seed=7)
        assert first == second

    def test_str_rendering(self, half_right):
        truth, recon = half_right
        text = str(bootstrap_accuracy(truth, recon, replicates=50, seed=1))
        assert "[" in text and "@95%" in text

    def test_validation(self, half_right):
        truth, recon = half_right
        with pytest.raises(EvaluationError):
            bootstrap_accuracy(truth, recon, replicates=0)
        with pytest.raises(EvaluationError):
            bootstrap_accuracy(truth, recon, confidence=1.0)
        with pytest.raises(EvaluationError):
            bootstrap_accuracy(SessionSet([]), recon)

    def test_simulation_interval_is_tight_at_scale(self, small_site,
                                                   small_simulation):
        """200 agents already give a CI a few points wide — the empirical
        backing for running benches below the paper's 10k agents."""
        from repro.core.smart_sra import SmartSRA
        sessions = SmartSRA(small_site).reconstruct(
            small_simulation.log_requests)
        interval = bootstrap_accuracy(small_simulation.ground_truth,
                                      sessions, replicates=200, seed=5)
        assert interval.width < 0.12
        assert interval.low <= interval.estimate <= interval.high
