"""Unit tests for the aggregate navigation tree."""

from __future__ import annotations

import pytest

from repro.exceptions import EvaluationError
from repro.mining.navigation_tree import NavigationTree
from repro.sessions.model import Session, SessionSet


def _s(pages, user="u0"):
    return Session.from_pages(pages, user_id=user)


@pytest.fixture()
def shop_tree():
    sessions = SessionSet([
        _s(["home", "list", "item"]),
        _s(["home", "list", "cart"]),
        _s(["home", "about"]),
        _s(["landing"]),
    ])
    return NavigationTree(sessions)


class TestConstruction:
    def test_session_count(self, shop_tree):
        assert shop_tree.session_count == 4

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError):
            NavigationTree(SessionSet([]))
        with pytest.raises(EvaluationError):
            NavigationTree(SessionSet([Session([])]))

    def test_node_count_shares_prefixes(self, shop_tree):
        # home, list, item, cart, about, landing = 6 nodes, not 9 pages.
        assert shop_tree.node_count() == 6


class TestSupport:
    def test_empty_prefix(self, shop_tree):
        assert shop_tree.support([]) == 4

    def test_shared_prefix(self, shop_tree):
        assert shop_tree.support(["home"]) == 3
        assert shop_tree.support(["home", "list"]) == 2

    def test_full_path(self, shop_tree):
        assert shop_tree.support(["home", "list", "cart"]) == 1

    def test_absent_prefix(self, shop_tree):
        assert shop_tree.support(["nope"]) == 0
        assert shop_tree.support(["home", "nope"]) == 0

    def test_prefix_only_counts_from_start(self, shop_tree):
        # "list" occurs in sessions, but never as the FIRST page.
        assert shop_tree.support(["list"]) == 0


class TestContinuations:
    def test_children_with_supports(self, shop_tree):
        assert shop_tree.continuations(["home"]) == {"list": 2, "about": 1}

    def test_leaf_has_none(self, shop_tree):
        assert shop_tree.continuations(["landing"]) == {}

    def test_absent_prefix(self, shop_tree):
        assert shop_tree.continuations(["nope"]) == {}


class TestConversionRate:
    def test_funnel_step(self, shop_tree):
        assert shop_tree.conversion_rate(["home"], "list") \
            == pytest.approx(2 / 3)
        assert shop_tree.conversion_rate(["home", "list"], "cart") == 0.5

    def test_undefined_for_absent_prefix(self, shop_tree):
        with pytest.raises(EvaluationError, match="no session"):
            shop_tree.conversion_rate(["nope"], "x")


class TestFrequentPaths:
    def test_threshold(self, shop_tree):
        paths = dict(shop_tree.frequent_paths(min_support=0.5))
        assert paths == {("home",): 3, ("home", "list"): 2}

    def test_max_depth(self, shop_tree):
        paths = shop_tree.frequent_paths(min_support=0.1, max_depth=1)
        assert all(len(path) == 1 for path, __ in paths)

    def test_sorted_by_support(self, shop_tree):
        paths = shop_tree.frequent_paths(min_support=0.1)
        supports = [support for __, support in paths]
        assert supports == sorted(supports, reverse=True)

    def test_rejects_invalid(self, shop_tree):
        with pytest.raises(EvaluationError):
            shop_tree.frequent_paths(min_support=0.0)
        with pytest.raises(EvaluationError):
            shop_tree.frequent_paths(max_depth=0)


class TestWalkAndRender:
    def test_walk_covers_all_nodes(self, shop_tree):
        paths = dict(shop_tree.walk())
        assert len(paths) == shop_tree.node_count()
        assert paths[("home",)] == 3

    def test_render_shows_supports(self, shop_tree):
        text = shop_tree.render()
        assert "(root) 4 sessions" in text
        assert "home (3)" in text
        assert "list (2)" in text

    def test_render_min_support_hides(self, shop_tree):
        text = shop_tree.render(min_support=2)
        assert "about" not in text

    def test_render_depth_limits(self, shop_tree):
        text = shop_tree.render(max_depth=1)
        assert "list" not in text


class TestAgainstSequentialMiner:
    def test_tree_supports_match_prefix_counts(self, small_simulation):
        """Cross-check: tree support of a 1-path == number of sessions
        starting with that page."""
        truth = small_simulation.ground_truth
        tree = NavigationTree(truth)
        from collections import Counter
        first_pages = Counter(s.pages[0] for s in truth if s)
        for page, count in first_pages.most_common(5):
            assert tree.support([page]) == count
