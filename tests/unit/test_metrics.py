"""Unit tests for the accuracy metrics (any-capture and one-to-one)."""

from __future__ import annotations

import pytest

from repro.evaluation.metrics import (
    evaluate_reconstruction,
    real_accuracy,
    session_captured,
)
from repro.exceptions import EvaluationError
from repro.sessions.model import Session, SessionSet


def _s(pages, user="u0"):
    return Session.from_pages(pages, user_id=user)


class TestSessionCaptured:
    def test_captured_by_superset(self):
        assert session_captured(_s(["A", "B"]), [_s(["X", "A", "B", "Y"])])

    def test_not_captured_when_interrupted(self):
        assert not session_captured(_s(["A", "B"]), [_s(["A", "X", "B"])])

    def test_empty_pool(self):
        assert not session_captured(_s(["A"]), [])


class TestAnyCapture:
    def test_perfect_reconstruction(self):
        truth = SessionSet([_s(["A", "B"]), _s(["C"])])
        assert real_accuracy(truth, truth) == 1.0

    def test_one_giant_session_captures_everything(self):
        truth = SessionSet([_s(["A", "B"]), _s(["C", "D"])])
        giant = SessionSet([_s(["A", "B", "C", "D"])])
        assert real_accuracy(truth, giant) == 1.0

    def test_fragmented_reconstruction_misses(self):
        truth = SessionSet([_s(["A", "B"])])
        fragments = SessionSet([_s(["A"]), _s(["B"])])
        assert real_accuracy(truth, fragments) == 0.0

    def test_user_boundary_respected(self):
        truth = SessionSet([_s(["A", "B"], user="alice")])
        other_user = SessionSet([_s(["A", "B"], user="bob")])
        assert real_accuracy(truth, other_user) == 0.0
        assert real_accuracy(truth, other_user,
                             match_within_user=False) == 1.0

    def test_empty_truth_rejected(self):
        with pytest.raises(EvaluationError):
            real_accuracy(SessionSet([]), SessionSet([_s(["A"])]))


class TestOneToOneMatching:
    def test_giant_session_credits_only_one(self):
        truth = SessionSet([_s(["A", "B"]), _s(["C", "D"])])
        giant = SessionSet([_s(["A", "B", "C", "D"])])
        report = evaluate_reconstruction("h", truth, giant)
        assert report.captured == 2
        assert report.matched == 1
        assert report.matched_accuracy == 0.5

    def test_distinct_sessions_credit_each(self):
        truth = SessionSet([_s(["A", "B"]), _s(["C", "D"])])
        split = SessionSet([_s(["A", "B"]), _s(["C", "D"])])
        report = evaluate_reconstruction("h", truth, split)
        assert report.matched == 2

    def test_matching_finds_augmenting_assignment(self):
        # H1 captures both R1 and R2; H2 captures only R1.  A greedy
        # assignment of H1->R1 would strand R2; maximum matching must
        # credit both (H2->R1, H1->R2).
        truth = SessionSet([_s(["A"]), _s(["B"])])
        pool = SessionSet([_s(["A", "B"]), _s(["X", "A"])])
        report = evaluate_reconstruction("h", truth, pool)
        assert report.matched == 2

    def test_duplicate_real_sessions_need_duplicate_captures(self):
        truth = SessionSet([_s(["A"]), _s(["A"])])
        single = SessionSet([_s(["A"])])
        report = evaluate_reconstruction("h", truth, single)
        assert report.captured == 2
        assert report.matched == 1


class TestReportDiagnostics:
    def test_exact_counts_verbatim_matches(self):
        truth = SessionSet([_s(["A", "B"]), _s(["C"])])
        pool = SessionSet([_s(["A", "B"]), _s(["X", "C"])])
        report = evaluate_reconstruction("h", truth, pool)
        assert report.exact == 1
        assert report.captured == 2

    def test_precision(self):
        truth = SessionSet([_s(["A", "B"])])
        pool = SessionSet([_s(["A", "B"]), _s(["Z", "Q"])])
        report = evaluate_reconstruction("h", truth, pool)
        assert report.productive == 1
        assert report.precision == 0.5

    def test_precision_empty_pool(self):
        truth = SessionSet([_s(["A"])])
        report = evaluate_reconstruction("h", truth, SessionSet([]))
        assert report.precision == 0.0
        assert report.accuracy == 0.0

    def test_mean_lengths(self):
        truth = SessionSet([_s(["A", "B"])])
        pool = SessionSet([_s(["A", "B", "C", "D"])])
        report = evaluate_reconstruction("h", truth, pool)
        assert report.mean_real_length == 2.0
        assert report.mean_reconstructed_length == 4.0

    def test_heuristic_name_recorded(self):
        truth = SessionSet([_s(["A"])])
        report = evaluate_reconstruction("my-heuristic", truth, truth)
        assert report.heuristic == "my-heuristic"


class TestEmptyCorpusEvaluation:
    """Zero-denominator paths must return defined values (regression).

    ``accuracy``/``matched_accuracy`` used to raise on a report with no
    ground-truth sessions, which turned an empty evaluation corpus into
    a crash deep inside sweep/diffcheck plumbing.  They are vacuously
    1.0 now (nothing to recover, nothing missed); the strict default of
    ``evaluate_reconstruction`` still rejects an empty ground truth so
    upstream mistakes stay loud.
    """

    def test_accuracies_defined_on_empty_truth(self):
        report = evaluate_reconstruction(
            "h", SessionSet([]), SessionSet([]), allow_empty=True)
        assert report.total_real == 0
        assert report.accuracy == 1.0
        assert report.matched_accuracy == 1.0
        assert report.precision == 0.0

    def test_spurious_output_shows_in_precision_not_accuracy(self):
        report = evaluate_reconstruction(
            "h", SessionSet([]), SessionSet([_s(["A", "B"])]),
            allow_empty=True)
        assert report.accuracy == 1.0          # vacuous: no real sessions
        assert report.reconstructed_count == 1
        assert report.precision == 0.0         # the junk is still visible

    def test_empty_reconstruction_against_real_truth(self):
        report = evaluate_reconstruction(
            "h", SessionSet([_s(["A", "B"])]), SessionSet([]))
        assert report.accuracy == 0.0
        assert report.matched_accuracy == 0.0
        assert report.precision == 0.0

    def test_empty_truth_still_rejected_by_default(self):
        with pytest.raises(EvaluationError):
            evaluate_reconstruction("h", SessionSet([]), SessionSet([]))

    def test_report_roundtrip_keeps_vacuous_values(self):
        report = evaluate_reconstruction(
            "h", SessionSet([]), SessionSet([]), allow_empty=True)
        from repro.evaluation.metrics import AccuracyReport
        recovered = AccuracyReport.from_dict(report.to_dict())
        assert recovered.accuracy == 1.0
