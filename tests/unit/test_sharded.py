"""Unit tests for the crash-safe sharded streaming runtime.

Covers the pure pieces in isolation — the wire protocol, the replay
log, the state capsule, the ledger, the config audit — plus small
end-to-end runs of the runtime itself (fault-free, shed-shard and
raise policies).  The heavy kill/wedge failover scenarios live in
``tests/integration/test_sharded_failover.py``.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.exceptions import (ConfigurationError, ExecutionError,
                              WireProtocolError)
from repro.obs import Registry
from repro.sessions.model import Request, SessionSet
from repro.streaming import (ShardedConfig, ShardedStreamingRuntime,
                             audit_sharded_config, shard_for,
                             streaming_smart_sra)
from repro.streaming.governor import GovernorConfig
from repro.streaming.sharded import (ReplayLog, ShardLedger, capsule_from,
                                     restore_capsule)
from repro.streaming import wire
from repro.topology.generators import random_site


class TestWireProtocol:

    def test_event_roundtrip_interns_symbols_once(self):
        encoder = wire.SymbolEncoder()
        out = bytearray()
        encoder.encode_event(out, 10.0, "alice", "/a", None, False)
        encoder.encode_event(out, 11.0, "alice", "/b", "/a", True)
        encoder.encode_event(out, 12.0, "alice", "/a", "/b", False)
        decoder = wire.SymbolDecoder()
        events = []
        reader = wire.FrameReader()
        for kind, payload in reader.feed(bytes(out)):
            if kind == wire.SYM:
                decoder.add_symbol(payload)
            else:
                assert kind == wire.EVT
                events.append(decoder.decode_event(payload))
        assert events == [(10.0, "alice", "/a", None, False),
                          (11.0, "alice", "/b", "/a", True),
                          (12.0, "alice", "/a", "/b", False)]
        # three distinct strings -> exactly three SYM definitions.
        assert len(decoder) == len(encoder) == 3

    def test_reader_reassembles_frames_split_across_chunks(self):
        payloads = [wire.json_frame(wire.ACK, {"ordinal": 7}),
                    wire.watermark_frame(42.5),
                    wire.frame(wire.EOF)]
        stream = b"".join(payloads)
        reader = wire.FrameReader()
        frames = []
        for i in range(0, len(stream), 3):     # pathological chunking
            frames.extend(reader.feed(stream[i:i + 3]))
        assert [kind for kind, _ in frames] == [wire.ACK, wire.WM, wire.EOF]
        assert wire.decode_json(frames[0][1]) == {"ordinal": 7}
        assert wire.decode_watermark(frames[1][1]) == 42.5
        assert reader.pending_bytes == 0

    def test_unknown_kind_and_bad_payloads_are_protocol_errors(self):
        with pytest.raises(WireProtocolError):
            list(wire.FrameReader().feed(wire.frame(99)))
        with pytest.raises(WireProtocolError):
            wire.decode_json(b"\xff not json")
        with pytest.raises(WireProtocolError):
            wire.decode_watermark(b"\x00" * 3)
        with pytest.raises(WireProtocolError):
            wire.SymbolDecoder().decode_event(b"\x00" * 21)

    def test_infinite_watermark_survives_the_wire(self):
        _, payload = next(iter(
            wire.FrameReader().feed(wire.watermark_frame(math.inf))))
        assert wire.decode_watermark(payload) == math.inf


class TestShardRouter:

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ConfigurationError):
            shard_for("alice", 0)

    def test_routing_is_stable_and_hashseed_independent(self):
        # pinned values: a PYTHONHASHSEED-dependent router would break
        # replay-log recovery across coordinator restarts.
        assert shard_for("alice", 2) == shard_for("alice", 2)
        assert shard_for("192.168.0.1", 4) in range(4)
        assert shard_for("anything", 1) == 0


class TestShardedConfig:

    def test_defaults_validate(self):
        config = ShardedConfig()
        assert config.shards == 2
        assert config.on_shard_failure == "failover"

    @pytest.mark.parametrize("overrides", [
        {"shards": 0},
        {"on_shard_failure": "panic"},
        {"ack_interval": 0},
        {"lease": 0.0},
        {"replay_capacity": 8, "ack_interval": 16},
        {"max_watermark_lag": 0.0},
    ])
    def test_degenerate_configs_are_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            ShardedConfig(**overrides)


class TestShardLedger:

    def test_route_ack_retires_pending(self):
        ledger = ShardLedger(2)
        for _ in range(5):
            assert ledger.route(0)
        ledger.ack(0, 3)
        assert ledger.pending(0) == 2
        assert ledger.routed == 5 and ledger.fed == 5
        assert ledger.reconciles()

    def test_fail_moves_pending_to_replayed_once(self):
        ledger = ShardLedger(1)
        for _ in range(4):
            ledger.route(0)
        assert ledger.fail(0) == 4
        # a second failover of the same pending window moves nothing new.
        assert ledger.fail(0) == 0
        assert (ledger.routed, ledger.replayed) == (0, 4)
        assert ledger.reconciles()

    def test_shed_shard_drops_pending_and_future_events(self):
        ledger = ShardLedger(2)
        ledger.route(0)
        ledger.route(1)
        ledger.fail(1)
        assert ledger.shed_shard(1) == 1
        assert not ledger.route(1)       # future events shed on arrival
        assert ledger.shed == 2
        assert ledger.reconciles()

    def test_overacking_is_an_execution_error(self):
        ledger = ShardLedger(1)
        ledger.route(0)
        with pytest.raises(ExecutionError):
            ledger.ack(0, 2)


class TestReplayLog:

    def test_append_ack_trims_to_the_boundary(self):
        log = ReplayLog(0, capacity=8)
        for ordinal in range(1, 6):
            assert log.append_event(ordinal, float(ordinal), "u", "/p",
                                    None, False)
        log.append_watermark(1, 3.0)
        assert log.event_count == 5
        trimmed = log.ack(3, 1, capsule={"schema": 1})
        assert trimmed == 3
        assert log.event_count == 2
        assert log.base_ordinal == 3 and log.base_wm == 1
        assert log.capsule == {"schema": 1}

    def test_capacity_refuses_further_events(self):
        log = ReplayLog(0, capacity=2)
        assert log.append_event(1, 1.0, "u", "/p", None, False)
        assert log.append_event(2, 2.0, "u", "/p", None, False)
        assert not log.append_event(3, 3.0, "u", "/p", None, False)
        assert log.event_count == 2

    def test_persist_and_recover_roundtrip(self, tmp_path):
        log = ReplayLog(3, capacity=8, directory=str(tmp_path))
        log.append_event(1, 1.0, "u", "/p", None, False)
        log.ack(1, 0, capsule={"schema": 1, "ordinal": 1})
        log.append_event(2, 2.0, "u", "/q", "/p", True)
        log.persist()
        capsule, entries = log.recover()
        assert capsule == {"schema": 1, "ordinal": 1}
        assert entries == [["evt", 2, 2.0, "u", "/q", "/p", True]]
        assert log.integrity_failures == 0

    def test_corrupt_disk_copy_falls_back_to_memory(self, tmp_path):
        log = ReplayLog(0, capacity=8, directory=str(tmp_path))
        log.append_event(1, 1.0, "u", "/p", None, False)
        path = log.persist()
        document = json.loads(open(path, encoding="utf-8").read())
        document["entries"] = []             # tamper without re-sealing
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        capsule, entries = log.recover()
        assert entries == [["evt", 1, 1.0, "u", "/p", None, False]]
        assert log.integrity_failures == 1


class TestStateCapsule:

    def _stream(self):
        return [Request(t * 30.0, f"u{t % 3}", f"P{t % 5}")
                for t in range(40)]

    def test_restored_pipeline_continues_identically(self):
        topology = random_site(n_pages=30, avg_out_degree=4.0, seed=1)
        governor = GovernorConfig(memory_budget=1 << 30, per_user_cap=8)
        stream = self._stream()
        reference = streaming_smart_sra(topology, governor=governor,
                                        registry=Registry())
        sessions = reference.feed_many(stream)
        sessions.extend(reference.flush())

        first = streaming_smart_sra(topology, governor=governor,
                                    registry=Registry())
        half = first.feed_many(stream[:20])
        capsule = capsule_from(first)
        second = streaming_smart_sra(topology, governor=governor,
                                     registry=Registry())
        restore_capsule(second, capsule)
        resumed = half + second.feed_many(stream[20:])
        resumed.extend(second.flush())
        assert (SessionSet(resumed).canonical_digest()
                == SessionSet(sessions).canonical_digest())
        assert second.stats() == reference.stats()


class TestShardedAudit:

    def test_more_shards_than_cores_warns(self):
        audit = audit_sharded_config(ShardedConfig(shards=512))
        assert any(level == "warn" and "CPU core" in message
                   for level, message in audit.checks)
        assert audit.ok                     # warnings stay advisory

    def test_replay_log_smaller_than_governor_budget_warns(self):
        audit = audit_sharded_config(
            ShardedConfig(shards=1, replay_capacity=256),
            GovernorConfig(memory_budget=1 << 20))
        assert any(level == "warn" and "replay capacity" in message
                   and "--replay-capacity" in message
                   for level, message in audit.checks)

    def test_shed_shard_with_blocking_governor_warns(self):
        audit = audit_sharded_config(
            ShardedConfig(shards=1, on_shard_failure="shed-shard"),
            GovernorConfig(memory_budget=1 << 20, overload_policy="block",
                           spill_dir="/tmp"))
        assert any(level == "warn" and "deadlock-prone" in message
                   for level, message in audit.checks)

    def test_benign_config_is_all_ok(self):
        audit = audit_sharded_config(
            ShardedConfig(shards=1, replay_capacity=1 << 16),
            GovernorConfig(memory_budget=1 << 10))
        assert audit.ok
        assert all(level == "ok" for level, _ in audit.checks)
        assert audit.to_dict()["ok"] is True
        assert "verdict: ok" in audit.render()

    def test_sub_poll_lease_fails(self):
        audit = audit_sharded_config(ShardedConfig(lease=0.01))
        assert not audit.ok


@pytest.fixture(scope="module")
def sharded_world():
    topology = random_site(n_pages=40, avg_out_degree=4.0, seed=11)
    requests = []
    clock = 0.0
    for i in range(400):
        clock += 7.0
        requests.append(Request(clock, f"user{i % 17}", f"P{i % 11}"))
    return topology, requests


class TestShardedRuntime:

    def _serial_digest(self, topology, requests):
        pipeline = streaming_smart_sra(
            topology, governor=GovernorConfig(memory_budget=1 << 30),
            registry=Registry())
        sessions = pipeline.feed_many(requests)
        sessions.extend(pipeline.flush())
        return SessionSet(sessions).canonical_digest()

    def test_fault_free_run_matches_serial(self, sharded_world):
        topology, requests = sharded_world
        runtime = ShardedStreamingRuntime(
            topology, sharded=ShardedConfig(shards=2, ack_interval=16),
            registry=Registry())
        result = runtime.run(requests, flush_interval=300.0)
        assert result.stats.reconciles()
        assert result.stats.fed == len(requests)
        assert result.stats.failovers == 0
        assert (result.sessions.canonical_digest()
                == self._serial_digest(topology, requests))
        assert len(result.shard_stats) == 2

    def test_single_shard_degenerates_to_serial(self, sharded_world):
        topology, requests = sharded_world
        runtime = ShardedStreamingRuntime(
            topology, sharded=ShardedConfig(shards=1, ack_interval=16),
            registry=Registry())
        result = runtime.run(requests)
        assert (result.sessions.canonical_digest()
                == self._serial_digest(topology, requests))

    def test_requires_topology_for_smart_sra(self):
        with pytest.raises(ConfigurationError):
            ShardedStreamingRuntime(None)

    def test_rejects_unknown_heuristic(self, sharded_world):
        with pytest.raises(ConfigurationError):
            ShardedStreamingRuntime(sharded_world[0], heuristic="psychic")
