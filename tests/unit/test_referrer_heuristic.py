"""Unit tests for the referrer-based heuristic (Combined Log Format)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.sessions.model import Request
from repro.sessions.referrer import ReferrerHeuristic


def _req(t, page, referrer=None, user="u"):
    return Request(t, user, page, referrer=referrer)


class TestChaining:
    def test_follows_referrer_chain(self):
        stream = [_req(0, "A"), _req(60, "B", "A"), _req(120, "C", "B")]
        sessions = ReferrerHeuristic().reconstruct_user(stream)
        assert [s.pages for s in sessions] == [("A", "B", "C")]

    def test_no_referrer_starts_new_session(self):
        stream = [_req(0, "A"), _req(60, "B", "A"), _req(120, "S")]
        sessions = ReferrerHeuristic().reconstruct_user(stream)
        assert {s.pages for s in sessions} == {("A", "B"), ("S",)}

    def test_interleaved_sessions_untangled(self):
        # Two logical sessions interleave in time — the referrer field
        # untangles what no reactive heuristic could.
        stream = [
            _req(0, "A"), _req(30, "X"),
            _req(60, "B", "A"), _req(90, "Y", "X"),
            _req(120, "C", "B"), _req(150, "Z", "Y"),
        ]
        sessions = ReferrerHeuristic().reconstruct_user(stream)
        assert {s.pages for s in sessions} == {("A", "B", "C"),
                                               ("X", "Y", "Z")}

    def test_most_recent_matching_session_wins(self):
        # Both open sessions end on A (same page reached twice is not
        # possible in simulated logs but happens in real ones); the most
        # recently active one gets the extension.
        stream = [_req(0, "A"), _req(10, "A"), _req(20, "B", "A")]
        sessions = ReferrerHeuristic().reconstruct_user(stream)
        assert sorted(s.pages for s in sessions) == [("A",), ("A", "B")]


class TestCacheRecovery:
    def test_visited_referrer_becomes_synthetic_landing(self):
        # log: A, B(ref A), C(ref A) — after A->B the user went *back* to A
        # (cache) and branched to C.  The heuristic must rebuild [A, C].
        stream = [_req(0, "A"), _req(60, "B", "A"), _req(120, "C", "A")]
        sessions = ReferrerHeuristic().reconstruct_user(stream)
        assert {s.pages for s in sessions} == {("A", "B"), ("A", "C")}
        branched = next(s for s in sessions if s.pages == ("A", "C"))
        assert branched[0].synthetic is True
        assert branched[1].synthetic is False

    def test_unknown_referrer_is_external_entry(self):
        stream = [_req(0, "B", "external-search")]
        sessions = ReferrerHeuristic().reconstruct_user(stream)
        assert [s.pages for s in sessions] == [("B",)]
        assert sessions[0][0].synthetic is False


class TestTimeBound:
    def test_stale_sessions_retire(self):
        stream = [_req(0, "A"), _req(2000, "B", "A")]
        sessions = ReferrerHeuristic(max_gap=600).reconstruct_user(stream)
        # gap of 2000s > 600s: the A-session retired; B's referrer A is in
        # the visited set, so B starts a cache-recovered session [A*, B].
        assert {s.pages for s in sessions} == {("A",), ("A", "B")}

    def test_rejects_nonpositive_gap(self):
        with pytest.raises(ConfigurationError):
            ReferrerHeuristic(max_gap=0)


class TestSimulationAccuracy:
    def test_near_oracle_on_simulated_logs(self, small_site,
                                           small_simulation):
        from repro.evaluation.metrics import evaluate_reconstruction
        sessions = ReferrerHeuristic().reconstruct(
            small_simulation.log_requests)
        report = evaluate_reconstruction(
            "referrer", small_simulation.ground_truth, sessions)
        # the Referer field nearly closes the reactive gap.
        assert report.accuracy > 0.95
        assert report.matched_accuracy > 0.80

    def test_beats_smart_sra(self, small_site, small_simulation):
        from repro.core.smart_sra import SmartSRA
        from repro.evaluation.metrics import evaluate_reconstruction
        referrer = evaluate_reconstruction(
            "referrer", small_simulation.ground_truth,
            ReferrerHeuristic().reconstruct(small_simulation.log_requests))
        smart = evaluate_reconstruction(
            "heur4", small_simulation.ground_truth,
            SmartSRA(small_site).reconstruct(small_simulation.log_requests))
        assert referrer.matched_accuracy > smart.matched_accuracy
