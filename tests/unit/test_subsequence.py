"""Unit tests for the ⊏ capture relation (substring search)."""

from __future__ import annotations

from repro.evaluation.subsequence import (
    SubsequenceIndex,
    contains,
    failure_function,
    find,
)


class TestPaperExamples:
    def test_captured_example(self):
        # §5.1: R = [P1,P3,P5] ⊏ H = [P9,P1,P3,P5,P8].
        assert contains(["P9", "P1", "P3", "P5", "P8"], ["P1", "P3", "P5"])

    def test_interrupted_example(self):
        # §5.1: P9 interrupts R in H, so R ⋢ H.
        assert not contains(["P1", "P9", "P3", "P5", "P8"],
                            ["P1", "P3", "P5"])


class TestFind:
    def test_finds_first_occurrence(self):
        assert find(["a", "b", "a", "b"], ["a", "b"]) == 0

    def test_finds_at_end(self):
        assert find(["x", "y", "a", "b"], ["a", "b"]) == 2

    def test_absent(self):
        assert find(["a", "b"], ["b", "a"]) == -1

    def test_empty_needle_matches_at_zero(self):
        assert find(["a"], []) == 0
        assert find([], []) == 0

    def test_needle_longer_than_haystack(self):
        assert find(["a"], ["a", "b"]) == -1

    def test_whole_match(self):
        assert find(["a", "b"], ["a", "b"]) == 0

    def test_repetitive_patterns(self):
        # classic KMP stress: needle with strong self-overlap.
        haystack = ["a"] * 5 + ["b"] + ["a"] * 6 + ["b"]
        needle = ["a"] * 6 + ["b"]
        assert find(haystack, needle) == 6

    def test_single_symbol(self):
        assert find(["x", "y", "z"], ["y"]) == 1
        assert find(["x", "y", "z"], ["w"]) == -1


class TestFailureFunction:
    def test_no_overlap(self):
        assert failure_function(["a", "b", "c"]) == [0, 0, 0]

    def test_full_overlap(self):
        assert failure_function(["a", "a", "a"]) == [0, 1, 2]

    def test_partial_overlap(self):
        assert failure_function(["a", "b", "a", "b", "c"]) == [0, 0, 1, 2, 0]

    def test_empty(self):
        assert failure_function([]) == []


class TestContains:
    def test_works_on_tuples(self):
        assert contains(("A", "B", "C"), ("B", "C"))

    def test_order_matters(self):
        assert not contains(("A", "B", "C"), ("C", "B"))


class TestSubsequenceIndex:
    CORPUS = [("P9", "P1", "P3", "P5", "P8"),   # captures [P1,P3,P5]
              ("P1", "P9", "P3", "P5", "P8"),   # interrupted — no capture
              ("P1", "P3", "P5"),               # exact match
              ()]                               # empty haystack

    def test_find_all_matches_linear_scan(self):
        index = SubsequenceIndex(self.CORPUS)
        needle = ("P1", "P3", "P5")
        expected = [i for i, hay in enumerate(self.CORPUS)
                    if contains(hay, needle)]
        assert index.find_all(needle) == expected == [0, 2]

    def test_absent_symbol_short_circuits(self):
        index = SubsequenceIndex(self.CORPUS)
        assert index.find_all(("P1", "P77")) == []

    def test_empty_needle_matches_every_sequence(self):
        index = SubsequenceIndex(self.CORPUS)
        assert index.find_all(()) == [0, 1, 2, 3]

    def test_contains_any(self):
        index = SubsequenceIndex(self.CORPUS)
        assert index.contains_any(("P3", "P5", "P8"))
        assert not index.contains_any(("P8", "P5"))

    def test_duplicate_anchor_positions_dedupe_hits(self):
        # the anchor symbol occurs twice in one haystack; the haystack
        # must still be reported once.
        index = SubsequenceIndex([("a", "b", "a", "b")])
        assert index.find_all(("a", "b")) == [0]

    def test_len_and_sequences(self):
        index = SubsequenceIndex(self.CORPUS)
        assert len(index) == 4
        assert index.sequences == list(self.CORPUS)

    def test_accepts_lists(self):
        index = SubsequenceIndex([["x", "y"], ["y", "x"]])
        assert index.find_all(["y", "x"]) == [1]
