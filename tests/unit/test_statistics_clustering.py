"""Unit tests for session statistics and session clustering."""

from __future__ import annotations

import pytest

from repro.evaluation.statistics import describe, render_statistics
from repro.exceptions import EvaluationError
from repro.mining.clustering import cluster_sessions, jaccard
from repro.sessions.model import Session, SessionSet


def _s(pages, user="u0", start=0.0, gap=120.0):
    return Session.from_pages(pages, user_id=user, start=start, gap=gap)


@pytest.fixture()
def profiled():
    return SessionSet([
        _s(["home", "a", "b"], user="u1"),
        _s(["home", "a"], user="u1", gap=60.0),
        _s(["home"], user="u2"),
    ])


class TestDescribe:
    def test_basic_counts(self, profiled):
        stats = describe(profiled)
        assert stats.session_count == 3
        assert stats.user_count == 2
        assert stats.total_requests == 6
        assert stats.mean_length == 2.0
        assert stats.median_length == 2.0
        assert stats.max_length == 3

    def test_length_histogram(self, profiled):
        stats = describe(profiled)
        assert stats.length_histogram == {1: 1, 2: 1, 3: 1}

    def test_durations_and_gaps(self, profiled):
        stats = describe(profiled)
        assert stats.max_duration == 240.0
        # gaps: 120, 120 (first session), 60 (second) -> mean 100.
        assert stats.mean_gap == pytest.approx(100.0)

    def test_top_pages(self, profiled):
        stats = describe(profiled, top=2)
        assert stats.top_pages[0] == ("home", 3)
        assert stats.top_entry_pages[0] == ("home", 3)

    def test_entropy_zero_for_single_page(self):
        stats = describe(SessionSet([_s(["only"])]))
        assert stats.page_entropy == 0.0

    def test_entropy_maximal_for_uniform(self):
        stats = describe(SessionSet([_s(["a"]), _s(["b"]),
                                     _s(["c"]), _s(["d"])]))
        assert stats.page_entropy == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError):
            describe(SessionSet([]))
        with pytest.raises(EvaluationError):
            describe(SessionSet([Session([])]))

    def test_rejects_bad_top(self, profiled):
        with pytest.raises(EvaluationError):
            describe(profiled, top=0)

    def test_render_contains_key_lines(self, profiled):
        text = render_statistics(describe(profiled))
        assert "sessions:" in text
        assert "length histogram:" in text
        assert "home" in text

    def test_ground_truth_stay_time_matches_table5(self, small_simulation):
        """The simulator's empirical page-stay time must track the
        configured Table 5 distribution (2.2 +/- 0.5 min)."""
        stats = describe(small_simulation.ground_truth)
        assert 2.0 * 60 < stats.mean_gap < 2.4 * 60


class TestJaccard:
    def test_identical(self):
        assert jaccard(frozenset("ab"), frozenset("ab")) == 1.0

    def test_disjoint(self):
        assert jaccard(frozenset("ab"), frozenset("cd")) == 0.0

    def test_partial(self):
        assert jaccard(frozenset("ab"), frozenset("bc")) == pytest.approx(
            1 / 3)

    def test_both_empty(self):
        assert jaccard(frozenset(), frozenset()) == 1.0


class TestClustering:
    @pytest.fixture()
    def two_interest_groups(self):
        sports = [_s(["sports", "scores", "teams"], user=f"s{i}")
                  for i in range(5)]
        cooking = [_s(["recipes", "kitchen", "tips"], user=f"c{i}")
                   for i in range(4)]
        return SessionSet(sports + cooking)

    def test_separates_interest_groups(self, two_interest_groups):
        clusters = cluster_sessions(two_interest_groups, similarity=0.5)
        assert len(clusters) == 2
        assert len(clusters[0]) == 5
        assert len(clusters[1]) == 4

    def test_profiles_reflect_member_pages(self, two_interest_groups):
        clusters = cluster_sessions(two_interest_groups, similarity=0.5)
        assert set(clusters[0].profile_pages) == {"sports", "scores",
                                                  "teams"}

    def test_low_similarity_merges_overlapping(self):
        sessions = SessionSet([_s(["a", "b"]), _s(["b", "c"]),
                               _s(["c", "a"])])
        clusters = cluster_sessions(sessions, similarity=0.01)
        assert len(clusters) == 1

    def test_disjoint_never_merge(self):
        sessions = SessionSet([_s(["a", "b"]), _s(["c", "d"])])
        clusters = cluster_sessions(sessions, similarity=0.01)
        assert len(clusters) == 2

    def test_high_similarity_isolates(self):
        sessions = SessionSet([_s(["a", "b"]), _s(["b", "c"])])
        clusters = cluster_sessions(sessions, similarity=1.0)
        assert len(clusters) == 2

    def test_min_cluster_size_filters(self, two_interest_groups):
        lonely = SessionSet(list(two_interest_groups)
                            + [_s(["weird", "outlier"])])
        clusters = cluster_sessions(lonely, similarity=0.5,
                                    min_cluster_size=2)
        assert all(len(cluster) >= 2 for cluster in clusters)

    def test_deterministic(self, two_interest_groups):
        first = cluster_sessions(two_interest_groups, similarity=0.5)
        second = cluster_sessions(two_interest_groups, similarity=0.5)
        assert [c.sessions for c in first] == [c.sessions for c in second]

    def test_labels_follow_size_order(self, two_interest_groups):
        clusters = cluster_sessions(two_interest_groups, similarity=0.5)
        assert [cluster.label for cluster in clusters] == [0, 1]

    @pytest.mark.parametrize("kwargs", [
        {"similarity": 0.0}, {"similarity": 1.5}, {"min_cluster_size": 0}])
    def test_rejects_invalid(self, two_interest_groups, kwargs):
        with pytest.raises(EvaluationError):
            cluster_sessions(two_interest_groups, **kwargs)

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError):
            cluster_sessions(SessionSet([]))
