"""Documentation/code consistency checks.

The repository's promise is that DESIGN.md indexes every system and every
benchmark.  These tests make that promise mechanical: new benchmark
modules, packages, examples, or spec files must show up in the docs (and
vice versa) or the suite fails.
"""

from __future__ import annotations

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent.parent


def _read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestDesignDoc:
    def test_every_bench_module_is_indexed(self):
        design = _read("DESIGN.md")
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert bench.name in design, (
                f"{bench.name} is not indexed in DESIGN.md")

    def test_every_package_is_mentioned(self):
        design = _read("DESIGN.md")
        packages = [path.name for path in (ROOT / "src" / "repro").iterdir()
                    if path.is_dir() and (path / "__init__.py").exists()]
        for package in packages:
            assert f"repro.{package}" in design or f"{package}/" in design, (
                f"package repro.{package} is not mentioned in DESIGN.md")

    def test_experiment_ids_are_consistent(self):
        """Every ablation id (A1-A15) referenced in EXPERIMENTS.md exists
        in DESIGN.md's index."""
        design = _read("DESIGN.md")
        experiments = _read("EXPERIMENTS.md")
        design_ids = set(re.findall(r"\| (A\d+) \|", design))
        experiment_ids = set(re.findall(r"\| (A\d+) ", experiments))
        assert experiment_ids <= design_ids, (
            f"EXPERIMENTS.md references undeclared ablations: "
            f"{sorted(experiment_ids - design_ids)}")


class TestReadme:
    def test_examples_listed_exist(self):
        readme = _read("README.md")
        for mentioned in re.findall(r"examples/(\w+\.py)", readme):
            assert (ROOT / "examples" / mentioned).exists(), (
                f"README mentions missing example {mentioned}")

    def test_cli_commands_in_readme_exist(self):
        from repro.cli import build_parser
        parser = build_parser()
        actions = {action.dest: action for action in parser._actions}
        commands = set(actions["command"].choices)
        readme = _read("README.md")
        for match in re.findall(r"^repro (\S+)", readme, re.MULTILINE):
            assert match in commands, (
                f"README shows unknown command 'repro {match}'")


class TestSpecs:
    def test_specs_directory_parses(self):
        import json
        specs = sorted((ROOT / "specs").glob("*.json"))
        assert len(specs) >= 4
        for path in specs:
            json.loads(path.read_text(encoding="utf-8"))


class TestApiDoc:
    def test_api_doc_imports_resolve(self):
        """Every `from repro... import a, b` line in docs/API.md must be
        executable."""
        api = _read("docs/API.md")
        import_lines = re.findall(
            r"^from (repro[\w.]*) import \(?([\w,\s]+?)\)?$",
            api, re.MULTILINE)
        assert import_lines, "expected import statements in docs/API.md"
        import importlib
        for module_name, names in import_lines:
            module = importlib.import_module(module_name)
            for name in re.split(r"[,\s]+", names.strip()):
                if name:
                    assert hasattr(module, name), (
                        f"docs/API.md imports {module_name}.{name}, "
                        "which does not exist")
