"""Unit tests for behavioral robot detection and rotated-log reading."""

from __future__ import annotations

import gzip

import pytest

from repro.exceptions import ConfigurationError, LogFormatError
from repro.logs.clf import CLFRecord, format_clf_line
from repro.logs.robots import RobotDetector
from repro.logs.rotation import (
    iter_log_file,
    read_rotated_logs,
    rotation_order,
)


def _hits(host, times, url="/P1.html", urls=None):
    urls = urls or [url] * len(times)
    return [CLFRecord(host, float(t), "GET", u, "HTTP/1.1", 200, 100)
            for t, u in zip(times, urls)]


class TestRobotDetector:
    def test_human_cadence_not_flagged(self):
        records = _hits("human", [0, 120, 260, 400])
        assert RobotDetector().detect(records) == set()

    def test_robots_txt_fetch_flags(self):
        records = _hits("crawler", [0], url="/robots.txt")
        assert RobotDetector().detect(records) == {"crawler"}

    def test_robots_txt_with_query_flags(self):
        records = _hits("crawler", [0], url="/robots.txt?x=1")
        assert RobotDetector().detect(records) == {"crawler"}

    def test_machine_gun_cadence_flags(self):
        records = _hits("fast", [i * 0.5 for i in range(20)],
                        urls=[f"/P{i}.html" for i in range(20)])
        assert "fast" in RobotDetector().detect(records)

    def test_fast_but_few_requests_not_flagged(self):
        # below min_requests the cadence rule must not fire (could be a
        # burst of embedded resources from a human page view).
        records = _hits("burst", [0, 0.5, 1.0])
        assert RobotDetector().detect(records) == set()

    def test_site_sweep_flags(self):
        times = [i * 20 for i in range(150)]
        urls = [f"/P{i}.html" for i in range(150)]
        records = _hits("sweeper", times, urls=urls)
        assert "sweeper" in RobotDetector().detect(records)

    def test_slow_broad_browsing_not_flagged(self):
        # breadth without speed: a devoted human reader over days.
        times = [i * 300 for i in range(150)]
        urls = [f"/P{i}.html" for i in range(150)]
        records = _hits("reader", times, urls=urls)
        assert RobotDetector().detect(records) == set()

    def test_filter_preserves_order_and_reports(self):
        human = _hits("human", [0, 200])
        robot = _hits("crawler", [10], url="/robots.txt")
        kept, flagged = RobotDetector().filter(human[:1] + robot + human[1:])
        assert flagged == {"crawler"}
        assert [record.host for record in kept] == ["human", "human"]

    def test_profile_sorted_by_volume(self):
        records = _hits("a", [0]) + _hits("b", [0, 10, 20])
        profiles = RobotDetector().profile(records)
        assert [p.host for p in profiles] == ["b", "a"]
        assert profiles[0].mean_gap == 10.0
        assert profiles[1].request_rate == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"min_human_gap": 0}, {"min_requests": 0},
        {"breadth_threshold": 0}, {"breadth_gap": -1}])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            RobotDetector(**kwargs)


class TestRotation:
    def _write(self, path, records, compress=False):
        text = "".join(format_clf_line(r) + "\n" for r in records)
        if compress:
            with gzip.open(path, "wt", encoding="utf-8") as handle:
                handle.write(text)
        else:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)

    def test_rotation_order_convention(self):
        ordered = rotation_order(
            ["access.log", "access.log.2.gz", "access.log.1"])
        assert ordered == ["access.log.2.gz", "access.log.1", "access.log"]

    def test_reads_gzip_members(self, tmp_path):
        records = _hits("h", [100, 200])
        path = str(tmp_path / "access.log.1.gz")
        self._write(path, records, compress=True)
        assert len(list(iter_log_file(path))) == 2

    def test_stitches_set_in_time_order(self, tmp_path):
        old = _hits("h", [0, 50])
        new = _hits("h", [100, 150])
        old_path = str(tmp_path / "access.log.1.gz")
        new_path = str(tmp_path / "access.log")
        self._write(old_path, old, compress=True)
        self._write(new_path, new)
        merged = read_rotated_logs([new_path, old_path])
        assert [record.timestamp for record in merged] == [0, 50, 100, 150]

    def test_empty_set_rejected(self):
        with pytest.raises(LogFormatError, match="no log files"):
            read_rotated_logs([])

    def test_skip_malformed_across_members(self, tmp_path):
        path = str(tmp_path / "dirty.log")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("garbage\n")
            handle.write(format_clf_line(_hits("h", [1])[0]) + "\n")
        assert len(read_rotated_logs([path], skip_malformed=True)) == 1
        with pytest.raises(LogFormatError):
            read_rotated_logs([path])
