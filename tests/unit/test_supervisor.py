"""Unit tests for chunk-level supervision (``repro.parallel.supervisor``)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, ExecutionError
from repro.faults import use_execution_faults
from repro.obs import Registry, use_registry
from repro.parallel import RetryPolicy, supervised_map


def _double(x):
    """Module-level so it pickles into worker processes."""
    return x * 2


def _boom(x):
    if x == 5:
        raise ValueError("deterministic bug at 5")
    return x


# a small but multi-chunk workload; chunk_size=4 gives 4 chunks.
ITEMS = list(range(16))
EXPECTED = [x * 2 for x in ITEMS]


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.on_failure == "serial"

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"deadline": 0.0},
        {"deadline": -3.0},
        {"backoff_base": -0.1},
        {"backoff_cap": -1.0},
        {"jitter": 1.5},
        {"jitter": -0.1},
        {"on_failure": "explode"},
    ])
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.35, jitter=0.0)
        delays = [policy.backoff_for(0, attempt) for attempt in range(4)]
        assert delays == pytest.approx([0.1, 0.2, 0.35, 0.35])

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=10.0,
                             jitter=0.5, seed=42)
        first = policy.backoff_for(3, 1)
        assert first == policy.backoff_for(3, 1)
        assert 0.2 <= first <= 0.3
        # a different chunk/attempt/seed draws a different factor
        assert first != policy.backoff_for(4, 1)
        assert first != RetryPolicy(backoff_base=0.1, backoff_cap=10.0,
                                    jitter=0.5, seed=43).backoff_for(3, 1)


class TestSupervisedMapSerial:
    """The serial plan honors the same chunk/callback contract."""

    def test_results_and_chunking(self):
        outcome = supervised_map(_double, ITEMS, workers=None, chunk_size=4)
        assert outcome.results == EXPECTED
        assert outcome.stats.chunks == 4
        assert outcome.chunk_outputs == [EXPECTED[i:i + 4]
                                         for i in range(0, 16, 4)]
        assert outcome.failures == []

    def test_explicit_chunk_size_survives_serial_plan(self):
        # plan_execution lumps a serial plan into one chunk; checkpointed
        # callers rely on the explicit size overriding that.
        outcome = supervised_map(_double, ITEMS, workers=None, chunk_size=1)
        assert outcome.stats.chunks == 16

    def test_callback_fires_per_chunk(self):
        seen = []
        supervised_map(_double, ITEMS, workers=None, chunk_size=4,
                       on_chunk_complete=lambda i, r: seen.append((i, r)))
        assert seen == [(i, EXPECTED[4 * i:4 * i + 4]) for i in range(4)]

    def test_work_fn_error_propagates(self):
        with pytest.raises(ValueError, match="deterministic bug"):
            supervised_map(_boom, ITEMS, workers=None, chunk_size=4)


class TestSupervisedMapProcess:
    def test_clean_run_matches_serial(self):
        outcome = supervised_map(_double, ITEMS, workers=2, mode="process",
                                 chunk_size=4)
        assert outcome.results == EXPECTED
        assert outcome.stats.retries == 0
        assert outcome.stats.respawns == 0

    def test_transient_crash_recovers(self):
        with use_execution_faults("crash-chunk:1"):
            outcome = supervised_map(_double, ITEMS, workers=2,
                                     mode="process", chunk_size=4,
                                     policy=RetryPolicy(max_retries=2,
                                                        backoff_base=0.01))
        assert outcome.results == EXPECTED
        assert outcome.stats.crashes >= 1
        assert outcome.stats.respawns >= 1
        assert outcome.stats.retries >= 1
        assert outcome.failures == []

    def test_hang_trips_deadline_and_recovers(self):
        with use_execution_faults("hang-chunk:2:30"):
            outcome = supervised_map(
                _double, ITEMS, workers=2, mode="process", chunk_size=4,
                policy=RetryPolicy(max_retries=2, deadline=1.0,
                                   backoff_base=0.01))
        assert outcome.results == EXPECTED
        assert outcome.stats.deadline_hits >= 1
        assert outcome.failures == []

    def test_hard_crash_degrades_serial(self):
        # attempts=5 > max_retries, so the chunk exhausts its budget and
        # the serial fallback (where worker faults cannot fire) saves it.
        # Pairing the crash with a short slow-chunk delay keeps the test
        # deterministic: chunks 0-2 (trivial work) complete before chunk 3
        # crashes, so the BrokenProcessPool dooms no innocent chunk.
        with use_execution_faults("slow-chunk:3:0.4:6", "crash-chunk:3:0:6"):
            outcome = supervised_map(
                _double, ITEMS, workers=2, mode="process", chunk_size=4,
                policy=RetryPolicy(max_retries=1, backoff_base=0.01,
                                   on_failure="serial"))
        assert outcome.results == EXPECTED
        assert outcome.stats.degraded_serial == 1
        [failure] = outcome.failures
        assert failure.chunk_index == 3
        assert failure.reason == "crash"
        assert failure.resolution == "serial"
        assert failure.attempts == 2
        assert failure.to_dict()["resolution"] == "serial"

    def test_hard_crash_skip_quarantines(self):
        with use_execution_faults("slow-chunk:3:0.4:6", "crash-chunk:3:0:6"):
            outcome = supervised_map(
                _double, ITEMS, workers=2, mode="process", chunk_size=4,
                policy=RetryPolicy(max_retries=0, backoff_base=0.01,
                                   on_failure="skip"))
        assert outcome.results == EXPECTED[:12]
        assert outcome.chunk_outputs[3] is None
        assert outcome.chunk_outputs[:3] == [EXPECTED[i:i + 4]
                                             for i in range(0, 12, 4)]
        assert outcome.stats.skipped == 1
        [failure] = outcome.failures
        assert failure.resolution == "skipped"
        assert failure.item_offset == 12
        assert failure.n_items == 4

    def test_hard_crash_raise_aborts(self):
        with use_execution_faults("crash-chunk:0:0:5"):
            with pytest.raises(ExecutionError, match="chunk"):
                supervised_map(
                    _double, ITEMS, workers=2, mode="process", chunk_size=4,
                    policy=RetryPolicy(max_retries=0, backoff_base=0.01,
                                       on_failure="raise"))

    def test_work_fn_error_propagates_not_retried(self):
        with pytest.raises(ValueError, match="deterministic bug"):
            supervised_map(_boom, ITEMS, workers=2, mode="process",
                           chunk_size=4)


class TestSupervisorObservability:
    def test_zero_fault_run_publishes_no_supervisor_series(self):
        registry = Registry()
        with use_registry(registry):
            supervised_map(_double, ITEMS, workers=None, chunk_size=4)
        names = set(registry.snapshot()["counters"])
        assert not any(name.startswith("parallel.supervisor")
                       for name in names)

    def test_faulty_run_publishes_nonzero_counters(self):
        registry = Registry()
        with use_registry(registry):
            with use_execution_faults("crash-chunk:1"):
                supervised_map(_double, ITEMS, workers=2, mode="process",
                               chunk_size=4,
                               policy=RetryPolicy(max_retries=2,
                                                  backoff_base=0.01))
        counters = registry.snapshot()["counters"]
        crashes = [value for name, value in counters.items()
                   if name.startswith("parallel.supervisor.crashes")]
        assert crashes and crashes[0] >= 1


class TestSupervisorTraceAttribution:
    def _traced_registry(self):
        from repro.obs.tracing import ListSink, Tracer
        sink = ListSink()
        return Registry(tracer=Tracer(sink)), sink

    def test_direct_execution_spans_carry_chunk_and_attempt(self):
        from repro.obs import build_span_forest
        registry, sink = self._traced_registry()
        with use_registry(registry):
            with registry.span("cli.reconstruct"):
                supervised_map(_double, ITEMS, workers=None,
                               chunk_size=4)
        roots = build_span_forest(sink.records)
        chunk_spans = [node for root in roots for node in root.walk()
                       if node.name == "parallel.chunk"]
        assert [span.attrs["chunk"] for span in chunk_spans] \
            == [0, 1, 2, 3]
        assert all(span.attrs["attempt"] == 0 for span in chunk_spans)
        assert chunk_spans[0].display_name \
            == "parallel.chunk[chunk=0,attempt=0]"

    def test_process_mode_records_lifecycle_events_parent_side(self):
        registry, sink = self._traced_registry()
        with use_registry(registry):
            with registry.span("cli.reconstruct"):
                supervised_map(_double, ITEMS, workers=2,
                               mode="process", chunk_size=4)
        events = [record for record in sink.records
                  if record["type"] == "event"
                  and record["name"] == "parallel.chunk.complete"]
        assert sorted(event["attrs"]["chunk"] for event in events) \
            == [0, 1, 2, 3]

    def test_degraded_serial_respawn_is_attributable(self):
        """A chunk that exhausts retries and degrades to serial leaves a
        parent-side span whose attempt counter distinguishes the re-run
        from the first attempt (the ISSUE's retry-attribution check)."""
        registry, sink = self._traced_registry()
        with use_registry(registry):
            with use_execution_faults("crash-chunk:1:0:99"):
                supervised_map(_double, ITEMS, workers=2,
                               mode="process", chunk_size=4,
                               policy=RetryPolicy(max_retries=1,
                                                  backoff_base=0.01,
                                                  on_failure="serial"))
        retries = [record for record in sink.records
                   if record["type"] == "event"
                   and record["name"] == "parallel.chunk.retry"]
        assert any(event["attrs"]["chunk"] == 1 for event in retries)
        degraded = [record for record in sink.records
                    if record["type"] == "span"
                    and record["name"] == "parallel.chunk"
                    and record["attrs"].get("degraded") == "serial"]
        assert len(degraded) == 1
        assert degraded[0]["attrs"]["chunk"] == 1
        assert degraded[0]["attrs"]["attempt"] >= 1
