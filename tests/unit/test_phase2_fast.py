"""Unit tests for the indexed Phase 2 implementation."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.core.config import SmartSRAConfig
from repro.core.phase2 import maximal_sessions, maximal_sessions_fast
from repro.sessions.model import Request
from repro.topology.graph import WebGraph

MIN = 60.0


def _multiset(sessions):
    return sorted(tuple((r.page, r.timestamp) for r in s) for s in sessions)


class TestFastPhase2:
    def test_paper_table4(self, fig1_topology, table3_stream):
        sessions = maximal_sessions_fast(table3_stream, fig1_topology)
        assert {s.pages for s in sessions} == {
            ("P1", "P13", "P34", "P23"),
            ("P1", "P13", "P49", "P23"),
            ("P1", "P20", "P23"),
        }

    def test_empty_candidate(self, fig1_topology):
        assert maximal_sessions_fast([], fig1_topology) == []

    def test_singleton(self, fig1_topology):
        sessions = maximal_sessions_fast(
            [Request(0.0, "u", "P1")], fig1_topology)
        assert [s.pages for s in sessions] == [("P1",)]

    def test_unknown_pages(self, fig1_topology):
        candidate = [Request(0.0, "u", "X"), Request(MIN, "u", "Y")]
        sessions = maximal_sessions_fast(candidate, fig1_topology)
        assert {s.pages for s in sessions} == {("X",), ("Y",)}

    def test_branching(self):
        graph = WebGraph([("A", "B"), ("A", "C")], start_pages=["A"])
        candidate = [Request(0.0, "u", "A"), Request(MIN, "u", "B"),
                     Request(2 * MIN, "u", "C")]
        sessions = maximal_sessions_fast(candidate, graph)
        assert {s.pages for s in sessions} == {("A", "B"), ("A", "C")}

    def test_timestamp_rule_enforced(self):
        graph = WebGraph([("A", "B"), ("C", "B")], start_pages=["A"])
        candidate = [Request(0.0, "u", "A"), Request(5 * MIN, "u", "B"),
                     Request(10 * MIN, "u", "C")]
        for session in maximal_sessions_fast(candidate, graph):
            times = [r.timestamp for r in session]
            assert times == sorted(times)

    def test_rescue_orphans_path(self, fig1_topology, table3_stream):
        plain = maximal_sessions_fast(table3_stream, fig1_topology)
        rescued = maximal_sessions_fast(
            table3_stream, fig1_topology,
            SmartSRAConfig(rescue_orphans=True))
        assert _multiset(plain) == _multiset(rescued)

    def test_matches_reference_on_paper_examples(self, fig1_topology,
                                                 table1_stream,
                                                 table3_stream):
        for stream in (table1_stream, table3_stream):
            assert _multiset(maximal_sessions_fast(stream, fig1_topology)) \
                == _multiset(maximal_sessions(stream, fig1_topology))

    def test_output_stable_across_hash_seeds(self, tmp_path):
        """Session ORDER must not depend on PYTHONHASHSEED (frozenset
        iteration order does; the implementation sorts to compensate)."""
        script = tmp_path / "emit.py"
        script.write_text(
            "from repro.topology.generators import random_site\n"
            "from repro.core.phase2 import maximal_sessions_fast\n"
            "from repro.sessions.model import Request\n"
            "import random\n"
            "site = random_site(40, 5, seed=3)\n"
            "rng = random.Random(1)\n"
            "pages = sorted(site.pages)\n"
            "cand = [Request(i * 30.0, 'u', rng.choice(pages))"
            " for i in range(40)]\n"
            "for s in maximal_sessions_fast(cand, site):\n"
            "    print('|'.join(p for p in s.pages))\n",
            encoding="utf-8")
        outputs = set()
        for hash_seed in ("1", "7", "42"):
            completed = subprocess.run(
                [sys.executable, str(script)], capture_output=True,
                text=True, env={"PYTHONHASHSEED": hash_seed,
                                "PATH": "/usr/bin:/bin"},
                check=False)
            if completed.returncode != 0:
                pytest.skip(f"subprocess failed: {completed.stderr[:200]}")
            outputs.add(completed.stdout)
        assert len(outputs) == 1
