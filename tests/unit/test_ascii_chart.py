"""Unit tests for the ASCII sweep chart renderer."""

from __future__ import annotations

import pytest

from repro.evaluation.ascii_chart import render_chart
from repro.evaluation.harness import sweep
from repro.exceptions import EvaluationError
from repro.simulator.config import SimulationConfig


@pytest.fixture(scope="module")
def small_sweep(small_site):
    return sweep(small_site, SimulationConfig(n_agents=25, seed=3),
                 "stp", [0.05, 0.2])


def test_chart_structure(small_sweep):
    chart = render_chart(small_sweep, title="My Chart", height=10)
    lines = chart.splitlines()
    assert lines[0] == "My Chart"
    assert sum(1 for line in lines if "|" in line) == 10
    assert any("legend:" in line for line in lines)
    assert "(stp)" in chart


def test_chart_contains_all_series_glyphs(small_sweep):
    chart = render_chart(small_sweep)
    legend = [line for line in chart.splitlines() if "legend" in line][0]
    for glyph_name in ("1=heur1", "2=heur2", "3=heur3", "4=heur4"):
        assert glyph_name in legend


def test_chart_y_axis_spans_peak(small_sweep):
    chart = render_chart(small_sweep, height=5)
    series = small_sweep.series()
    peak = max(max(values) for values in series.values())
    top_label = float(chart.splitlines()[0].split("%")[0])
    assert top_label == pytest.approx(peak * 100, abs=0.1)


def test_rejects_bad_height(small_sweep):
    with pytest.raises(EvaluationError):
        render_chart(small_sweep, height=0)


def test_metric_selection(small_sweep):
    matched = render_chart(small_sweep, metric="matched")
    captured = render_chart(small_sweep, metric="captured")
    assert matched != captured
