"""Unit tests for the simulator's statistical self-validation."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulator.config import SimulationConfig
from repro.simulator.population import simulate_population
from repro.simulator.validation import validate_simulation


@pytest.fixture(scope="module")
def validated_sim(small_site):
    config = SimulationConfig(n_agents=400, seed=13, nip_revisits=False)
    return simulate_population(small_site, config)


class TestValidateSimulation:
    def test_default_simulation_passes(self, validated_sim):
        report = validate_simulation(validated_sim)
        assert report.checks, "expected at least one check to run"
        assert report.passed, str(report)

    def test_all_three_checks_run(self, validated_sim):
        report = validate_simulation(validated_sim)
        names = {check.name for check in report.checks}
        assert "stay-time distribution" in names
        assert "termination rate (lower bound)" in names
        assert "NIP jump rate (upper bound)" in names

    def test_report_renders(self, validated_sim):
        text = str(validate_simulation(validated_sim))
        assert "simulator validation" in text
        assert "ok" in text

    def test_too_small_simulation_rejected(self, small_site):
        tiny = simulate_population(small_site,
                                   SimulationConfig(n_agents=2, seed=1))
        with pytest.raises(SimulationError, match="too few"):
            validate_simulation(tiny)

    def test_detects_broken_stay_distribution(self, small_site):
        """If the configured distribution disagrees with the generated
        gaps, the KS check must fail — proving the test has teeth."""
        config = SimulationConfig(n_agents=400, seed=13,
                                  nip_revisits=False)
        simulation = simulate_population(small_site, config)
        # lie about the configuration: claim a different mean stay.
        from dataclasses import replace
        lied = replace(simulation,
                       config=config.with_(mean_stay=4.4 * 60))
        report = validate_simulation(lied)
        stay = next(check for check in report.checks
                    if check.name == "stay-time distribution")
        assert not stay.passed

    def test_content_model_skips_stay_check(self, small_site):
        config = SimulationConfig(n_agents=200, seed=13,
                                  content_fraction=0.3)
        simulation = simulate_population(small_site, config)
        report = validate_simulation(simulation)
        names = {check.name for check in report.checks}
        assert "stay-time distribution" not in names
