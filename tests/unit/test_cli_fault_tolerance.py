"""CLI tests for the fault-tolerance surface: supervision flags,
``--checkpoint``/``--resume``, ``repro doctor`` and the chaos exec selftest."""

from __future__ import annotations

import json
import os
from unittest import mock

import pytest

from repro.cli import main
from repro.parallel import CheckpointStore


@pytest.fixture()
def site(tmp_path):
    path = str(tmp_path / "site.json")
    assert main(["topology", "--pages", "30", "--seed", "3",
                 "--output", path]) == 0
    return path


class TestSupervisionFlags:
    def test_bad_on_chunk_failure_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--parameter", "stp", "--values", "0.5",
                  "--on-chunk-failure", "explode"])

    def test_bad_max_retries_is_one_line_error(self, site, capsys):
        code = main(["sweep", "--parameter", "stp", "--values", "0.5",
                     "--topology", site, "--agents", "5",
                     "--max-retries", "-2"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "max_retries" in err

    def test_resume_requires_checkpoint(self, capsys):
        code = main(["sweep", "--parameter", "stp", "--values", "0.5",
                     "--resume"])
        assert code == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err


class TestSweepCheckpointCli:
    def test_checkpoint_then_resume_same_table(self, site, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        args = ["sweep", "--parameter", "stp", "--values", "0.3,0.6",
                "--topology", site, "--agents", "10", "--seed", "5",
                "--checkpoint", ckpt]
        assert main(args) == 0
        first = capsys.readouterr().out
        store = CheckpointStore(ckpt)
        assert store.read_manifest()["status"] == "complete"
        assert len(store.completed_units("sweep-point")) == 2
        assert main(args + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_reused_directory_without_resume_refused(self, site, tmp_path,
                                                     capsys):
        ckpt = str(tmp_path / "ckpt")
        args = ["sweep", "--parameter", "stp", "--values", "0.5",
                "--topology", site, "--agents", "5", "--checkpoint", ckpt]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 1
        assert "--resume" in capsys.readouterr().err


class TestDoctorCli:
    def test_missing_directory(self, tmp_path, capsys):
        code = main(["doctor", str(tmp_path / "nope")])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_healthy_directory(self, tmp_path, capsys):
        store = CheckpointStore(str(tmp_path / "ckpt"))
        store.begin("fp", label="demo")
        store.save_unit("trial", "a", {"x": 1})
        store.mark("complete")
        assert main(["doctor", store.directory]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok" in out

    def test_degraded_directory_json(self, tmp_path, capsys):
        store = CheckpointStore(str(tmp_path / "ckpt"))
        store.begin("fp")
        path = store.save_unit("trial", "a", {"x": 1})
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        document["digest"] = "0" * 64
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        assert main(["doctor", store.directory, "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert len(report["corrupt"]) == 1


class TestChaosExecSelftest:
    def test_selftest_passes_without_log(self, capsys):
        code = main(["chaos", "--exec-selftest", "--exec-fault",
                     "crash-chunk:1", "--selftest-items", "16",
                     "--selftest-workers", "2"])
        assert code == 0
        err = capsys.readouterr().err
        assert "identical to serial" in err

    def test_chaos_still_requires_log_otherwise(self, capsys):
        assert main(["chaos"]) == 2
        assert "--log is required" in capsys.readouterr().err

    def test_bad_fault_spec_is_one_line_error(self, capsys):
        code = main(["chaos", "--exec-selftest", "--exec-fault",
                     "explode-chunk:1"])
        assert code == 1
        assert capsys.readouterr().err.startswith("error:")


class TestKeyboardInterrupt:
    def test_exit_130_with_one_line_message(self, capsys):
        with mock.patch("repro.cli._run_command",
                        side_effect=KeyboardInterrupt):
            code = main(["selftest"])
        assert code == 130
        err = capsys.readouterr().err
        assert err.startswith("error: interrupted")
        assert "--resume" in err
        assert "\n" == err[-1] and "Traceback" not in err

    def test_interrupted_sweep_keeps_checkpoint_units(self, site, tmp_path,
                                                      capsys):
        ckpt = str(tmp_path / "ckpt")
        calls = {"n": 0}
        from repro.evaluation import harness

        real = harness._run_sweep_point_captured

        def interrupt_after_first(*args, **kwargs):
            if calls["n"] >= 1:
                raise KeyboardInterrupt
            calls["n"] += 1
            return real(*args, **kwargs)

        args = ["sweep", "--parameter", "stp", "--values", "0.3,0.6",
                "--topology", site, "--agents", "10", "--seed", "5",
                "--checkpoint", ckpt]
        with mock.patch.object(harness, "_run_sweep_point_captured",
                               side_effect=interrupt_after_first):
            assert main(args) == 130
        capsys.readouterr()
        store = CheckpointStore(ckpt)
        assert store.read_manifest()["status"] == "interrupted"
        assert len(store.completed_units("sweep-point")) == 1
        # the interrupted run resumes to the full table
        assert main(args + ["--resume"]) == 0
        assert "0.3" in capsys.readouterr().out
        assert store.read_manifest()["status"] == "complete"
