"""Public-API surface checks.

These tests freeze the import surface: every documented name must be
importable from where the docs say it lives, every ``__all__`` entry must
resolve, and every public callable must carry a docstring.  They catch the
classic refactoring accident — a rename that silently breaks ``from repro
import X`` for downstream users.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.sessions",
    "repro.topology",
    "repro.simulator",
    "repro.logs",
    "repro.evaluation",
    "repro.mining",
    "repro.transactions",
    "repro.streaming",
]

TOP_LEVEL_NAMES = [
    # value types
    "Request", "Session", "SessionSet", "WebGraph",
    # heuristics
    "DurationHeuristic", "PageStayHeuristic", "NavigationHeuristic",
    "ReferrerHeuristic", "AdaptiveTimeoutHeuristic", "SmartSRA",
    "SmartSRAConfig", "Phase1Only",
    # simulation
    "SimulationConfig", "simulate_population", "simulate_agent",
    # evaluation
    "evaluate_reconstruction", "real_accuracy", "run_trial", "sweep",
    "fig8_sweep", "fig9_sweep", "fig10_sweep",
    # topology
    "random_site", "hierarchical_site", "power_law_site",
    # streaming / stats
    "streaming_smart_sra", "streaming_phase1", "describe",
    # errors
    "ReproError", "TopologyError", "SimulationError", "LogFormatError",
    "ReconstructionError", "EvaluationError", "ConfigurationError",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_entries_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.__all__ lists {name!r} " \
                                      f"but it is not importable"


@pytest.mark.parametrize("name", TOP_LEVEL_NAMES)
def test_top_level_import(name):
    import repro
    assert hasattr(repro, name)
    assert name in repro.__all__


@pytest.mark.parametrize("package", PACKAGES)
def test_public_callables_have_docstrings(package):
    module = importlib.import_module(package)
    missing = []
    for name in module.__all__:
        member = getattr(module, name)
        if inspect.isfunction(member) or inspect.isclass(member):
            if not (member.__doc__ or "").strip():
                missing.append(f"{package}.{name}")
    assert not missing, f"missing docstrings: {missing}"


def test_version_is_pep440ish():
    import repro
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_registry_names_are_complete():
    from repro.sessions.base import available_heuristics
    names = set(available_heuristics())
    assert {"heur1", "heur2", "heur3", "heur4", "phase1",
            "adaptive"} <= names
