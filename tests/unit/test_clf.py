"""Unit tests for the Common Log Format record model."""

from __future__ import annotations

import pytest

from repro.exceptions import LogFormatError
from repro.logs.clf import (
    CLFRecord,
    format_clf_line,
    page_to_url,
    parse_clf_line,
    url_to_page,
)


def _record(**overrides):
    defaults = dict(host="10.0.0.1", timestamp=1_000_000.0, method="GET",
                    url="/P13.html", protocol="HTTP/1.1", status=200,
                    size=5120)
    defaults.update(overrides)
    return CLFRecord(**defaults)


class TestFormatting:
    def test_format_shape(self):
        line = format_clf_line(_record())
        assert line == ('10.0.0.1 - - [12/Jan/1970:13:46:40 +0000] '
                        '"GET /P13.html HTTP/1.1" 200 5120')

    def test_none_size_renders_dash(self):
        assert format_clf_line(_record(size=None)).endswith(" 200 -")

    def test_subsecond_timestamps_floor(self):
        with_fraction = format_clf_line(_record(timestamp=1_000_000.9))
        without = format_clf_line(_record(timestamp=1_000_000.0))
        assert with_fraction == without


class TestParsing:
    def test_roundtrip(self):
        record = _record()
        parsed = parse_clf_line(format_clf_line(record))
        assert parsed == record

    def test_parses_hostname_hosts(self):
        line = format_clf_line(_record(host="agent000042"))
        assert parse_clf_line(line).host == "agent000042"

    def test_parses_timezone_offset(self):
        line = ('1.2.3.4 - - [01/Jan/2000:12:00:00 +0200] '
                '"GET /a.html HTTP/1.0" 200 10')
        utc_line = ('1.2.3.4 - - [01/Jan/2000:10:00:00 +0000] '
                    '"GET /a.html HTTP/1.0" 200 10')
        assert (parse_clf_line(line).timestamp
                == parse_clf_line(utc_line).timestamp)

    def test_parses_dash_size(self):
        line = ('1.2.3.4 - - [01/Jan/2000:10:00:00 +0000] '
                '"GET /a.html HTTP/1.0" 404 -')
        record = parse_clf_line(line)
        assert record.size is None
        assert record.status == 404

    def test_tolerates_trailing_newline(self):
        line = format_clf_line(_record()) + "\n"
        assert parse_clf_line(line) == _record()

    @pytest.mark.parametrize("line", [
        "not a log line",
        '1.2.3.4 - - [99/Jan/2000:10:00:00 +0000] "GET /a HTTP/1.0" 200 1',
        '1.2.3.4 - - [01/Jan/2000:10:00:00 +0000] "GET /a HTTP/1.0" 2OO 1',
        "",
    ])
    def test_rejects_malformed(self, line):
        with pytest.raises(LogFormatError):
            parse_clf_line(line)

    def test_error_carries_line_number(self):
        with pytest.raises(LogFormatError) as excinfo:
            parse_clf_line("garbage", line_number=17)
        assert excinfo.value.line_number == 17
        assert "line 17" in str(excinfo.value)


class TestPageViewFilter:
    def test_successful_get_is_page_view(self):
        assert _record().is_page_view

    def test_post_is_not(self):
        assert not _record(method="POST").is_page_view

    def test_error_status_is_not(self):
        assert not _record(status=404).is_page_view


class TestUrlMapping:
    def test_page_to_url(self):
        assert page_to_url("P13") == "/P13.html"

    def test_url_to_page_inverts(self):
        assert url_to_page(page_to_url("P13")) == "P13"

    def test_query_string_stripped(self):
        assert url_to_page("/P13.html?ref=mail") == "P13"

    def test_foreign_url_passthrough(self):
        assert url_to_page("/img/logo.png") == "/img/logo.png"
