"""Unit tests for arrival-time profiles."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import SimulationError
from repro.simulator.arrivals import ARRIVAL_PROFILES, sample_arrival
from repro.simulator.config import SimulationConfig
from repro.simulator.population import simulate_population


class TestSampleArrival:
    def test_uniform_is_linear(self):
        assert sample_arrival(0.25, 1000.0, "uniform") == 250.0
        assert sample_arrival(0.0, 1000.0) == 0.0
        assert sample_arrival(1.0, 1000.0) == 1000.0

    def test_diurnal_is_monotone(self):
        points = [sample_arrival(u / 20, 1000.0, "diurnal")
                  for u in range(21)]
        assert points == sorted(points)
        assert 0.0 <= points[0] and points[-1] <= 1000.0

    def test_diurnal_median_is_midday(self):
        assert sample_arrival(0.5, 1000.0, "diurnal") == pytest.approx(
            500.0, abs=1e-6)

    def test_diurnal_concentrates_midday(self):
        rng = random.Random(1)
        draws = [sample_arrival(rng.random(), 1.0, "diurnal")
                 for __ in range(4000)]
        middle = sum(1 for value in draws if 0.25 <= value <= 0.75)
        # raised cosine puts ~82% of mass in the middle half (vs 50%
        # uniform): F(0.75) - F(0.25) = 0.5 + 1/pi.
        assert middle / len(draws) == pytest.approx(0.5 + 1 / 3.14159,
                                                    abs=0.03)

    def test_unknown_profile_rejected(self):
        with pytest.raises(SimulationError, match="unknown arrival"):
            sample_arrival(0.5, 100.0, "weekly")

    def test_out_of_range_draw_rejected(self):
        with pytest.raises(SimulationError):
            sample_arrival(1.5, 100.0)

    def test_registry_contents(self):
        assert set(ARRIVAL_PROFILES) == {"uniform", "diurnal"}


class TestPopulationIntegration:
    def test_diurnal_population_clusters_arrivals(self, small_site):
        config = SimulationConfig(n_agents=200, seed=3)
        uniform = simulate_population(small_site, config, horizon=86_400.0)
        diurnal = simulate_population(small_site, config, horizon=86_400.0,
                                      arrival_profile="diurnal")

        def middle_fraction(sim):
            starts = [trace.server_requests[0].timestamp
                      for trace in sim.traces if trace.server_requests]
            middle = sum(1 for start in starts
                         if 21_600 <= start <= 64_800)
            return middle / len(starts)

        assert middle_fraction(diurnal) > middle_fraction(uniform) + 0.2

    def test_profile_does_not_change_navigation(self, small_site):
        """Arrivals shift in time; the walks themselves are identical."""
        config = SimulationConfig(n_agents=50, seed=3)
        uniform = simulate_population(small_site, config)
        diurnal = simulate_population(small_site, config,
                                      arrival_profile="diurnal")
        for a, b in zip(uniform.traces, diurnal.traces):
            assert [s.pages for s in a.real_sessions] == [
                s.pages for s in b.real_sessions]
