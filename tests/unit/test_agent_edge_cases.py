"""Unit tests for agent behaviors the main suite does not reach directly:
LPP fall-through, content-page timing, and exception formatting."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import LogFormatError, ReproError, SimulationError
from repro.simulator.agent import simulate_agent
from repro.simulator.clock import StayTimeSampler
from repro.simulator.config import SimulationConfig
from repro.simulator.pages import select_content_pages
from repro.topology.graph import WebGraph


def _config(**overrides):
    defaults = dict(stp=0.05, lpp=0.0, nip=0.0, n_agents=1, seed=0)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestLPPFallThrough:
    def test_lpp_on_first_page_falls_through_to_behavior2(self):
        # On the session's first page there is no "previous page": the LPP
        # draw must fall through to a normal link follow, not crash.
        site = WebGraph([("A", "B"), ("B", "C")], start_pages=["A"])
        trace = simulate_agent("u", site, _config(stp=0.0001, lpp=0.95),
                               random.Random(2))
        all_pages = [p for s in trace.real_sessions for p in s.pages]
        assert all_pages[0] == "A"
        assert len(all_pages) >= 2

    def test_lpp_without_branchable_page_falls_through(self):
        # Line topology: previous pages never have unvisited successors
        # once the walk passed them, so LPP can never fire and the agent
        # must keep walking forward.
        site = WebGraph([("A", "B"), ("B", "C"), ("C", "D")],
                        start_pages=["A"])
        trace = simulate_agent("u", site, _config(stp=0.0001, lpp=0.95),
                               random.Random(3))
        assert trace.real_sessions[-1].pages == ("A", "B", "C", "D")
        assert trace.cache_hits == 0


class TestContentTiming:
    @pytest.fixture()
    def star_site(self):
        # hub with three leaves; leaves link back to the hub.
        return WebGraph([("hub", "a"), ("hub", "b"), ("hub", "c"),
                         ("a", "hub"), ("b", "hub"), ("c", "hub")],
                        start_pages=["hub"])

    def test_content_pages_selected_by_low_out_degree(self, star_site):
        content = select_content_pages(star_site, fraction=0.5)
        assert content <= {"a", "b", "c"}
        assert "hub" not in content  # start pages never content

    def test_select_content_pages_validates_fraction(self, star_site):
        with pytest.raises(SimulationError):
            select_content_pages(star_site, fraction=1.5)
        assert select_content_pages(star_site, fraction=0.0) == frozenset()

    def test_content_stays_are_longer(self, star_site):
        config = _config(stp=0.01, lpp=0.4, content_fraction=0.9,
                         mean_stay=30.0, stay_deviation=5.0,
                         content_mean_stay=400.0,
                         content_stay_deviation=20.0,
                         max_requests_per_agent=60)
        trace = simulate_agent("u", star_site, config, random.Random(5))
        content = select_content_pages(star_site, 0.9)
        content_gaps = []
        auxiliary_gaps = []
        for session in trace.real_sessions:
            for earlier, later in zip(session.requests,
                                      session.requests[1:]):
                gap = later.timestamp - earlier.timestamp
                if earlier.page in content:
                    content_gaps.append(gap)
                else:
                    auxiliary_gaps.append(gap)
        if content_gaps and auxiliary_gaps:
            assert (sum(content_gaps) / len(content_gaps)
                    > sum(auxiliary_gaps) / len(auxiliary_gaps))

    def test_content_config_validation(self):
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            SimulationConfig(content_fraction=1.5)
        with pytest.raises(ConfigurationError):
            SimulationConfig(content_fraction=0.5,
                             content_mean_stay=700.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(content_mean_stay=0.0)


class TestExceptionFormatting:
    def test_log_format_error_carries_position(self):
        error = LogFormatError("bad line", line_number=3, line="x")
        assert str(error) == "line 3: bad line"
        assert error.line == "x"

    def test_log_format_error_without_position(self):
        assert str(LogFormatError("bad")) == "bad"

    def test_hierarchy(self):
        assert issubclass(LogFormatError, ReproError)
        assert issubclass(SimulationError, ReproError)

    def test_sampler_rejection_exhaustion(self):
        # deviation huge relative to the window: rejection sampling can
        # exhaust its budget and must fail loudly, not loop forever.
        sampler = StayTimeSampler(mean=1.0, deviation=10_000.0,
                                  max_stay=1.0001,
                                  rng=random.Random(0))
        with pytest.raises(SimulationError, match="could not sample"):
            for __ in range(50):
                sampler.sample()
