"""Unit tests for the Combined Log Format extension."""

from __future__ import annotations

import pytest

from repro.exceptions import LogFormatError
from repro.logs.clf import (
    CLFRecord,
    format_clf_line,
    format_combined_line,
    parse_combined_line,
    parse_log_line,
)
from repro.logs.reader import records_to_requests
from repro.logs.users import IdentityAddressMap
from repro.logs.writer import (
    USER_AGENT_POOL,
    requests_to_records,
    write_combined_file,
)
from repro.sessions.model import Request


def _record(**overrides):
    defaults = dict(host="10.0.0.1", timestamp=1_000_000.0, method="GET",
                    url="/P13.html", protocol="HTTP/1.1", status=200,
                    size=5120, referrer="/P1.html",
                    user_agent="Mozilla/5.0 (test)")
    defaults.update(overrides)
    return CLFRecord(**defaults)


class TestCombinedFormat:
    def test_format_appends_quoted_headers(self):
        line = format_combined_line(_record())
        assert line.endswith('"/P1.html" "Mozilla/5.0 (test)"')
        assert line.startswith(format_clf_line(_record()))

    def test_none_headers_render_dash(self):
        line = format_combined_line(_record(referrer=None, user_agent=None))
        assert line.endswith('"-" "-"')

    def test_roundtrip(self):
        record = _record()
        assert parse_combined_line(format_combined_line(record)) == record

    def test_dash_parses_to_none(self):
        line = format_combined_line(_record(referrer=None))
        assert parse_combined_line(line).referrer is None

    def test_rejects_embedded_quotes(self):
        with pytest.raises(LogFormatError, match="double quote"):
            format_combined_line(_record(user_agent='evil "agent"'))

    def test_rejects_plain_clf_line(self):
        with pytest.raises(LogFormatError, match="Combined"):
            parse_combined_line(format_clf_line(_record()))


class TestAutoDetection:
    def test_parse_log_line_handles_both(self):
        combined = format_combined_line(_record())
        plain = format_clf_line(_record())
        assert parse_log_line(combined).referrer == "/P1.html"
        assert parse_log_line(plain).referrer is None

    def test_rejects_garbage(self):
        with pytest.raises(LogFormatError):
            parse_log_line("garbage")


class TestWriterIntegration:
    def test_requests_carry_referrers(self):
        requests = [Request(1.0, "u", "P2", referrer="P1"),
                    Request(2.0, "u", "P3")]
        records = requests_to_records(requests, IdentityAddressMap())
        assert records[0].referrer == "/P1.html"
        assert records[1].referrer is None
        assert records[0].user_agent in USER_AGENT_POOL

    def test_user_agent_stable_per_user(self):
        requests = [Request(1.0, "u", "P1"), Request(2.0, "u", "P2"),
                    Request(3.0, "other", "P1")]
        records = requests_to_records(requests, IdentityAddressMap())
        assert records[0].user_agent == records[1].user_agent

    def test_combined_file_roundtrip(self, tmp_path):
        from repro.logs.reader import read_clf_file
        requests = [Request(10.0, "alice", "P1"),
                    Request(70.0, "alice", "P2", referrer="P1")]
        records = requests_to_records(requests, IdentityAddressMap())
        path = str(tmp_path / "combined.log")
        assert write_combined_file(path, records) == 2
        back = records_to_requests(read_clf_file(path))
        assert back[1].referrer == "P1"
        assert back[0].referrer is None

    def test_clf_file_strips_referrers(self, tmp_path):
        from repro.logs.reader import read_clf_file
        from repro.logs.writer import write_clf_file
        requests = [Request(10.0, "alice", "P2", referrer="P1")]
        records = requests_to_records(requests, IdentityAddressMap())
        path = str(tmp_path / "plain.log")
        write_clf_file(path, records)
        back = records_to_requests(read_clf_file(path))
        assert back[0].referrer is None
