"""Unit tests for the log follower (tail -f semantics)."""

from __future__ import annotations

import pytest

from repro.exceptions import LogFormatError
from repro.logs.clf import CLFRecord, format_clf_line
from repro.logs.stream import follow_log


def _line(host, t):
    return format_clf_line(
        CLFRecord(host, float(t), "GET", "/P1.html", "HTTP/1.1", 200,
                  10)) + "\n"


class TestFollowLog:
    def test_reads_existing_content_then_times_out(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(_line("a", 1) + _line("b", 2), encoding="utf-8")
        records = list(follow_log(str(path), poll_interval=0.01,
                                  idle_timeout=0.02))
        assert [record.host for record in records] == ["a", "b"]

    def test_sees_appended_lines(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(_line("a", 1), encoding="utf-8")
        appended = {"done": False}

        def sleeper(duration):
            # instead of sleeping, append once — simulates the server
            # writing while the follower waits.
            if not appended["done"]:
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(_line("b", 2))
                appended["done"] = True

        records = list(follow_log(str(path), poll_interval=0.01,
                                  idle_timeout=0.02, _sleep=sleeper))
        assert [record.host for record in records] == ["a", "b"]

    def test_partial_line_held_until_complete(self, tmp_path):
        path = tmp_path / "access.log"
        full = _line("a", 1)
        path.write_text(full[:20], encoding="utf-8")  # torn write
        state = {"step": 0}

        def sleeper(duration):
            if state["step"] == 0:
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(full[20:])
            state["step"] += 1

        records = list(follow_log(str(path), poll_interval=0.01,
                                  idle_timeout=0.02, _sleep=sleeper))
        assert [record.host for record in records] == ["a"]

    def test_truncation_restarts(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(_line("a", 1) + _line("b", 2), encoding="utf-8")
        state = {"step": 0}

        def sleeper(duration):
            if state["step"] == 0:  # rotate: truncate and write fresh
                path.write_text(_line("c", 3), encoding="utf-8")
            state["step"] += 1

        records = list(follow_log(str(path), poll_interval=0.01,
                                  idle_timeout=0.02, _sleep=sleeper))
        assert [record.host for record in records] == ["a", "b", "c"]

    def test_missing_file_waits_then_times_out(self, tmp_path):
        path = tmp_path / "never.log"
        records = list(follow_log(str(path), poll_interval=0.01,
                                  idle_timeout=0.03))
        assert records == []

    def test_malformed_lines_skipped_or_raised(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text("garbage\n" + _line("a", 1), encoding="utf-8")
        records = list(follow_log(str(path), poll_interval=0.01,
                                  idle_timeout=0.02))
        assert [record.host for record in records] == ["a"]
        with pytest.raises(LogFormatError):
            list(follow_log(str(path), poll_interval=0.01,
                            idle_timeout=0.02, skip_malformed=False))

    def test_feeds_streaming_pipeline(self, tmp_path, small_site):
        """End to end: follow a file into the streaming reconstructor."""
        from repro.logs.reader import records_to_requests
        from repro.streaming import streaming_smart_sra
        path = tmp_path / "access.log"
        lines = [
            format_clf_line(CLFRecord("u1", 0.0, "GET", "/P0.html",
                                      "HTTP/1.1", 200, 1)),
            format_clf_line(CLFRecord("u1", 60.0, "GET", "/P1.html",
                                      "HTTP/1.1", 200, 1)),
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        pipeline = streaming_smart_sra(small_site)
        for record in follow_log(str(path), poll_interval=0.01,
                                 idle_timeout=0.02):
            for request in records_to_requests([record]):
                pipeline.feed(request)
        emitted = pipeline.flush()
        assert sum(len(session) for session in emitted) == 2
