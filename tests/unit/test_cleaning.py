"""Unit tests for log noise injection and the cleaning pipeline."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.logs.cleaning import (
    CleaningStats,
    LogCleaner,
    NoiseInjector,
    ROBOT_HOST_PREFIX,
)
from repro.logs.clf import CLFRecord


def _view(host="1.2.3.4", t=0.0, url="/P1.html", method="GET", status=200):
    return CLFRecord(host, t, method, url, "HTTP/1.1", status, 100)


class TestLogCleaner:
    def test_keeps_clean_page_views(self):
        kept, stats = LogCleaner().clean([_view(), _view(url="/P2.html")])
        assert len(kept) == 2
        assert stats.dropped_total == 0

    def test_drops_embedded_resources(self):
        records = [_view(), _view(url="/img/logo.png"),
                   _view(url="/style.CSS")]
        kept, stats = LogCleaner().clean(records)
        assert len(kept) == 1
        assert stats.dropped_resources == 2

    def test_drops_resource_with_query_string(self):
        kept, stats = LogCleaner().clean([_view(url="/a.js?v=3")])
        assert kept == []
        assert stats.dropped_resources == 1

    def test_drops_errors(self):
        kept, stats = LogCleaner().clean([_view(status=404),
                                          _view(status=301)])
        assert kept == []
        assert stats.dropped_errors == 2

    def test_drops_non_get(self):
        kept, stats = LogCleaner().clean([_view(method="POST")])
        assert kept == []
        assert stats.dropped_methods == 1

    def test_drops_robots(self):
        kept, stats = LogCleaner().clean(
            [_view(host=f"{ROBOT_HOST_PREFIX}1")])
        assert kept == []
        assert stats.dropped_robots == 1

    def test_rules_can_be_disabled(self):
        cleaner = LogCleaner(drop_errors=False, drop_non_get=False,
                             drop_robots=False)
        records = [_view(status=404), _view(method="POST"),
                   _view(host=f"{ROBOT_HOST_PREFIX}0")]
        kept, __ = cleaner.clean(records)
        assert len(kept) == 3

    def test_stats_totals(self):
        stats = CleaningStats(kept=5, dropped_resources=1, dropped_errors=2,
                              dropped_methods=3, dropped_robots=4)
        assert stats.dropped_total == 10


class TestNoiseInjector:
    def test_injection_grows_log(self):
        clean = [_view(t=float(i)) for i in range(10)]
        noisy = NoiseInjector(seed=1).inject(clean)
        assert len(noisy) > len(clean)

    def test_injection_is_deterministic(self):
        clean = [_view(t=float(i)) for i in range(10)]
        assert (NoiseInjector(seed=5).inject(clean)
                == NoiseInjector(seed=5).inject(clean))

    def test_cleaner_inverts_default_injection(self):
        clean = [_view(t=float(i), url=f"/P{i}.html") for i in range(20)]
        noisy = NoiseInjector(seed=2).inject(clean)
        recovered, stats = LogCleaner().clean(noisy)
        assert recovered == clean
        assert stats.dropped_total == len(noisy) - len(clean)

    def test_no_noise_configuration(self):
        injector = NoiseInjector(resources_per_page=0, error_rate=0.0,
                                 post_rate=0.0, robot_requests=0)
        clean = [_view()]
        assert injector.inject(clean) == clean

    def test_empty_input(self):
        assert NoiseInjector(robot_requests=2).inject([]) != []

    @pytest.mark.parametrize("kwargs", [
        {"resources_per_page": -1},
        {"error_rate": 1.5},
        {"post_rate": -0.1},
        {"robot_requests": -2},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            NoiseInjector(**kwargs)
