"""Unit tests for the fault-injection models (repro.faults)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, LogFormatError
from repro.faults import (
    FAULT_MODELS,
    BotTraffic,
    ClockSkew,
    DuplicateLines,
    EncodingErrors,
    GarbleLines,
    ReorderLines,
    RotationSplit,
    TruncateLines,
    build_injectors,
    chaos_stream,
    parse_fault_spec,
)
from repro.logs.clf import CLFRecord, format_clf_line, parse_log_line


def _lines(count=50, hosts=4):
    return [format_clf_line(
        CLFRecord(f"10.0.0.{i % hosts}", 1000.0 + 7 * i, "GET",
                  f"/P{i % 9}.html", "HTTP/1.1", 200, 128))
            for i in range(count)]


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(FAULT_MODELS))
    def test_same_seed_same_output(self, name):
        lines = _lines()
        first = list(FAULT_MODELS[name](0.3, seed=11).apply(lines))
        second = list(FAULT_MODELS[name](0.3, seed=11).apply(lines))
        assert first == second

    @pytest.mark.parametrize("name", sorted(FAULT_MODELS))
    def test_different_seed_diverges(self, name):
        # at a 50% rate over 50 lines, two seeds virtually never agree.
        lines = _lines()
        first = list(FAULT_MODELS[name](0.5, seed=1).apply(lines))
        second = list(FAULT_MODELS[name](0.5, seed=2).apply(lines))
        assert first != second

    def test_zero_rate_is_identity(self):
        lines = _lines()
        for name, cls in FAULT_MODELS.items():
            assert list(cls(0.0, seed=3).apply(lines)) == lines, name

    def test_chain_determinism(self):
        lines = _lines()
        first = list(chaos_stream(lines, seed=9))
        second = list(chaos_stream(lines, seed=9))
        assert first == second


class TestIndividualModels:
    def test_truncate_shortens_lines(self):
        lines = _lines()
        out = list(TruncateLines(1.0, seed=0).apply(lines))
        assert len(out) == len(lines)
        assert all(len(dirty) < len(clean)
                   for dirty, clean in zip(out, lines))

    def test_duplicate_repeats_adjacent(self):
        lines = _lines(10)
        out = list(DuplicateLines(1.0, seed=0).apply(lines))
        assert out == [line for line in lines for _ in range(2)]

    def test_rotation_split_tears_into_two(self):
        lines = _lines(5)
        out = list(RotationSplit(1.0, seed=0).apply(lines))
        assert len(out) == 2 * len(lines)
        for i, line in enumerate(lines):
            assert out[2 * i] + out[2 * i + 1] == line

    def test_reorder_preserves_multiset_and_bound(self):
        lines = _lines(60)
        window = 5
        out = list(ReorderLines(0.4, seed=2, window=window).apply(lines))
        assert sorted(out) == sorted(lines)
        for position, line in enumerate(out):
            assert abs(position - lines.index(line)) <= window

    def test_clock_skew_is_per_host_constant(self):
        lines = _lines(40, hosts=2)
        out = list(ClockSkew(1.0, seed=5, max_skew=100.0).apply(lines))
        offsets = {}
        for clean, dirty in zip(lines, out):
            before = parse_log_line(clean)
            after = parse_log_line(dirty)
            assert after.host == before.host
            offsets.setdefault(before.host,
                               set()).add(after.timestamp - before.timestamp)
        for host, deltas in offsets.items():
            assert len(deltas) == 1, f"host {host} skew not constant"

    def test_clock_skew_passes_garbage_through(self):
        out = list(ClockSkew(1.0, seed=5).apply(["not a log line"]))
        assert out == ["not a log line"]

    def test_bot_lines_parse_and_identify_themselves(self):
        lines = _lines(20)
        out = list(BotTraffic(1.0, seed=4).apply(lines))
        inserted = [line for line in out if line not in lines]
        assert len(inserted) == 20
        for line in inserted:
            record = parse_log_line(line)
            assert record.host.startswith("203.0.113.")
            assert record.user_agent == BotTraffic.USER_AGENT

    def test_encoding_errors_inject_artifacts(self):
        lines = _lines(30)
        out = list(EncodingErrors(1.0, seed=6).apply(lines))
        assert all("\x00" in line or "�" in line for line in out)

    def test_garble_keeps_line_count(self):
        lines = _lines(30)
        out = list(GarbleLines(1.0, seed=8).apply(lines))
        assert len(out) == len(lines)
        assert out != lines


class TestConfiguration:
    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match="rate"):
            TruncateLines(1.5)
        with pytest.raises(ConfigurationError, match="rate"):
            TruncateLines(-0.1)

    def test_reorder_window_validated(self):
        with pytest.raises(ConfigurationError, match="window"):
            ReorderLines(0.5, window=0)

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault model"):
            build_injectors([("wat", 0.1)])

    def test_parse_fault_spec(self):
        assert parse_fault_spec("truncate:0.25") == ("truncate", 0.25)
        name, rate = parse_fault_spec("duplicate")
        assert name == "duplicate" and 0 < rate < 1
        with pytest.raises(ConfigurationError, match="bad fault rate"):
            parse_fault_spec("truncate:lots")
        with pytest.raises(ConfigurationError, match="unknown fault model"):
            parse_fault_spec("gremlins:0.5")


class TestStrictPolicyCompatibility:
    def test_strict_reproduces_exact_legacy_exceptions(self):
        """Corrupt a stream, then check the hardened strict reader raises
        the same LogFormatError, at the same line number, as a plain
        line-by-line parse — byte-for-byte compatibility."""
        from repro.logs.reader import iter_clf_lines
        lines = list(TruncateLines(0.3, seed=13).apply(_lines()))

        legacy_error = None
        for line_number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                parse_log_line(line, line_number=line_number)
            except LogFormatError as error:
                legacy_error = error
                break
        assert legacy_error is not None, "fault injection produced no fault"

        with pytest.raises(LogFormatError) as caught:
            list(iter_clf_lines(lines))
        assert caught.value.line_number == legacy_error.line_number
        assert str(caught.value) == str(legacy_error)
        assert caught.value.line == legacy_error.line
