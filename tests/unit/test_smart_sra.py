"""Unit tests for Smart-SRA: Phase 1, Phase 2, config and the facade.

Anchored on the paper's worked example: Table 3's candidate session over
the Figure 1 topology must yield exactly the three maximal sessions of
Table 4.
"""

from __future__ import annotations

import pytest

from repro.core.config import SmartSRAConfig
from repro.core.phase1 import split_candidates
from repro.core.phase2 import maximal_sessions
from repro.core.smart_sra import Phase1Only, SmartSRA
from repro.exceptions import ConfigurationError, ReconstructionError
from repro.sessions.model import Request
from repro.topology.graph import WebGraph

MIN = 60.0


class TestConfig:
    def test_paper_defaults(self):
        config = SmartSRAConfig()
        assert config.max_duration == 30 * MIN
        assert config.max_gap == 10 * MIN
        assert config.rescue_orphans is False

    @pytest.mark.parametrize("kwargs", [
        {"max_duration": 0.0},
        {"max_gap": -5.0},
        {"max_duration": 100.0, "max_gap": 200.0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            SmartSRAConfig(**kwargs)


class TestPhase1:
    def test_table1_stream_splits_like_combined_time_rules(
            self, table1_stream):
        # Table 1 with both rules: gap rule splits after P13 (14 min gap)
        # and after P34 (15 min gap).
        candidates = split_candidates(table1_stream)
        assert [[r.page for r in c] for c in candidates] == [
            ["P1", "P20", "P13"], ["P49", "P34"], ["P23"]]

    def test_table3_stream_is_single_candidate(self, table3_stream):
        candidates = split_candidates(table3_stream)
        assert len(candidates) == 1
        assert [r.page for r in candidates[0]] == [
            "P1", "P20", "P13", "P49", "P34", "P23"]

    def test_duration_rule_splits(self):
        # gaps of 9 minutes never trip ρ=10min, but the fourth request is
        # 36 > 30 minutes after the first.
        stream = [Request(i * 9 * MIN, "u", f"P{i}") for i in range(5)]
        candidates = split_candidates(stream)
        assert [[r.page for r in c] for c in candidates] == [
            ["P0", "P1", "P2", "P3"], ["P4"]]

    def test_invariants_hold_on_output(self, table1_stream):
        config = SmartSRAConfig()
        for candidate in split_candidates(table1_stream, config):
            assert (candidate[-1].timestamp - candidate[0].timestamp
                    <= config.max_duration)
            for earlier, later in zip(candidate, candidate[1:]):
                assert later.timestamp - earlier.timestamp <= config.max_gap

    def test_rejects_unsorted_stream(self):
        stream = [Request(100.0, "u", "A"), Request(0.0, "u", "B")]
        with pytest.raises(ReconstructionError, match="not sorted"):
            split_candidates(stream)

    def test_empty_stream(self):
        assert split_candidates([]) == []


class TestPhase2PaperExample:
    def test_paper_table4_sessions(self, fig1_topology, table3_stream):
        sessions = maximal_sessions(table3_stream, fig1_topology)
        pages = {session.pages for session in sessions}
        assert pages == {
            ("P1", "P13", "P34", "P23"),
            ("P1", "P13", "P49", "P23"),
            ("P1", "P20", "P23"),
        }

    def test_facade_matches_phase_composition(self, fig1_topology,
                                              table3_stream):
        facade = SmartSRA(fig1_topology).reconstruct_user(table3_stream)
        direct = [session
                  for candidate in split_candidates(table3_stream)
                  for session in maximal_sessions(candidate, fig1_topology)]
        assert {s.pages for s in facade} == {s.pages for s in direct}


class TestPhase2Mechanics:
    def test_sessions_satisfy_topology_rule(self, fig1_topology,
                                            table3_stream):
        for session in maximal_sessions(table3_stream, fig1_topology):
            for left, right in zip(session.pages, session.pages[1:]):
                assert fig1_topology.has_link(left, right)

    def test_sessions_satisfy_timestamp_rule(self, fig1_topology,
                                             table3_stream):
        config = SmartSRAConfig()
        for session in maximal_sessions(table3_stream, fig1_topology):
            for earlier, later in zip(session.requests,
                                      session.requests[1:]):
                assert 0 <= later.timestamp - earlier.timestamp
                assert later.timestamp - earlier.timestamp <= config.max_gap

    def test_unlinked_pages_become_singletons(self):
        graph = WebGraph([("A", "B")], pages=["A", "B", "C"],
                         start_pages=["A"])
        candidate = [Request(0.0, "u", "C"), Request(MIN, "u", "A"),
                     Request(2 * MIN, "u", "B")]
        sessions = maximal_sessions(candidate, graph)
        assert {s.pages for s in sessions} == {("C",), ("A", "B")}

    def test_branching_keeps_all_maximal_extensions(self):
        # A links to both B and C; both are released in round 2 and each
        # extends [A] independently.
        graph = WebGraph([("A", "B"), ("A", "C")], start_pages=["A"])
        candidate = [Request(0.0, "u", "A"), Request(MIN, "u", "B"),
                     Request(2 * MIN, "u", "C")]
        sessions = maximal_sessions(candidate, graph)
        assert {s.pages for s in sessions} == {("A", "B"), ("A", "C")}

    def test_referrer_window_respects_max_gap(self):
        # A links to B but 11 minutes apart: B has no referrer within ρ and
        # both pages are released together as independent sessions.
        graph = WebGraph([("A", "B")], start_pages=["A"])
        candidate = [Request(0.0, "u", "A"), Request(11 * MIN, "u", "B")]
        sessions = maximal_sessions(candidate, graph,
                                    SmartSRAConfig(max_gap=10 * MIN))
        assert {s.pages for s in sessions} == {("A",), ("B",)}

    def test_extension_requires_forward_time(self):
        # C@10 is released first (no referrer); B@5's referrer A is consumed
        # in round 1.  C links to B but lies *later* in time, so [C, B]
        # would violate the timestamp rule and must not be produced.
        graph = WebGraph([("A", "B"), ("C", "B")], start_pages=["A"])
        candidate = [Request(0.0, "u", "A"), Request(5 * MIN, "u", "B"),
                     Request(10 * MIN, "u", "C")]
        sessions = maximal_sessions(candidate, graph)
        for session in sessions:
            times = [r.timestamp for r in session]
            assert times == sorted(times)

    def test_far_future_linked_page_seeds_its_own_session(self):
        # A->C but C is 18 minutes after A: outside the ρ referrer window,
        # so C is released in round 1 and seeds its own session rather than
        # extending [A].
        graph = WebGraph([("A", "B"), ("A", "C")], start_pages=["A"])
        candidate = [Request(0.0, "u", "A"), Request(9 * MIN, "u", "B"),
                     Request(18 * MIN, "u", "C")]
        sessions = maximal_sessions(candidate, graph)
        assert {s.pages for s in sessions} == {("A", "B"), ("C",)}

    def test_no_page_is_ever_dropped(self, fig1_topology, table3_stream):
        # Every released page's last blocker ends an open session one round
        # earlier within ρ, so (provably) no input request is lost; the
        # rescue_orphans safety net therefore never changes the output on
        # chronologically sorted candidates.
        plain = maximal_sessions(table3_stream, fig1_topology)
        rescued = maximal_sessions(table3_stream, fig1_topology,
                                   SmartSRAConfig(rescue_orphans=True))
        assert {s.pages for s in plain} == {s.pages for s in rescued}
        covered = {(r.page, r.timestamp) for s in plain for r in s}
        assert all((r.page, r.timestamp) in covered for r in table3_stream)

    def test_empty_candidate(self, fig1_topology):
        assert maximal_sessions([], fig1_topology) == []

    def test_single_page_candidate(self, fig1_topology):
        sessions = maximal_sessions([Request(0.0, "u", "P1")], fig1_topology)
        assert [s.pages for s in sessions] == [("P1",)]

    def test_pages_unknown_to_topology(self, fig1_topology):
        candidate = [Request(0.0, "u", "X"), Request(MIN, "u", "Y")]
        sessions = maximal_sessions(candidate, fig1_topology)
        assert {s.pages for s in sessions} == {("X",), ("Y",)}


class TestPhase1Only:
    def test_equals_combined_time_rules(self, table1_stream):
        sessions = Phase1Only().reconstruct_user(table1_stream)
        assert [s.pages for s in sessions] == [
            ("P1", "P20", "P13"), ("P49", "P34"), ("P23",)]

    def test_is_registered(self):
        from repro.sessions.base import get_heuristic
        assert isinstance(get_heuristic("phase1"), Phase1Only)


class TestSmartSRAFacade:
    def test_registry_requires_topology(self):
        from repro.sessions.base import get_heuristic
        with pytest.raises(ConfigurationError, match="topology"):
            get_heuristic("heur4")

    def test_multi_user_streams_stay_separate(self, fig1_topology):
        stream = [
            Request(0.0, "alice", "P1"), Request(0.0, "bob", "P1"),
            Request(MIN, "alice", "P13"), Request(MIN, "bob", "P20"),
        ]
        sessions = SmartSRA(fig1_topology).reconstruct(stream)
        assert {s.pages for s in sessions.for_user("alice")} == {
            ("P1", "P13")}
        assert {s.pages for s in sessions.for_user("bob")} == {
            ("P1", "P20")}
