"""The streaming resource governor: budgets, policies, spill, quarantine."""

from __future__ import annotations

import json
import os

import pytest

from repro.exceptions import (
    ConfigurationError,
    LateEventError,
    OverloadError,
)
from repro.sessions.model import Request
from repro.simulator.adversarial import adversarial_workload
from repro.streaming import streaming_phase1, streaming_smart_sra
from repro.streaming.governor import (
    GovernedStreamingReconstructor,
    GovernorConfig,
    SpillStore,
    audit_overload_config,
    parse_memory_budget,
    request_cost,
)
from repro.topology.generators import random_site


def _signature(sessions):
    return sorted((s.user_id, s.pages, s.start_time) for s in sessions)


def _drain(pipeline, requests):
    sessions = pipeline.feed_many(requests)
    sessions.extend(pipeline.flush())
    return sessions


# -- sizes and costs ---------------------------------------------------------


class TestParseMemoryBudget:
    def test_plain_bytes(self):
        assert parse_memory_budget(65536) == 65536
        assert parse_memory_budget("4096") == 4096

    def test_binary_suffixes(self):
        assert parse_memory_budget("64k") == 64 * 1024
        assert parse_memory_budget("8M") == 8 * 1024 * 1024
        assert parse_memory_budget("2g") == 2 * 1024 ** 3
        assert parse_memory_budget("1.5k") == 1536

    @pytest.mark.parametrize("bad", ["", "abc", "12q", "k"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="malformed"):
            parse_memory_budget(bad)

    @pytest.mark.parametrize("bad", ["0", "-4k", 0, -1])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="positive"):
            parse_memory_budget(bad)


class TestRequestCost:
    def test_deterministic_model(self):
        plain = Request(0.0, "u1", "A")
        assert request_cost(plain) == 72 + 2 + 1
        with_referrer = Request(0.0, "u1", "A", referrer="BB")
        assert request_cost(with_referrer) == 72 + 2 + 1 + 2

    def test_cost_is_platform_independent_of_timestamp(self):
        assert (request_cost(Request(0.0, "u", "P"))
                == request_cost(Request(1e9, "u", "P")))


# -- configuration validation ------------------------------------------------


class TestGovernorConfig:
    def test_defaults_are_valid(self):
        config = GovernorConfig()
        assert config.overload_policy == "evict"

    @pytest.mark.parametrize("kwargs,match", [
        (dict(memory_budget=0), "memory_budget"),
        (dict(per_user_cap=1), "per_user_cap"),
        (dict(overload_policy="panic"), "overload_policy"),
        (dict(low_watermark=0.9, high_watermark=0.5), "watermarks"),
        (dict(low_watermark=0.0), "watermarks"),
        (dict(high_watermark=1.5), "watermarks"),
        (dict(overload_policy="block"), "requires spill_dir"),
        (dict(overload_policy="evict", spill_dir="/tmp/x"),
         "only used by"),
        (dict(quarantine_after=0), "quarantine_after"),
        (dict(quarantine_cap=1), "quarantine_cap"),
    ])
    def test_invalid_configurations_rejected(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            GovernorConfig(**kwargs)


# -- pass-through ------------------------------------------------------------


class TestPassThrough:
    def test_unpressured_governor_is_byte_identical(self):
        topology = random_site(40, 4.0, seed=5)
        requests = adversarial_workload(
            topology, crawlers=1, crawler_requests=60, nat_pools=1,
            humans_per_pool=4, normal_agents=3, seed=5)
        plain = _drain(streaming_smart_sra(topology), requests)
        governed_pipeline = streaming_smart_sra(
            topology, governor=GovernorConfig(memory_budget=1 << 30))
        governed = _drain(governed_pipeline, requests)
        assert _signature(governed) == _signature(plain)
        stats = governed_pipeline.stats()
        assert stats.reconciles()
        assert stats.evictions == 0
        assert stats.shed_requests == 0
        assert stats.peak_tracked_bytes > 0

    def test_factory_returns_governed_variant(self):
        pipeline = streaming_phase1(governor=GovernorConfig())
        assert isinstance(pipeline, GovernedStreamingReconstructor)


# -- evict policy ------------------------------------------------------------


class TestEvictPolicy:
    def test_watermark_eviction_is_deterministic(self):
        # cost("uN", one-char page) = 75; budget 300: high 270, low 210.
        governor = GovernorConfig(memory_budget=300)
        pipeline = streaming_phase1(governor=governor)
        for index, user in enumerate(["u1", "u2", "u3"]):
            pipeline.feed(Request(float(index), user, "A"))
        assert pipeline.stats().evictions == 0
        sessions = pipeline.feed(Request(3.0, "u4", "A"))
        stats = pipeline.stats()
        # u1 and u2 (oldest idle) were force-finished down to the low
        # watermark; their candidates came out as sessions.
        assert stats.evictions == 2
        assert stats.evicted_requests == 2
        assert sorted(s.user_id for s in sessions) == ["u1", "u2"]
        assert stats.tracked_bytes <= 210
        assert stats.reconciles()

    def test_peak_stays_bounded_under_adversarial_load(self):
        topology = random_site(40, 4.0, seed=5)
        requests = adversarial_workload(
            topology, crawlers=2, crawler_requests=150, nat_pools=1,
            humans_per_pool=6, normal_agents=4, seed=5)
        governor = GovernorConfig(memory_budget=4096, per_user_cap=16,
                                  quarantine_after=2, quarantine_cap=32)
        pipeline = streaming_smart_sra(topology, governor=governor,
                                       late_policy="drop")
        _drain(pipeline, requests)
        stats = pipeline.stats()
        assert stats.peak_tracked_bytes <= 4096
        assert stats.evictions > 0
        assert stats.reconciles()

    def test_eviction_watermark_boundary(self):
        governor = GovernorConfig(memory_budget=300)
        pipeline = streaming_phase1(governor=governor)
        pipeline.feed(Request(0.0, "u1", "A"))
        pipeline.feed(Request(10.0, "u1", "B"))
        for index, user in enumerate(["u2", "u3", "u4"]):
            pipeline.feed(Request(11.0 + index, user, "A"))
        assert pipeline.stats().evictions > 0   # u1 went first
        # a request exactly AT the evicted tail is legal (tie rule) ...
        pipeline.feed(Request(10.0, "u1", "C"))
        # ... and one strictly before it is late.
        with pytest.raises(LateEventError, match="force-finished"):
            pipeline.feed(Request(9.0, "u1", "D"))

    def test_eviction_late_event_dropped_under_drop_policy(self):
        governor = GovernorConfig(memory_budget=300)
        pipeline = streaming_phase1(governor=governor, late_policy="drop")
        pipeline.feed(Request(0.0, "u1", "A"))
        pipeline.feed(Request(10.0, "u1", "B"))
        for index, user in enumerate(["u2", "u3", "u4"]):
            pipeline.feed(Request(11.0 + index, user, "A"))
        before = pipeline.stats().late_dropped
        assert pipeline.feed(Request(9.0, "u1", "D")) == []
        stats = pipeline.stats()
        assert stats.late_dropped == before + 1
        assert stats.reconciles()


# -- shed / raise policies ---------------------------------------------------


class TestShedPolicy:
    def test_sheds_instead_of_growing(self):
        governor = GovernorConfig(memory_budget=300,
                                  overload_policy="shed")
        pipeline = streaming_phase1(governor=governor)
        for index in range(10):
            pipeline.feed(Request(float(index), f"u{index}", "A"))
        stats = pipeline.stats()
        assert stats.shed_requests > 0
        assert stats.fed_requests == 10      # shed requests count as fed
        assert stats.tracked_bytes <= 300
        assert stats.reconciles()

    def test_shed_never_refuses_a_natural_closure(self):
        # a request that closes its user's candidate by the gap rule
        # frees more than it costs — it must be admitted even at budget.
        governor = GovernorConfig(memory_budget=160,
                                  overload_policy="shed")
        pipeline = streaming_phase1(governor=governor)
        pipeline.feed(Request(0.0, "u1", "A"))
        pipeline.feed(Request(1.0, "u1", "B"))
        sessions = pipeline.feed(Request(5000.0, "u1", "C"))
        stats = pipeline.stats()
        assert stats.shed_requests == 0
        assert [s.pages for s in sessions] == [("A", "B")]
        assert stats.reconciles()


class TestRaisePolicy:
    def test_raises_typed_overload_error(self):
        governor = GovernorConfig(memory_budget=300,
                                  overload_policy="raise")
        pipeline = streaming_phase1(governor=governor)
        for index in range(4):
            pipeline.feed(Request(float(index), f"u{index}", "A"))
        with pytest.raises(OverloadError, match="over the 300-byte"):
            pipeline.feed(Request(9.0, "u9", "A"))
        # accepted state is untouched: the ledger still reconciles and
        # the stream keeps working after a flush makes room.
        assert pipeline.stats().reconciles()
        pipeline.flush(6000.0)
        pipeline.feed(Request(6000.0, "u9", "A"))
        assert pipeline.stats().reconciles()


# -- spill store and block policy --------------------------------------------


class TestSpillStore:
    def test_round_trip_preserves_requests(self, tmp_path):
        store = SpillStore(str(tmp_path))
        requests = (Request(1.0, "u", "A", referrer="B"),
                    Request(2.0, "u", "C", synthetic=True))
        path = store.spill("u", requests)
        assert os.path.exists(path)
        assert store.pending() == 1
        assert store.restore("u") == requests
        assert store.pending() == 0          # restore consumes the file

    def test_missing_user_restores_none(self, tmp_path):
        assert SpillStore(str(tmp_path)).restore("ghost") is None

    def test_corrupted_payload_is_rejected(self, tmp_path):
        store = SpillStore(str(tmp_path))
        path = store.spill("u", (Request(1.0, "u", "A"),))
        document = json.loads(open(path, encoding="utf-8").read())
        document["requests"][0][1] = "tampered"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        assert store.restore("u") is None
        assert store.pending() == 0          # damaged files are removed

    def test_foreign_schema_is_rejected(self, tmp_path):
        store = SpillStore(str(tmp_path))
        path = store.spill("u", (Request(1.0, "u", "A"),))
        document = json.loads(open(path, encoding="utf-8").read())
        document["schema"] = 999
        document["digest"] = None
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        assert store.restore("u") is None


class TestBlockPolicy:
    def _governor(self, tmp_path, budget=800):
        return GovernorConfig(memory_budget=budget,
                              overload_policy="block",
                              spill_dir=str(tmp_path / "spill"))

    def test_spills_cold_buffers_and_restores_them(self, tmp_path):
        pipeline = streaming_phase1(governor=self._governor(tmp_path))
        for index in range(12):
            pipeline.feed(Request(float(index), f"u{index % 5}", "A"))
        mid = pipeline.stats()
        assert mid.spill_writes > 0
        assert mid.peak_tracked_bytes <= 800
        # the spilled users come back transparently on their next request
        for index in range(12, 24):
            pipeline.feed(Request(float(index), f"u{index % 5}", "A"))
        pipeline.flush()
        stats = pipeline.stats()
        assert stats.spill_restores > 0
        assert stats.spill_lost == 0
        assert stats.spilled_requests == 0   # drained at end of stream
        assert stats.reconciles()
        assert SpillStore(str(tmp_path / "spill")).pending() == 0

    def test_spilled_requests_are_not_lost(self, tmp_path):
        pipeline = streaming_phase1(governor=self._governor(tmp_path))
        fed = [Request(float(i), f"u{i % 6}", "A") for i in range(30)]
        sessions = _drain(pipeline, fed)
        stats = pipeline.stats()
        assert stats.reconciles()
        emitted = sum(len(s.requests) for s in sessions)
        assert emitted == len(fed)           # every request reaches output

    def test_disk_corruption_is_counted_not_trusted(self, tmp_path):
        governor = self._governor(tmp_path)
        pipeline = streaming_phase1(governor=governor)
        for index in range(12):
            pipeline.feed(Request(float(index), f"u{index % 5}", "A"))
        store = SpillStore(governor.spill_dir)
        stats = pipeline.stats()
        assert stats.spill_writes > 0
        for name in os.listdir(governor.spill_dir):
            with open(os.path.join(governor.spill_dir, name), "w",
                      encoding="utf-8") as handle:
                handle.write("{not json")
        assert store.pending() > 0
        pipeline.flush()
        stats = pipeline.stats()
        assert stats.spill_lost > 0
        assert stats.reconciles()            # the loss is accounted


# -- quarantine --------------------------------------------------------------


class TestQuarantine:
    def _pipeline(self):
        governor = GovernorConfig(memory_budget=1 << 20, per_user_cap=4,
                                  quarantine_after=2, quarantine_cap=6)
        return streaming_phase1(governor=governor)

    def test_repeat_cap_offender_is_quarantined(self):
        pipeline = self._pipeline()
        for index in range(8):               # two cap strikes of 4
            pipeline.feed(Request(float(index), "bot", "A"))
        stats = pipeline.stats()
        assert stats.cap_strikes == 2
        assert stats.quarantined_users == 1
        for index in range(8, 11):
            pipeline.feed(Request(float(index), "bot", "A"))
        stats = pipeline.stats()
        assert stats.quarantine_buffered == 3
        assert stats.reconciles()

    def test_quarantine_channel_flushes_at_cap(self):
        pipeline = self._pipeline()
        sessions = []
        for index in range(8 + 6):
            sessions.extend(pipeline.feed(Request(float(index), "bot", "A")))
        stats = pipeline.stats()
        assert stats.quarantine_flushes == 1
        assert stats.quarantine_buffered == 0
        assert stats.quarantined_users == 1  # channel reopens, still jailed
        assert stats.reconciles()

    def test_flushed_chunks_respect_per_user_cap(self):
        # a quarantine flush must never hand the finisher a candidate
        # longer than per_user_cap (finisher cost is superlinear).
        seen = []
        governor = GovernorConfig(memory_budget=1 << 20, per_user_cap=4,
                                  quarantine_after=1, quarantine_cap=12)
        pipeline = GovernedStreamingReconstructor(
            lambda candidate: seen.append(len(candidate)) or [],
            governor=governor)
        for index in range(40):
            pipeline.feed(Request(float(index), "bot", "A"))
        pipeline.flush()
        assert seen and max(seen) <= 4

    def test_end_of_stream_drains_quarantine(self):
        pipeline = self._pipeline()
        for index in range(11):
            pipeline.feed(Request(float(index), "bot", "A"))
        assert pipeline.stats().quarantine_buffered > 0
        sessions = pipeline.flush()
        stats = pipeline.stats()
        assert stats.quarantine_buffered == 0
        assert stats.quarantined_users == 0
        assert stats.reconciles()
        assert sum(len(s.requests) for s in sessions) > 0

    def test_quarantined_stream_ordering_still_enforced(self):
        pipeline = self._pipeline()
        for index in range(9):
            pipeline.feed(Request(float(index), "bot", "A"))
        # t=7.5 clears the eviction watermark (7.0) but lands behind the
        # quarantine channel's tail (8.0): the channel enforces its own
        # ordering contract.
        with pytest.raises(LateEventError, match="quarantined"):
            pipeline.feed(Request(7.5, "bot", "B"))
        # behind the eviction watermark itself is late too, earlier check.
        with pytest.raises(LateEventError, match="force-finished"):
            pipeline.feed(Request(6.0, "bot", "B"))


# -- mem-pressure fault ------------------------------------------------------


class TestMemPressureFault:
    def test_armed_fault_shrinks_the_effective_budget(self):
        from repro.faults.execution import use_execution_faults
        requests = [Request(float(i), f"u{i}", "A") for i in range(12)]
        governor = GovernorConfig(memory_budget=600)
        with use_execution_faults("mem-pressure:0:0.5"):
            pressured = streaming_phase1(governor=governor)
            pressured.feed_many(requests)
        relaxed = streaming_phase1(governor=governor)
        relaxed.feed_many(requests)
        assert (pressured.stats().evictions
                > relaxed.stats().evictions)
        # effective budget is 300; admission may transiently overshoot
        # the high watermark by at most one request before rebalancing.
        assert (pressured.stats().peak_tracked_bytes
                <= 300 + request_cost(requests[-1]))
        assert pressured.stats().reconciles()


# -- overload selftest (repro chaos --overload-selftest) ---------------------


class TestOverloadSelftest:
    def test_selftest_is_bounded_and_reconciles(self):
        from repro.faults import run_overload_selftest
        result = run_overload_selftest(
            ["mem-pressure:500:0.5", "burst:800:96"], budget=48 * 1024,
            seed=0)
        assert result["bounded"]
        assert result["reconciled"]
        assert result["invariant_clean"]
        assert result["stats"]["peak_tracked_bytes"] <= 48 * 1024


# -- configuration audit (repro doctor) --------------------------------------


class TestOverloadAudit:
    def test_sane_configuration_passes(self):
        audit = audit_overload_config(
            GovernorConfig(memory_budget=64 * 1024, per_user_cap=64))
        assert audit.ok
        assert "verdict: ok" in audit.render()
        assert audit.to_dict()["ok"] is True

    def test_cap_swallowing_the_budget_fails(self):
        audit = audit_overload_config(
            GovernorConfig(memory_budget=4096, per_user_cap=512))
        assert not audit.ok
        assert any(level == "FAIL" and "per_user_cap" in message
                   for level, message in audit.checks)

    def test_tiny_budget_warns(self):
        audit = audit_overload_config(
            GovernorConfig(memory_budget=4096, per_user_cap=8))
        assert any(level == "warn" and "64KiB" in message
                   for level, message in audit.checks)

    def test_unwritable_spill_dir_fails(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("a file, not a directory")
        audit = audit_overload_config(GovernorConfig(
            memory_budget=1 << 20, overload_policy="block",
            spill_dir=str(blocker / "sub")))
        assert not audit.ok
        assert any("not writable" in message
                   for _, message in audit.checks)

    def test_writable_spill_dir_passes(self, tmp_path):
        audit = audit_overload_config(GovernorConfig(
            memory_budget=1 << 20, overload_policy="block",
            spill_dir=str(tmp_path / "spill")))
        assert audit.ok
