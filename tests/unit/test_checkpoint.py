"""Unit tests for the checkpoint store (``repro.parallel.checkpoint``)."""

from __future__ import annotations

import json
import os

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import use_execution_faults
from repro.parallel import CHECKPOINT_SCHEMA, CheckpointStore


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(str(tmp_path / "ckpt"))


class TestManifestLifecycle:
    def test_begin_creates_running_manifest(self, store):
        manifest = store.begin("fp-1", label="demo")
        assert manifest == {"schema": CHECKPOINT_SCHEMA,
                            "fingerprint": "fp-1", "label": "demo",
                            "status": "running"}
        assert store.read_manifest() == manifest

    def test_mark_transitions_status(self, store):
        store.begin("fp-1")
        store.mark("interrupted")
        assert store.read_manifest()["status"] == "interrupted"
        store.mark("complete")
        assert store.read_manifest()["status"] == "complete"
        with pytest.raises(ConfigurationError, match="status"):
            store.mark("exploded")

    def test_begin_refuses_existing_run_without_resume(self, store):
        store.begin("fp-1")
        with pytest.raises(ConfigurationError, match="--resume"):
            store.begin("fp-1")

    def test_begin_refuses_fingerprint_mismatch(self, store):
        store.begin("fp-1")
        with pytest.raises(ConfigurationError, match="fingerprint"):
            store.begin("fp-2", resume=True)

    def test_begin_refuses_schema_mismatch(self, store):
        store.begin("fp-1")
        manifest = store.read_manifest()
        manifest["schema"] = CHECKPOINT_SCHEMA + 1
        with open(store.manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ConfigurationError, match="schema"):
            store.begin("fp-1", resume=True)

    def test_resume_without_manifest_but_with_units_refused(self, store):
        store.begin("fp-1")
        store.save_unit("trial", "a", {"x": 1})
        os.unlink(store.manifest_path)
        with pytest.raises(ConfigurationError, match="manifest"):
            store.begin("fp-1", resume=True)


class TestUnits:
    def test_save_load_roundtrip(self, store):
        store.begin("fp-1")
        path = store.save_unit("trial", "stp[0]=0.3",
                               {"value": 0.3, "rows": [1, 2]},
                               obs={"counters": {"a": 1}})
        assert os.path.isfile(path)
        unit = store.load_unit("trial", "stp[0]=0.3")
        assert unit["payload"] == {"value": 0.3, "rows": [1, 2]}
        assert unit["obs"] == {"counters": {"a": 1}}
        # no temp-file stragglers after an atomic write
        assert not [name for name in os.listdir(store.directory)
                    if name.endswith(".tmp")]

    def test_load_missing_and_wrong_kind(self, store):
        store.begin("fp-1")
        store.save_unit("trial", "a", {"x": 1})
        assert store.load_unit("trial", "b") is None
        assert store.load_unit("other", "a") is None

    def test_corrupted_unit_rejected(self, store):
        store.begin("fp-1")
        path = store.save_unit("trial", "a", {"x": 1})
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        document["payload"]["x"] = 2  # digest now stale
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        assert store.load_unit("trial", "a") is None

    def test_unparseable_unit_rejected(self, store):
        store.begin("fp-1")
        path = store.save_unit("trial", "a", {"x": 1})
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert store.load_unit("trial", "a") is None

    def test_completed_units_filters_by_kind(self, store):
        store.begin("fp-1")
        store.save_unit("trial", "a", {"x": 1})
        store.save_unit("trial", "b", {"x": 2})
        store.save_unit("meta", "m", {"x": 3})
        assert len(store.completed_units()) == 3
        trials = store.completed_units("trial")
        assert sorted(unit["key"] for unit in trials) == ["a", "b"]

    def test_corrupt_checkpoint_fault_breaks_second_write(self, store):
        store.begin("fp-1")
        with use_execution_faults("corrupt-checkpoint:1"):
            store.save_unit("trial", "a", {"x": 1})
            store.save_unit("trial", "b", {"x": 2})
        assert store.load_unit("trial", "a") is not None
        assert store.load_unit("trial", "b") is None  # ordinal 1 corrupted


class TestDoctor:
    def test_clean_directory_is_ok(self, store):
        store.begin("fp-1", label="demo")
        store.save_unit("trial", "a", {"x": 1})
        store.mark("complete")
        report = store.validate()
        assert report.ok
        assert report.valid == [("trial", "a")]
        assert report.corrupt == []
        assert "verdict: ok" in report.render()
        assert report.to_dict()["ok"] is True

    def test_corruption_and_orphans_classified(self, store, tmp_path):
        store.begin("fp-1")
        path = store.save_unit("trial", "a", {"x": 1})
        store.save_unit("trial", "b", {"x": 2})
        # corrupt one unit in place
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        document["digest"] = "0" * 64
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        # a schema-mismatched unit
        old = {"schema": CHECKPOINT_SCHEMA + 7, "kind": "trial",
               "key": "c", "payload": None, "obs": None, "digest": "x"}
        with open(os.path.join(store.directory, "trial__old.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(old, handle)
        # an interrupted temp-file straggler and a stray file
        open(os.path.join(store.directory, "junk.tmp"), "w").close()
        open(os.path.join(store.directory, "README"), "w").close()
        report = store.validate()
        assert not report.ok
        assert report.valid == [("trial", "b")]
        assert len(report.corrupt) == 1
        assert report.schema_mismatch == ["trial__old.json"]
        assert sorted(report.orphans) == ["README", "junk.tmp"]
        rendered = report.render()
        assert "BAD" in rendered and "OLD" in rendered
        assert "verdict: DEGRADED" in rendered

    def test_missing_manifest_not_ok(self, store):
        store.begin("fp-1")
        os.unlink(store.manifest_path)
        report = store.validate()
        assert not report.ok
        assert "MISSING" in report.render()
