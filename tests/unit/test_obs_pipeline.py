"""Integration tests: the pipeline's instrumentation and the CLI flags.

Every instrumented stage is driven once with an enabled registry and its
counters checked against the stage's own return values — the two
accounting systems (library results, metrics registry) must agree.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import SmartSRA
from repro.evaluation import run_trial
from repro.logs import IngestReport, ingest_lines
from repro.logs.ingest import report_from_registry
from repro.logs.stream import FollowStats, follow_log
from repro.obs import Registry, use_registry
from repro.sessions import DurationHeuristic, Request
from repro.simulator import SimulationConfig, simulate_population
from repro.streaming import streaming_phase1
from repro.topology import random_site

GOOD = ('10.0.0.1 - - [10/Oct/2023:13:55:36 +0000] '
        '"GET /P1.html HTTP/1.1" 200 2326\n')
BAD = "this is not a log line\n"


class TestIngestInstrumentation:
    def test_counters_reconcile_with_report(self):
        registry = Registry()
        report = IngestReport()
        lines = [GOOD, "\n", BAD, GOOD]
        records = list(ingest_lines(lines, policy="skip", report=report,
                                    registry=registry))
        assert len(records) == 2
        assert registry.value("ingest.lines.total") == report.total_lines == 4
        assert registry.value("ingest.lines.parsed") == report.parsed == 2
        assert registry.value("ingest.lines.blank") == report.blank == 1
        assert registry.value("ingest.lines.dropped") == report.dropped == 1
        assert (registry.value("ingest.bytes.total")
                == sum(len(line) for line in lines))
        assert registry.value("ingest.faults", **{"class": "garbage"}) == 1

    def test_report_from_registry_round_trip(self):
        registry = Registry()
        report = IngestReport()
        list(ingest_lines([GOOD, BAD, "\n"], policy="skip", report=report,
                          registry=registry))
        rebuilt = report_from_registry(registry)
        assert rebuilt.policy == "skip"
        assert rebuilt.total_lines == report.total_lines
        assert rebuilt.parsed == report.parsed
        assert rebuilt.blank == report.blank
        assert rebuilt.quarantined == report.quarantined
        assert rebuilt.dropped == report.dropped
        assert rebuilt.repaired == report.repaired
        assert rebuilt.fault_counts == report.fault_counts
        assert rebuilt.reconciles()

    def test_mixed_policies_are_reported_as_mixed(self):
        registry = Registry()
        list(ingest_lines([GOOD], policy="skip", registry=registry))
        list(ingest_lines([GOOD], policy="repair", registry=registry))
        assert report_from_registry(registry).policy == "mixed"

    def test_ambient_registry_is_picked_up(self):
        registry = Registry()
        with use_registry(registry):
            list(ingest_lines([GOOD, GOOD]))
        assert registry.value("ingest.lines.parsed") == 2


class TestFollowInstrumentation:
    def test_follow_stats_from_registry_matches(self, tmp_path):
        log = tmp_path / "grow.log"
        log.write_text(GOOD + BAD + "\n" + GOOD)
        registry = Registry()
        stats = FollowStats()
        records = list(follow_log(str(log), idle_timeout=0.0,
                                  _sleep=lambda _t: None, stats=stats,
                                  registry=registry))
        assert len(records) == 2
        rebuilt = FollowStats.from_registry(registry)
        assert rebuilt.lines == stats.lines == 4
        assert rebuilt.parsed == stats.parsed == 2
        assert rebuilt.blank == stats.blank == 1
        assert rebuilt.malformed == stats.malformed == 1
        assert rebuilt.fault_counts == stats.fault_counts


class TestStreamingInstrumentation:
    def test_stream_counters(self):
        registry = Registry()
        pipeline = streaming_phase1(dedup=True, registry=registry)
        requests = [Request(float(i), "u1", f"P{i}") for i in range(3)]
        for request in requests:
            pipeline.feed(request)
        pipeline.feed(Request(2.0, "u1", "P2"))     # adjacent duplicate
        sessions = pipeline.flush()
        assert registry.value("stream.requests.fed") == 3
        assert registry.value("stream.duplicates_dropped") == 1
        assert (registry.value("stream.sessions.emitted")
                == len(sessions) > 0)
        assert registry.value("stream.buffered_requests") == 0


class TestSessionizerInstrumentation:
    def test_smart_sra_phase_counters_and_timers(self):
        site = random_site(30, 4, seed=3)
        requests = [Request(5.0 * i, "u1", page)
                    for i, page in enumerate(sorted(site.pages)[:8])]
        registry = Registry()
        with use_registry(registry):
            sessions = SmartSRA(site).reconstruct(requests)
        snapshot = registry.snapshot()
        assert registry.value("sessions.phase1.candidates") >= 1
        assert registry.value("sessions.phase1.requests") == len(requests)
        assert (registry.value("sessions.reconstructed",
                               heuristic="heur4") == len(sessions))
        assert snapshot["histograms"]["sessions.phase1.seconds"]["count"] >= 1
        assert snapshot["histograms"]["sessions.phase2.seconds"]["count"] >= 1
        phase2 = registry.value("sessions.phase2.sessions")
        assert phase2 == len(sessions)

    def test_session_length_histogram(self):
        requests = [Request(5.0 * i, "u1", f"P{i}") for i in range(4)]
        registry = Registry()
        with use_registry(registry):
            sessions = DurationHeuristic().reconstruct(requests)
        series = "sessions.length{heuristic=heur1}"
        data = registry.snapshot()["histograms"][series]
        assert data["count"] == len(sessions)
        assert data["sum"] == sum(len(session) for session in sessions)


class TestSimulatorAndHarnessInstrumentation:
    def test_end_to_end_counters_match_reports(self):
        site = random_site(40, 4, seed=3)
        config = SimulationConfig(n_agents=12, seed=1)
        registry = Registry()
        with use_registry(registry):
            trial = run_trial(site, config)
        assert registry.value("eval.trials") == 1
        assert (registry.value("sim.sessions.generated")
                == len(trial.simulation.ground_truth))
        assert (registry.value("sim.requests.logged")
                == len(trial.simulation.log_requests))
        assert (registry.value("eval.sessions.real")
                == len(trial.simulation.ground_truth))
        for name, report in trial.reports.items():
            assert (registry.value("eval.sessions.reconstructed",
                                   heuristic=name)
                    == report.reconstructed_count)
            assert (registry.value("eval.accuracy", heuristic=name)
                    == report.matched_accuracy)


@pytest.fixture()
def small_log(tmp_path):
    """A small simulated site + log, via the CLI itself."""
    site = str(tmp_path / "site.json")
    log = str(tmp_path / "access.log")
    truth = str(tmp_path / "truth.json")
    assert main(["topology", "--pages", "30", "--out-degree", "4",
                 "--seed", "3", "--output", site]) == 0
    assert main(["simulate", "--topology", site, "--agents", "15",
                 "--seed", "1", "--log", log, "--sessions", truth]) == 0
    return {"site": site, "log": log, "truth": truth, "dir": tmp_path}


class TestCLIObservability:
    def test_every_subcommand_accepts_obs_flags(self):
        from repro.cli import build_parser
        parser = build_parser()
        commands = parser._actions[-1].choices
        for name, sub in commands.items():
            options = {option for action in sub._actions
                       for option in action.option_strings}
            assert "--metrics" in options, name
            assert "--trace" in options, name

    def test_metrics_file_export(self, small_log, capsys):
        out = str(small_log["dir"] / "metrics.json")
        assert main(["ingest", "--log", small_log["log"],
                     "--error-policy", "skip", "--metrics", out]) == 0
        snapshot = json.loads(open(out, encoding="utf-8").read())
        assert snapshot["version"] == 1
        assert snapshot["counters"]["ingest.lines.total"] > 0
        assert "wrote" in capsys.readouterr().err

    def test_metrics_prom_export(self, small_log):
        out = str(small_log["dir"] / "metrics.prom")
        assert main(["ingest", "--log", small_log["log"],
                     "--error-policy", "skip", "--metrics", out]) == 0
        text = open(out, encoding="utf-8").read()
        assert "# TYPE repro_ingest_lines_total counter" in text

    def test_metrics_stdout_reserves_stdout(self, small_log, capsys):
        assert main(["ingest", "--log", small_log["log"],
                     "--error-policy", "skip", "--metrics", "-"]) == 0
        captured = capsys.readouterr()
        snapshot = json.loads(captured.out)   # stdout is pure JSON
        assert snapshot["counters"]["ingest.lines.total"] > 0
        assert "parsed" in captured.err       # report moved to stderr

    def test_trace_file_has_cli_span(self, small_log):
        trace = str(small_log["dir"] / "trace.jsonl")
        assert main(["reconstruct", "--log", small_log["log"],
                     "--heuristic", "smart-sra",
                     "--topology", small_log["site"],
                     "--output", str(small_log["dir"] / "out.json"),
                     "--trace", trace]) == 0
        records = [json.loads(line)
                   for line in open(trace, encoding="utf-8")]
        roots = [record for record in records
                 if record["type"] == "span" and record["parent"] is None]
        assert [root["name"] for root in roots] == ["cli.reconstruct"]

    def test_ingest_metrics_reconcile_with_report(self, small_log, capsys):
        assert main(["ingest", "--log", small_log["log"],
                     "--error-policy", "repair", "--metrics", "-"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        counters = snapshot["counters"]
        assert (counters["ingest.lines.parsed"]
                + counters.get("ingest.lines.blank", 0)
                + counters.get("ingest.lines.quarantined", 0)
                + counters.get("ingest.lines.dropped", 0)
                == counters["ingest.lines.total"])


class TestStatsSnapshot:
    @pytest.fixture()
    def snapshot_file(self, tmp_path):
        registry = Registry()
        registry.counter("ingest.lines.total").inc(9)
        registry.histogram("h", (1.0, 2.0)).observe(1.5)
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(registry.snapshot()))
        return str(path)

    def test_table_rendering(self, snapshot_file, capsys):
        assert main(["stats", "--snapshot", snapshot_file]) == 0
        out = capsys.readouterr().out
        assert "ingest.lines.total" in out and "9" in out

    def test_json_rendering(self, snapshot_file, capsys):
        assert main(["stats", "--snapshot", snapshot_file,
                     "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["version"] == 1

    def test_prom_rendering(self, snapshot_file, capsys):
        assert main(["stats", "--snapshot", snapshot_file,
                     "--format", "prom"]) == 0
        assert ("repro_ingest_lines_total 9"
                in capsys.readouterr().out)

    def test_requires_exactly_one_source(self, capsys, tmp_path):
        assert main(["stats"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_rejects_non_snapshot_json(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text('{"pages": []}')
        assert main(["stats", "--snapshot", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestUniformErrorHandling:
    """Every subcommand exits non-zero with a one-line ``error:`` message
    on missing or malformed input — never a traceback."""

    @pytest.mark.parametrize("argv", [
        ["ingest", "--log", "/nonexistent/access.log"],
        ["reconstruct", "--log", "/nonexistent/access.log",
         "--heuristic", "duration", "--output", "/tmp/out.json"],
        ["stats", "--sessions", "/nonexistent/sessions.json"],
        ["stats", "--snapshot", "/nonexistent/snap.json"],
        ["simulate", "--topology", "/nonexistent/site.json",
         "--agents", "5", "--log", "/tmp/x.log",
         "--sessions", "/tmp/x.json"],
        ["mine", "--sessions", "/nonexistent/sessions.json"],
    ])
    def test_missing_inputs(self, argv, capsys):
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_malformed_json_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["stats", "--snapshot", str(bad)]) == 1
        assert capsys.readouterr().err.startswith("error: ")
