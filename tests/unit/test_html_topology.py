"""Unit tests for the static-HTML topology extractor."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topology.html import extract_links, graph_from_html_dir


def _page(*hrefs: str) -> str:
    links = "".join(f'<a href="{href}">x</a>' for href in hrefs)
    return f"<html><body><h1>t</h1>{links}</body></html>"


@pytest.fixture()
def site_dir(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "index.html").write_text(
        _page("about.html", "docs/guide.html", "http://external.example/x",
              "mailto:a@b", "#anchor"), encoding="utf-8")
    (tmp_path / "about.html").write_text(
        _page("/index.html", "missing.html"), encoding="utf-8")
    (tmp_path / "docs" / "guide.html").write_text(
        _page("../index.html", "api.html?v=2"), encoding="utf-8")
    (tmp_path / "docs" / "api.html").write_text(_page(), encoding="utf-8")
    (tmp_path / "style.css").write_text("body{}", encoding="utf-8")
    return str(tmp_path)


class TestExtractLinks:
    def test_collects_hrefs_in_order(self):
        assert extract_links(_page("a.html", "b.html")) == ["a.html",
                                                            "b.html"]

    def test_ignores_other_tags(self):
        html = '<img src="x.png"><link href="s.css"><a href="a.html">x</a>'
        assert extract_links(html) == ["a.html"]

    def test_handles_malformed_html(self):
        assert extract_links('<a href="a.html"><b>unclosed') == ["a.html"]


class TestGraphFromHtmlDir:
    def test_pages_are_relative_ids(self, site_dir):
        graph = graph_from_html_dir(site_dir)
        assert graph.pages == {"index", "about", "docs/guide", "docs/api"}

    def test_index_is_start_page(self, site_dir):
        graph = graph_from_html_dir(site_dir)
        assert graph.start_pages == {"index"}

    def test_relative_links_resolve(self, site_dir):
        graph = graph_from_html_dir(site_dir)
        assert graph.has_link("index", "docs/guide")
        assert graph.has_link("docs/guide", "docs/api")   # sibling link
        assert graph.has_link("docs/guide", "index")      # ../ link

    def test_absolute_links_resolve(self, site_dir):
        graph = graph_from_html_dir(site_dir)
        assert graph.has_link("about", "index")

    def test_external_and_missing_dropped(self, site_dir):
        graph = graph_from_html_dir(site_dir)
        assert graph.out_degree("about") == 1  # missing.html dropped
        targets = graph.successors("index")
        assert targets == {"about", "docs/guide"}

    def test_query_strings_stripped(self, site_dir):
        graph = graph_from_html_dir(site_dir)
        assert graph.has_link("docs/guide", "docs/api")

    def test_no_index_falls_back_to_all_pages(self, tmp_path):
        (tmp_path / "a.html").write_text(_page("b.html"), encoding="utf-8")
        (tmp_path / "b.html").write_text(_page(), encoding="utf-8")
        graph = graph_from_html_dir(str(tmp_path))
        assert graph.start_pages == {"a", "b"}

    def test_rejects_non_directory(self, tmp_path):
        with pytest.raises(TopologyError, match="not a directory"):
            graph_from_html_dir(str(tmp_path / "nope"))

    def test_rejects_empty_directory(self, tmp_path):
        with pytest.raises(TopologyError, match="no HTML"):
            graph_from_html_dir(str(tmp_path))

    def test_usable_by_simulator(self, site_dir):
        """End-to-end sanity: agents can browse the extracted site."""
        import random

        from repro.simulator.agent import simulate_agent
        from repro.simulator.config import SimulationConfig
        graph = graph_from_html_dir(site_dir)
        trace = simulate_agent("u", graph,
                               SimulationConfig(stp=0.01, n_agents=1),
                               random.Random(1))
        assert trace.real_sessions
        assert trace.real_sessions[0].pages[0] == "index"
