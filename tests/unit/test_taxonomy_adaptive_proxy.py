"""Unit tests for the error taxonomy, the adaptive-timeout heuristic, and
the proxy-cache / parallel simulation options."""

from __future__ import annotations

import pytest

from repro.evaluation.taxonomy import (
    ErrorCategory,
    classify_session,
    error_breakdown,
    render_breakdown,
)
from repro.exceptions import ConfigurationError, EvaluationError, SimulationError
from repro.sessions.adaptive import AdaptiveTimeoutHeuristic
from repro.sessions.model import Request, Session, SessionSet
from repro.simulator.config import SimulationConfig
from repro.simulator.population import simulate_population


def _s(pages, user="u0"):
    return Session.from_pages(pages, user_id=user)


class TestClassifySession:
    def test_exact(self):
        assert classify_session(_s(["A", "B"]), [_s(["A", "B"])]) \
            is ErrorCategory.EXACT

    def test_merged(self):
        assert classify_session(_s(["A", "B"]), [_s(["X", "A", "B"])]) \
            is ErrorCategory.MERGED

    def test_scattered(self):
        assert classify_session(_s(["A", "B"]),
                                [_s(["A"]), _s(["B"])]) \
            is ErrorCategory.SCATTERED

    def test_interrupted_capture_is_scattered(self):
        assert classify_session(_s(["A", "B"]), [_s(["A", "X", "B"])]) \
            is ErrorCategory.SCATTERED

    def test_partial(self):
        assert classify_session(_s(["A", "B"]), [_s(["A", "X"])]) \
            is ErrorCategory.PARTIAL

    def test_lost(self):
        assert classify_session(_s(["A", "B"]), [_s(["X", "Y"])]) \
            is ErrorCategory.LOST
        assert classify_session(_s(["A"]), []) is ErrorCategory.LOST

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            classify_session(Session([]), [])


class TestErrorBreakdown:
    def test_counts_all_categories(self):
        truth = SessionSet([
            _s(["A", "B"], "u1"),     # exact
            _s(["C", "D"], "u1"),     # merged
            _s(["E", "F"], "u2"),     # partial (only E present)
        ])
        recon = SessionSet([
            _s(["A", "B"], "u1"),
            _s(["X", "C", "D"], "u1"),
            _s(["E"], "u2"),
        ])
        breakdown = error_breakdown(truth, recon)
        assert breakdown[ErrorCategory.EXACT] == 1
        assert breakdown[ErrorCategory.MERGED] == 1
        assert breakdown[ErrorCategory.PARTIAL] == 1
        assert breakdown[ErrorCategory.LOST] == 0
        assert sum(breakdown.values()) == 3

    def test_user_isolation(self):
        truth = SessionSet([_s(["A"], "alice")])
        recon = SessionSet([_s(["A"], "bob")])
        breakdown = error_breakdown(truth, recon)
        assert breakdown[ErrorCategory.LOST] == 1

    def test_empty_truth_rejected(self):
        with pytest.raises(EvaluationError):
            error_breakdown(SessionSet([]), SessionSet([]))

    def test_render(self):
        truth = SessionSet([_s(["A"])])
        text = render_breakdown(
            {"h": error_breakdown(truth, truth)})
        assert "exact" in text
        assert "100.0%" in text

    def test_render_empty_rejected(self):
        with pytest.raises(EvaluationError):
            render_breakdown({})


class TestAdaptiveTimeout:
    def test_fast_user_gets_tight_cutoff(self):
        # uniform 10s gaps, then a 120s pause: a fixed 10-min rule keeps
        # one session, the adaptive rule splits.
        requests = [Request(float(i * 10), "u", f"P{i}") for i in range(10)]
        requests.append(Request(90.0 + 120.0, "u", "PX"))
        sessions = AdaptiveTimeoutHeuristic().reconstruct_user(requests)
        assert len(sessions) == 2
        from repro.sessions.time_oriented import PageStayHeuristic
        assert len(PageStayHeuristic().reconstruct_user(requests)) == 1

    def test_few_gaps_fall_back_to_ceiling(self):
        requests = [Request(0.0, "u", "A"), Request(30.0, "u", "B")]
        heuristic = AdaptiveTimeoutHeuristic()
        assert heuristic.user_cutoff(requests) == heuristic.ceiling

    def test_cutoff_clamped_to_floor(self):
        requests = [Request(float(i), "u", f"P{i}") for i in range(20)]
        heuristic = AdaptiveTimeoutHeuristic(floor=60.0)
        assert heuristic.user_cutoff(requests) == 60.0

    def test_cutoff_clamped_to_ceiling(self):
        requests = [Request(float(i * 650), "u", f"P{i}") for i in range(20)]
        heuristic = AdaptiveTimeoutHeuristic()
        assert heuristic.user_cutoff(requests) == heuristic.ceiling

    def test_partitions_stream(self):
        requests = [Request(float(i * 45), "u", f"P{i}") for i in range(12)]
        sessions = AdaptiveTimeoutHeuristic().reconstruct_user(requests)
        assert [r for s in sessions for r in s] == requests

    def test_registered(self):
        from repro.sessions.base import get_heuristic
        assert isinstance(get_heuristic("adaptive"),
                          AdaptiveTimeoutHeuristic)

    @pytest.mark.parametrize("kwargs", [
        {"sigmas": -1}, {"floor": 0}, {"ceiling": -5},
        {"floor": 700, "ceiling": 600}, {"min_gaps": 1}])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveTimeoutHeuristic(**kwargs)


class TestProxySimulation:
    def test_proxy_hides_traffic(self, small_site):
        base = SimulationConfig(n_agents=100, seed=6)
        plain = simulate_population(small_site, base)
        proxied = simulate_population(
            small_site, base.with_(proxy_group_size=10))
        assert len(proxied.log_requests) < len(plain.log_requests)
        assert proxied.cache_hit_rate > plain.cache_hit_rate
        assert sum(t.proxy_hits for t in proxied.traces) > 0
        assert sum(t.proxy_hits for t in plain.traces) == 0

    def test_ground_truth_not_affected_by_logging(self, small_site):
        """The proxy hides requests from the log; what users *did* also
        changes (their RNG stream is identical but proxied agents never
        see different pages — the walk itself is cache-independent), so
        ground truth session counts stay in the same ballpark."""
        base = SimulationConfig(n_agents=100, seed=6)
        plain = simulate_population(small_site, base)
        proxied = simulate_population(
            small_site, base.with_(proxy_group_size=10))
        # the navigation itself is unchanged: same landings per agent.
        for a, b in zip(plain.traces, proxied.traces):
            assert [s.pages for s in a.real_sessions] == [
                s.pages for s in b.real_sessions]

    def test_proxy_degrades_reconstruction(self, small_site):
        from repro.core.smart_sra import SmartSRA
        from repro.evaluation.metrics import evaluate_reconstruction
        base = SimulationConfig(n_agents=150, seed=6)
        scores = {}
        for k in (1, 10):
            sim = simulate_population(small_site,
                                      base.with_(proxy_group_size=k))
            sessions = SmartSRA(small_site).reconstruct(sim.log_requests)
            scores[k] = evaluate_reconstruction(
                "h", sim.ground_truth, sessions).matched_accuracy
        assert scores[10] < scores[1]

    def test_proxy_plus_workers_rejected(self, small_site):
        config = SimulationConfig(n_agents=10, proxy_group_size=2)
        with pytest.raises(SimulationError, match="sequential"):
            simulate_population(small_site, config, n_workers=2)

    def test_invalid_group_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(proxy_group_size=0)


class TestParallelSimulation:
    def test_identical_to_serial(self, small_site):
        config = SimulationConfig(n_agents=30, seed=9)
        serial = simulate_population(small_site, config)
        parallel = simulate_population(small_site, config, n_workers=2)
        assert serial.log_requests == parallel.log_requests
        assert serial.ground_truth == parallel.ground_truth

    def test_invalid_worker_count(self, small_site):
        with pytest.raises(SimulationError):
            simulate_population(small_site, SimulationConfig(n_agents=5),
                                n_workers=-1)

    def test_zero_workers_means_auto(self, small_site):
        config = SimulationConfig(n_agents=8, seed=3)
        serial = simulate_population(small_site, config)
        auto = simulate_population(small_site, config, n_workers=0)
        assert serial.log_requests == auto.log_requests
        assert serial.ground_truth == auto.ground_truth
