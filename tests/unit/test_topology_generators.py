"""Unit tests for the topology generators."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topology.analysis import degree_statistics, reachable_fraction
from repro.topology.generators import (
    hierarchical_site,
    page_name,
    power_law_site,
    random_site,
)


def test_page_name_convention():
    assert page_name(0) == "P0"
    assert page_name(42) == "P42"


class TestRandomSite:
    def test_paper_scale_statistics(self):
        graph = random_site(300, 15.0, seed=0)
        assert graph.page_count == 300
        stats = degree_statistics(graph)
        # binomial mean 15; the reachability repair may add a few links.
        assert 13.0 < stats.mean_out < 17.5

    def test_start_fraction(self):
        graph = random_site(200, 5.0, start_fraction=0.05, seed=1)
        assert len(graph.start_pages) == 10

    def test_at_least_one_start_page(self):
        graph = random_site(10, 2.0, start_fraction=0.01, seed=1)
        assert len(graph.start_pages) == 1

    def test_fully_reachable(self):
        for seed in range(3):
            graph = random_site(80, 3.0, seed=seed)
            assert reachable_fraction(graph) == 1.0

    def test_deterministic_per_seed(self):
        assert random_site(50, 4.0, seed=9) == random_site(50, 4.0, seed=9)

    def test_seeds_differ(self):
        assert random_site(50, 4.0, seed=1) != random_site(50, 4.0, seed=2)

    def test_single_page_site(self):
        graph = random_site(1, 0.0, seed=0)
        assert graph.page_count == 1
        assert graph.start_pages == {"P0"}

    @pytest.mark.parametrize("kwargs", [
        {"n_pages": 0},
        {"n_pages": 10, "avg_out_degree": 10},
        {"n_pages": 10, "avg_out_degree": -1},
        {"n_pages": 10, "start_fraction": 0.0},
        {"n_pages": 10, "start_fraction": 1.5},
    ])
    def test_rejects_invalid(self, kwargs):
        kwargs.setdefault("avg_out_degree", 2.0)
        with pytest.raises(TopologyError):
            random_site(**kwargs)


class TestHierarchicalSite:
    def test_single_root_start_page(self):
        graph = hierarchical_site(100, seed=3)
        assert graph.start_pages == {"P0"}

    def test_children_link_back_to_parent(self):
        graph = hierarchical_site(20, branching=3,
                                  cross_link_probability=0.0,
                                  home_link_probability=0.0, seed=0)
        # node 1's parent is node 0; bidirectional tree edges.
        assert graph.has_link("P0", "P1")
        assert graph.has_link("P1", "P0")

    def test_fully_reachable(self):
        graph = hierarchical_site(150, seed=5)
        assert reachable_fraction(graph) == 1.0

    def test_rejects_invalid(self):
        with pytest.raises(TopologyError):
            hierarchical_site(0)
        with pytest.raises(TopologyError):
            hierarchical_site(10, branching=0)
        with pytest.raises(TopologyError):
            hierarchical_site(10, cross_link_probability=2.0)


class TestPowerLawSite:
    def test_heavy_tail(self):
        graph = power_law_site(200, links_per_page=4, seed=2)
        stats = degree_statistics(graph)
        # hubs accumulate far more in-links than the mean.
        assert stats.max_in > 3 * stats.mean_in

    def test_fully_reachable(self):
        graph = power_law_site(120, seed=7)
        assert reachable_fraction(graph) == 1.0

    def test_start_pages_are_hubs(self):
        graph = power_law_site(100, links_per_page=3, start_fraction=0.05,
                               seed=4)
        mean_in = sum(graph.in_degree(p) for p in graph.pages) / 100
        start_in = [graph.in_degree(p) for p in graph.start_pages]
        assert min(start_in) >= mean_in

    def test_deterministic(self):
        assert power_law_site(60, seed=1) == power_law_site(60, seed=1)

    def test_rejects_invalid(self):
        with pytest.raises(TopologyError):
            power_law_site(0)
        with pytest.raises(TopologyError):
            power_law_site(10, links_per_page=0)
        with pytest.raises(TopologyError):
            power_law_site(10, start_fraction=0.0)
