"""Unit tests for All-Maximal-Paths: the enumerators, the budget
policies, the reconstructor facade and the doctor audit.

Anchored on the paper pair's shared worked example: the Table 3 candidate
over the Figure 1 topology.  Smart-SRA's Phase 2 emits three maximal
sessions there (Table 4); AMP must emit exactly the same three — on that
example every maximal path is also a Phase-2 session — while diverging
from Phase 2 only on inputs with skip-link shortcuts.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.amp import (
    AMP_OVERFLOW_POLICIES,
    AMPConfig,
    amp_sessions_optimized,
    amp_sessions_reference,
    audit_amp_config,
    count_maximal_paths,
)
from repro.core.config import SmartSRAConfig
from repro.core.phase1 import split_candidates
from repro.exceptions import ConfigurationError, PathBudgetError
from repro.sessions.base import get_heuristic
from repro.sessions.maximal_paths import AllMaximalPaths
from repro.sessions.model import Request, SessionSet
from repro.topology.graph import WebGraph

MIN = 60.0


def _bodies(sessions):
    return sorted(tuple((r.timestamp, r.page) for r in session)
                  for session in sessions)


@pytest.fixture()
def skip_link_site():
    """A -> B -> C plus the shortcut A -> C: two maximal paths."""
    return WebGraph([("A", "B"), ("B", "C"), ("A", "C")],
                    start_pages=["A"])


@pytest.fixture()
def complete_site():
    """A complete 12-page site — the path-explosion workload."""
    pages = [f"P{i}" for i in range(12)]
    return WebGraph([(a, b) for a in pages for b in pages if a != b],
                    start_pages=pages[:1])


class TestConfig:
    def test_defaults(self):
        config = AMPConfig()
        assert config.path_budget == 4096
        assert config.overflow == "truncate"
        assert config.overflow in AMP_OVERFLOW_POLICIES

    @pytest.mark.parametrize("kwargs", [
        {"path_budget": 0},
        {"path_budget": -5},
        {"overflow": "explode"},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            AMPConfig(**kwargs)


class TestPaperExample:
    def test_table3_matches_phase2_table4(self, fig1_topology,
                                          table3_stream):
        (candidate,) = split_candidates(table3_stream)
        outcome = amp_sessions_reference(candidate, fig1_topology)
        assert outcome.policy is None
        assert outcome.path_count == 3
        assert {s.pages for s in outcome.sessions} == {
            ("P1", "P13", "P34", "P23"),
            ("P1", "P13", "P49", "P23"),
            ("P1", "P20", "P23"),
        }

    def test_optimized_agrees_byte_for_byte(self, fig1_topology,
                                            table3_stream):
        (candidate,) = split_candidates(table3_stream)
        reference = amp_sessions_reference(candidate, fig1_topology)
        optimized = amp_sessions_optimized(candidate, fig1_topology)
        assert (SessionSet(reference.sessions).canonical_digest()
                == SessionSet(optimized.sessions).canonical_digest())


class TestEnumeration:
    def test_skip_link_emits_both_paths(self, skip_link_site):
        stream = [Request(0.0, "u", "A"), Request(30.0, "u", "B"),
                  Request(60.0, "u", "C")]
        outcome = amp_sessions_reference(stream, skip_link_site)
        # [A, C] is NOT maximal (A -> B -> C passes through it as a
        # subsequence is irrelevant — but C is reachable from B, so the
        # only roots are ordinal 0): paths are A-B-C and A-C.
        assert _bodies(outcome.sessions) == [
            ((0.0, "A"), (30.0, "B"), (60.0, "C")),
            ((0.0, "A"), (60.0, "C")),
        ]

    def test_off_topology_page_is_singleton_path(self, skip_link_site):
        stream = [Request(0.0, "u", "A"), Request(30.0, "u", "X"),
                  Request(60.0, "u", "B")]
        for enumerate_with in (amp_sessions_reference,
                               amp_sessions_optimized):
            outcome = enumerate_with(stream, skip_link_site)
            assert ((30.0, "X"),) in _bodies(outcome.sessions)

    def test_every_request_appears_in_some_path(self, skip_link_site):
        stream = [Request(i * 120.0, "u", page)
                  for i, page in enumerate("ABCBXA")]
        outcome = amp_sessions_reference(stream, skip_link_site)
        covered = {(r.timestamp, r.page)
                   for session in outcome.sessions for r in session}
        assert covered == {(r.timestamp, r.page) for r in stream}

    def test_rho_window_limits_edges(self, skip_link_site):
        config = SmartSRAConfig(max_duration=60 * MIN, max_gap=1 * MIN)
        stream = [Request(0.0, "u", "A"), Request(5 * MIN, "u", "B")]
        outcome = amp_sessions_reference(stream, skip_link_site, config)
        # the gap exceeds rho, so no edge: two singleton paths.
        assert _bodies(outcome.sessions) == [((0.0, "A"),),
                                             ((5 * MIN, "B"),)]

    def test_empty_candidate(self, skip_link_site):
        assert amp_sessions_reference([], skip_link_site).sessions == []
        assert amp_sessions_optimized([], skip_link_site).sessions == []


class TestCounting:
    def test_counts_without_enumerating(self):
        # a diamond: 0 -> {1, 2} -> 3.
        roots, successors = [0], [[1, 2], [3], [3], []]
        assert count_maximal_paths(roots, successors) == 2

    def test_complete_candidate_counts_exponentially(self):
        pages = [f"P{i}" for i in range(40)]
        site = WebGraph([(a, b) for a in pages for b in pages if a != b],
                        start_pages=pages[:1])
        stream = [Request(float(i), "u", pages[i]) for i in range(40)]
        outcome = amp_sessions_reference(
            stream, site, amp=AMPConfig(path_budget=4,
                                        overflow="truncate"))
        # 40 distinct pages over a complete graph: the only root is
        # ordinal 0, the only sink ordinal 39, and every subset of the 38
        # interior ordinals is a path — 2^38 of them, counted exactly,
        # and only 4 materialized.
        assert outcome.path_count == 2 ** 38
        assert len(outcome.sessions) == 4


class TestOverflowPolicies:
    @pytest.fixture()
    def dense_candidate(self):
        return [Request(float(i), "u", f"P{i % 12}") for i in range(20)]

    def test_truncate_emits_exactly_budget(self, complete_site,
                                           dense_candidate):
        amp = AMPConfig(path_budget=7, overflow="truncate")
        outcome = amp_sessions_reference(dense_candidate, complete_site,
                                         amp=amp)
        assert outcome.policy == "truncate"
        assert len(outcome.sessions) == 7

    def test_truncated_prefix_is_shared_between_implementations(
            self, complete_site, dense_candidate):
        amp = AMPConfig(path_budget=7, overflow="truncate")
        reference = amp_sessions_reference(dense_candidate, complete_site,
                                           amp=amp)
        optimized = amp_sessions_optimized(dense_candidate, complete_site,
                                           amp=amp)
        assert (_bodies(reference.sessions)
                == _bodies(optimized.sessions))

    def test_block_skips_candidate(self, complete_site, dense_candidate):
        amp = AMPConfig(path_budget=7, overflow="block")
        outcome = amp_sessions_optimized(dense_candidate, complete_site,
                                         amp=amp)
        assert outcome.policy == "block"
        assert outcome.sessions == []
        assert outcome.path_count > 7

    def test_raise_carries_the_count(self, complete_site, dense_candidate):
        amp = AMPConfig(path_budget=7, overflow="raise")
        with pytest.raises(PathBudgetError, match="maximal paths"):
            amp_sessions_reference(dense_candidate, complete_site, amp=amp)

    def test_under_budget_policy_is_none(self, skip_link_site):
        stream = [Request(0.0, "u", "A"), Request(30.0, "u", "B")]
        outcome = amp_sessions_reference(stream, skip_link_site)
        assert outcome.policy is None


class TestReconstructor:
    def test_facade_composes_phase1(self, fig1_topology, table1_stream):
        sessions = AllMaximalPaths(fig1_topology).reconstruct(table1_stream)
        # Table 1 splits into three candidates; each enumerates
        # independently, so no session crosses a Phase-1 boundary.
        boundaries = {0.0, 32 * MIN, 47 * MIN}
        for session in sessions:
            crossed = {r.timestamp for r in session} & boundaries
            assert len(crossed) <= 1

    def test_implementations_agree_end_to_end(self, fig1_topology,
                                              table1_stream):
        optimized = AllMaximalPaths(fig1_topology).reconstruct(table1_stream)
        reference = AllMaximalPaths(
            fig1_topology, implementation="reference").reconstruct(
            table1_stream)
        assert (optimized.canonical_digest()
                == reference.canonical_digest())

    def test_rejects_unknown_implementation(self, fig1_topology):
        with pytest.raises(ConfigurationError, match="implementation"):
            AllMaximalPaths(fig1_topology, implementation="fast")

    def test_pickles_without_interner(self, fig1_topology, table3_stream):
        engine = AllMaximalPaths(fig1_topology)
        engine.reconstruct(table3_stream)  # populate the cached interner
        clone = pickle.loads(pickle.dumps(engine))
        assert clone._symbols is None
        assert (clone.reconstruct(table3_stream).canonical_digest()
                == engine.reconstruct(table3_stream).canonical_digest())

    def test_registry_entry_demands_topology(self):
        with pytest.raises(ConfigurationError, match="topology"):
            get_heuristic("amp")
        with pytest.raises(ConfigurationError, match="topology"):
            get_heuristic("maximal-paths")


class TestAudit:
    def test_standalone_config_is_ok(self):
        audit = audit_amp_config(AMPConfig())
        assert audit.ok
        assert audit.to_dict()["path_budget"] == 4096

    def test_budget_overdraws_memory_budget(self):
        audit = audit_amp_config(AMPConfig(path_budget=1 << 20),
                                 memory_budget=64 * 1024)
        assert not audit.ok
        assert any(level == "FAIL" for level, _ in audit.checks)
        assert "memory budget" in audit.render()

    def test_half_budget_warns(self):
        # 96B x 8 requests x 64 paths = 49152B: over half of 64k.
        audit = audit_amp_config(AMPConfig(path_budget=64),
                                 memory_budget=64 * 1024)
        assert audit.ok
        assert any(level == "warn" for level, _ in audit.checks)

    def test_raise_policy_warns(self):
        audit = audit_amp_config(AMPConfig(overflow="raise"))
        assert audit.ok
        assert any("raise" in message for _, message in audit.checks)
