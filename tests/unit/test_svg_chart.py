"""Unit tests for the SVG sweep chart writer."""

from __future__ import annotations

import xml.dom.minidom

import pytest

from repro.evaluation.harness import sweep
from repro.evaluation.svg_chart import render_svg, save_svg
from repro.exceptions import EvaluationError
from repro.simulator.config import SimulationConfig


@pytest.fixture(scope="module")
def small_sweep(small_site):
    return sweep(small_site, SimulationConfig(n_agents=25, seed=3),
                 "stp", [0.05, 0.2])


def test_valid_xml(small_sweep):
    document = render_svg(small_sweep, title="T")
    xml.dom.minidom.parseString(document)  # raises on malformed XML


def test_contains_title_axis_and_legend(small_sweep):
    document = render_svg(small_sweep, title="My <Figure>")
    assert "My &lt;Figure&gt;" in document  # escaped
    assert "STP" in document
    assert "heur4" in document


def test_one_polyline_per_series(small_sweep):
    document = render_svg(small_sweep)
    assert document.count("<polyline") == 4


def test_marker_per_point(small_sweep):
    document = render_svg(small_sweep)
    assert document.count("<circle") == 4 * 2  # 4 series x 2 values


def test_save_writes_file(small_sweep, tmp_path):
    path = str(tmp_path / "chart.svg")
    save_svg(small_sweep, path, title="x")
    with open(path, encoding="utf-8") as handle:
        assert handle.read().startswith("<svg")


def test_metric_changes_output(small_sweep):
    assert render_svg(small_sweep, metric="matched") != render_svg(
        small_sweep, metric="captured")


def test_coordinates_inside_viewbox(small_sweep):
    import re
    document = render_svg(small_sweep)
    for match in re.finditer(r'cx="([\d.]+)" cy="([\d.]+)"', document):
        x, y = float(match.group(1)), float(match.group(2))
        assert 0 <= x <= 640
        assert 0 <= y <= 400
