"""Unit tests for the observability layer (``repro.obs``).

Pins down the contracts the rest of the suite leans on:

* histogram bucket edges are **inclusive** (Prometheus ``le`` semantics);
* timers are re-entrant and each enter/exit pair records one span;
* snapshots are deterministic — same updates, byte-identical JSON;
* the disabled default registry is a true no-op (shared singletons,
  nothing recorded);
* tracing spans nest and serialize as stable JSON lines.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    ListSink,
    NULL_REGISTRY,
    Registry,
    Tracer,
    get_registry,
    merge_snapshots,
    series_name,
    set_registry,
    snapshot_to_prometheus,
    snapshot_to_table,
    split_series,
    use_local_registry,
    use_registry,
)
from repro.obs.registry import (
    _NULL_COUNTER,
    _NULL_GAUGE,
    _NULL_HISTOGRAM,
    _NULL_TIMER,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Timer,
)


class TestSeriesNames:
    def test_no_labels_is_identity(self):
        assert series_name("ingest.lines.total") == "ingest.lines.total"

    def test_labels_are_sorted(self):
        assert (series_name("x", {"b": "2", "a": "1"})
                == "x{a=1,b=2}")

    @pytest.mark.parametrize("name,labels", [
        ("plain", {}),
        ("ingest.faults", {"class": "garbage"}),
        ("eval.accuracy", {"heuristic": "heur4", "stp": "0.5"}),
    ])
    def test_round_trip(self, name, labels):
        assert split_series(series_name(name, labels)) == (name, labels)

    @pytest.mark.parametrize("bad", ["x{a=1", "x{nolabel}", "x{=v}"])
    def test_malformed_keys_raise(self, bad):
        with pytest.raises(ConfigurationError):
            split_series(bad)


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0


class TestHistogramBucketEdges:
    """The ``le`` convention: an observation of exactly a bucket's upper
    bound counts toward **that** bucket, not the next one."""

    def test_exact_edge_is_inclusive(self):
        histogram = Histogram((1.0, 2.0, 4.0))
        histogram.observe(2.0)
        assert histogram.counts == [0, 1, 0]

    def test_below_first_edge(self):
        histogram = Histogram((1.0, 2.0, 4.0))
        histogram.observe(0.0)
        histogram.observe(1.0)
        assert histogram.counts == [2, 0, 0]

    def test_between_edges_rounds_up(self):
        histogram = Histogram((1.0, 2.0, 4.0))
        histogram.observe(1.5)
        assert histogram.counts == [0, 1, 0]

    def test_above_last_edge_overflows(self):
        histogram = Histogram((1.0, 2.0, 4.0))
        histogram.observe(4.0)
        histogram.observe(4.0001)
        assert histogram.counts == [0, 0, 1]
        assert histogram.overflow == 1

    def test_cumulative_is_monotone_and_ends_at_inf(self):
        histogram = Histogram((1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 3.0, 99.0):
            histogram.observe(value)
        pairs = histogram.cumulative()
        assert pairs == [(1.0, 2), (2.0, 2), (4.0, 3), (math.inf, 4)]

    def test_mean(self):
        histogram = Histogram((10.0,))
        assert histogram.mean == 0.0
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.mean == 3.0

    @pytest.mark.parametrize("bad", [(), (2.0, 1.0), (1.0, 1.0)])
    def test_bad_buckets_raise(self, bad):
        with pytest.raises(ConfigurationError):
            Histogram(bad)


class TestTimerNesting:
    def test_each_pair_records_one_observation(self):
        histogram = Histogram((120.0,))
        timer = Timer(histogram)
        with timer:
            pass
        with timer:
            pass
        assert histogram.count == 2

    def test_reentrant_nesting(self):
        """The same timer entered while active records both spans, and
        the outer span is at least as long as the inner one."""
        histogram = Histogram((120.0,))
        timer = Timer(histogram)
        with timer:
            with timer:
                pass
        assert histogram.count == 2
        assert not timer._starts          # stack fully unwound

    def test_nesting_via_registry(self):
        registry = Registry()

        def recurse(depth: int) -> None:
            with registry.timer("t.seconds"):
                if depth:
                    recurse(depth - 1)

        recurse(3)
        snapshot = registry.snapshot()
        assert snapshot["histograms"]["t.seconds"]["count"] == 4


class TestRegistry:
    def test_same_series_returns_same_instrument(self):
        registry = Registry()
        a = registry.counter("c", x="1")
        b = registry.counter("c", x="1")
        assert a is b
        assert registry.counter("c", x="2") is not a

    def test_label_order_is_irrelevant(self):
        registry = Registry()
        assert (registry.counter("c", a="1", b="2")
                is registry.counter("c", b="2", a="1"))

    def test_value_and_series(self):
        registry = Registry()
        registry.counter("f", k="x").inc(3)
        registry.counter("f", k="y").inc(4)
        registry.gauge("g").set(1.5)
        assert registry.value("f", k="x") == 3
        assert registry.value("g") == 1.5
        assert registry.value("absent") == 0
        assert registry.series("f") == {"f{k=x}": 3, "f{k=y}": 4}

    def test_histogram_redeclare_with_other_buckets_raises(self):
        registry = Registry()
        registry.histogram("h", (1.0, 2.0))
        registry.histogram("h", (1.0, 2.0))        # same buckets: fine
        with pytest.raises(ConfigurationError):
            registry.histogram("h", SIZE_BUCKETS)

    def test_snapshot_determinism(self):
        """Two registries driven through the same updates (in different
        orders) produce byte-identical JSON snapshots."""
        def drive(registry: Registry, order: list[str]) -> None:
            for key in order:
                registry.counter("lines", kind=key).inc(ord(key[0]))
            registry.gauge("depth").set(7)
            registry.histogram("sizes", (1.0, 5.0)).observe(3)

        first, second = Registry(), Registry()
        drive(first, ["b", "a", "c"])
        drive(second, ["c", "b", "a"])
        dump = lambda registry: json.dumps(registry.snapshot(),
                                           sort_keys=True)
        assert dump(first) == dump(second)
        assert first.snapshot()["version"] == 1

    def test_snapshot_histogram_layout(self):
        registry = Registry()
        registry.histogram("h", (1.0, 2.0)).observe(1.5)
        registry.histogram("h", (1.0, 2.0)).observe(9.0)
        data = registry.snapshot()["histograms"]["h"]
        assert data == {"buckets": [[1.0, 0], [2.0, 1]], "overflow": 1,
                        "sum": 10.5, "count": 2}


class TestNullRegistry:
    def test_disabled_hands_out_shared_noops(self):
        registry = Registry(enabled=False)
        assert registry.counter("c") is _NULL_COUNTER
        assert registry.gauge("g") is _NULL_GAUGE
        assert registry.histogram("h") is _NULL_HISTOGRAM
        assert registry.timer("t") is _NULL_TIMER

    def test_noops_record_nothing(self):
        registry = Registry(enabled=False)
        registry.counter("c").inc(100)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1)
        with registry.timer("t"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}

    def test_span_without_tracer_is_a_context_manager(self):
        with Registry().span("anything", k="v"):
            pass
        Registry().event("anything")     # no tracer: silently dropped

    def test_ambient_default_is_disabled(self):
        assert get_registry() is NULL_REGISTRY
        assert not NULL_REGISTRY.enabled


class TestAmbientRegistry:
    def test_use_registry_scopes_and_restores(self):
        registry = Registry()
        assert get_registry() is NULL_REGISTRY
        with use_registry(registry) as installed:
            assert installed is registry
            assert get_registry() is registry
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_registry(Registry()):
                raise RuntimeError("boom")
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_returns_previous_and_none_resets(self):
        registry = Registry()
        previous = set_registry(registry)
        try:
            assert previous is NULL_REGISTRY
            assert get_registry() is registry
        finally:
            assert set_registry(None) is registry
        assert get_registry() is NULL_REGISTRY


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        registry = Registry()
        registry.counter("ingest.lines.total").inc(7)
        registry.counter("ingest.faults", **{"class": "garbage"}).inc(2)
        registry.gauge("stream.buffered_requests").set(3)
        text = registry.render_prometheus()
        assert "# TYPE repro_ingest_lines_total counter" in text
        assert "repro_ingest_lines_total 7" in text
        assert 'repro_ingest_faults{class="garbage"} 2' in text
        assert "# TYPE repro_stream_buffered_requests gauge" in text
        assert "repro_stream_buffered_requests 3" in text

    def test_histogram_exposition_is_cumulative(self):
        registry = Registry()
        histogram = registry.histogram("h", (1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        assert '# TYPE repro_h histogram' in text
        assert 'repro_h_bucket{le="1.0"} 1' in text
        assert 'repro_h_bucket{le="2.0"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text
        assert "repro_h_sum 11" in text
        assert "repro_h_count 3" in text

    def test_round_trips_through_json(self):
        registry = Registry()
        registry.counter("c").inc(5)
        registry.histogram("h", (1.0,)).observe(0.5)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert (snapshot_to_prometheus(snapshot)
                == registry.render_prometheus())

    def test_table_rendering(self):
        registry = Registry()
        assert registry.render_table() == "(no metrics recorded)\n"
        registry.counter("c").inc(3)
        registry.histogram("h", (1.0,)).observe(0.5)
        table = registry.render_table()
        assert "c" in table and "3" in table
        assert "count=1" in table
        assert snapshot_to_table(registry.snapshot()) == table


class TestTracing:
    def test_span_nesting_records_parent_chain(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner", detail="x"):
                pass
        # spans are written on close: leaf first.
        inner, outer = sink.records
        assert [record["type"] for record in sink.records] == ["span"] * 2
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert inner["attrs"] == {"detail": "x"}
        assert inner["dur_s"] >= 0

    def test_event_is_attributed_to_enclosing_span(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("work"):
            tracer.event("tick", n=1)
        event, span = sink.records
        assert event["type"] == "event"
        assert event["span"] == span["id"]
        assert event["attrs"] == {"n": 1}

    def test_error_is_recorded_on_the_span(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("no")
        assert sink.records[0]["error"] == "ValueError"

    def test_registry_delegates_to_tracer(self):
        sink = ListSink()
        registry = Registry(tracer=Tracer(sink))
        with registry.span("s"):
            registry.event("e")
        assert [record["name"] for record in sink.records] == ["e", "s"]

    def test_records_are_valid_sorted_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            tracer = Tracer(handle)
            with tracer.span("a"):
                tracer.event("b")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert list(record) == sorted(record)


class TestSnapshotMerging:
    """merge_snapshot / merge_snapshots — the parallel reconciliation step."""

    def test_counters_add(self):
        a, b = Registry(), Registry()
        a.counter("jobs", kind="x").inc(3)
        b.counter("jobs", kind="x").inc(4)
        b.counter("jobs", kind="y").inc(1)
        a.merge_snapshot(b.snapshot())
        counters = a.snapshot()["counters"]
        assert counters["jobs{kind=x}"] == 7
        assert counters["jobs{kind=y}"] == 1

    def test_gauges_last_write_wins(self):
        a, b = Registry(), Registry()
        a.gauge("depth").set(10)
        b.gauge("depth").set(2)
        a.merge_snapshot(b.snapshot())
        assert a.snapshot()["gauges"]["depth"] == 2

    def test_histograms_add_bucket_wise(self):
        bounds = (1.0, 10.0)
        a, b = Registry(), Registry()
        for value in (0.5, 5.0):
            a.histogram("size", bounds).observe(value)
        for value in (5.0, 50.0):
            b.histogram("size", bounds).observe(value)
        a.merge_snapshot(b.snapshot())
        data = a.snapshot()["histograms"]["size"]
        assert data["buckets"] == [[1.0, 1], [10.0, 2]]
        assert data["overflow"] == 1
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(60.5)

    def test_mismatched_bucket_bounds_rejected(self):
        a, b = Registry(), Registry()
        a.histogram("size", (1.0, 2.0)).observe(0.5)
        b.histogram("size", (1.0, 3.0)).observe(0.5)
        with pytest.raises(ConfigurationError):
            a.merge_snapshot(b.snapshot())

    def test_merge_into_disabled_registry_is_noop(self):
        source = Registry()
        source.counter("jobs").inc()
        disabled = Registry(enabled=False)
        disabled.merge_snapshot(source.snapshot())
        assert disabled.snapshot()["counters"] == {}

    def test_merge_snapshots_equals_one_registry_seeing_everything(self):
        parts, reference = [], Registry()
        for round_ in range(3):
            registry = Registry()
            for target in (registry, reference):
                target.counter("jobs").inc(round_ + 1)
                target.gauge("last").set(round_)
                target.histogram("size", (2.0, 4.0)).observe(round_)
            parts.append(registry.snapshot())
        assert merge_snapshots(*parts) == reference.snapshot()

    def test_merge_order_determines_gauges(self):
        a, b = Registry(), Registry()
        a.gauge("g").set(1)
        b.gauge("g").set(2)
        assert merge_snapshots(a.snapshot(),
                               b.snapshot())["gauges"]["g"] == 2
        assert merge_snapshots(b.snapshot(),
                               a.snapshot())["gauges"]["g"] == 1


class TestLocalRegistry:
    def test_scoped_override_and_restore(self):
        outer = get_registry()
        local = Registry()
        with use_local_registry(local):
            assert get_registry() is local
            get_registry().counter("seen").inc()
        assert get_registry() is outer
        assert local.snapshot()["counters"]["seen"] == 1

    def test_other_threads_keep_the_global_registry(self):
        import threading

        local = Registry()
        seen_from_thread = []
        with use_local_registry(local):
            thread = threading.Thread(
                target=lambda: seen_from_thread.append(get_registry()))
            thread.start()
            thread.join()
        assert seen_from_thread[0] is not local
