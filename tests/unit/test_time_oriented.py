"""Unit tests for heur1/heur2 — including the paper's Table 1 examples."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.sessions.model import Request
from repro.sessions.time_oriented import (
    DEFAULT_PAGE_STAY,
    DEFAULT_SESSION_DURATION,
    DurationHeuristic,
    PageStayHeuristic,
)


class TestPaperTable1:
    """§2.1's worked examples over Table 1 (P1@0 P20@6 P13@15 P49@29
    P34@32 P23@47, minutes)."""

    def test_heur1_duration_splits(self, table1_stream):
        sessions = DurationHeuristic().reconstruct_user(table1_stream)
        assert [s.pages for s in sessions] == [
            ("P1", "P20", "P13", "P49"), ("P34", "P23")]

    def test_heur2_page_stay_splits(self, table1_stream):
        sessions = PageStayHeuristic().reconstruct_user(table1_stream)
        assert [s.pages for s in sessions] == [
            ("P1", "P20", "P13"), ("P49", "P34"), ("P23",)]


class TestDurationHeuristic:
    def test_defaults_to_thirty_minutes(self):
        assert DurationHeuristic().max_duration == DEFAULT_SESSION_DURATION

    def test_boundary_is_inclusive(self):
        # exactly δ after the first request still belongs to the session.
        stream = [Request(0.0, "u", "A"), Request(1800.0, "u", "B")]
        sessions = DurationHeuristic().reconstruct_user(stream)
        assert len(sessions) == 1

    def test_split_just_past_boundary(self):
        stream = [Request(0.0, "u", "A"), Request(1800.1, "u", "B")]
        sessions = DurationHeuristic().reconstruct_user(stream)
        assert [s.pages for s in sessions] == [("A",), ("B",)]

    def test_duration_measured_from_session_first_page(self):
        # B resets nothing: duration is measured from A.  C is within 30min
        # of B but not of A, so it opens a new session...
        stream = [Request(0.0, "u", "A"), Request(1000.0, "u", "B"),
                  Request(2000.0, "u", "C")]
        sessions = DurationHeuristic().reconstruct_user(stream)
        assert [s.pages for s in sessions] == [("A", "B"), ("C",)]

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ConfigurationError):
            DurationHeuristic(max_duration=0)

    def test_single_request(self):
        sessions = DurationHeuristic().reconstruct_user(
            [Request(5.0, "u", "A")])
        assert [s.pages for s in sessions] == [("A",)]


class TestPageStayHeuristic:
    def test_defaults_to_ten_minutes(self):
        assert PageStayHeuristic().max_gap == DEFAULT_PAGE_STAY

    def test_gap_boundary_inclusive(self):
        stream = [Request(0.0, "u", "A"), Request(600.0, "u", "B")]
        assert len(PageStayHeuristic().reconstruct_user(stream)) == 1

    def test_gap_split(self):
        stream = [Request(0.0, "u", "A"), Request(600.1, "u", "B")]
        sessions = PageStayHeuristic().reconstruct_user(stream)
        assert [s.pages for s in sessions] == [("A",), ("B",)]

    def test_no_total_duration_limit(self):
        # 10 requests 9 minutes apart: 81 minutes total, still one session.
        stream = [Request(540.0 * i, "u", f"P{i}") for i in range(10)]
        assert len(PageStayHeuristic().reconstruct_user(stream)) == 1

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ConfigurationError):
            PageStayHeuristic(max_gap=-1)


class TestReconstructMultiUser:
    def test_partitions_by_user(self):
        stream = [
            Request(0.0, "alice", "A"),
            Request(1.0, "bob", "X"),
            Request(2.0, "alice", "B"),
        ]
        sessions = PageStayHeuristic().reconstruct(stream)
        assert {s.user_id for s in sessions} == {"alice", "bob"}
        alice, = sessions.for_user("alice")
        assert alice.pages == ("A", "B")

    def test_sorts_each_user_stream(self):
        stream = [Request(10.0, "u", "B"), Request(0.0, "u", "A")]
        sessions = PageStayHeuristic().reconstruct(stream)
        assert sessions[0].pages == ("A", "B")

    def test_rejects_negative_timestamps(self):
        from repro.exceptions import ReconstructionError
        with pytest.raises(ReconstructionError, match="negative"):
            PageStayHeuristic().reconstruct([Request(-1.0, "u", "A")])
