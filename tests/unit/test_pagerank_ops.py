"""Unit tests for page-rank divergence and session-set operations."""

from __future__ import annotations

import pytest

from repro.exceptions import EvaluationError
from repro.mining.pagerank import (
    rank_divergence,
    structural_pagerank,
    usage_rank,
)
from repro.sessions.model import Session, SessionSet
from repro.sessions.ops import (
    concatenate,
    rename_pages,
    sample_users,
    split_by_user,
    within_window,
)
from repro.topology.graph import WebGraph


def _s(pages, user="u0", start=0.0, gap=60.0):
    return Session.from_pages(pages, user_id=user, start=start, gap=gap)


@pytest.fixture()
def hub_site():
    """hub links to a, b, c; everything links back to hub."""
    return WebGraph([("hub", "a"), ("hub", "b"), ("hub", "c"),
                     ("a", "hub"), ("b", "hub"), ("c", "hub")],
                    start_pages=["hub"])


class TestStructuralPagerank:
    def test_sums_to_one(self, hub_site):
        scores = structural_pagerank(hub_site)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_hub_dominates(self, hub_site):
        scores = structural_pagerank(hub_site)
        assert scores["hub"] > max(scores["a"], scores["b"], scores["c"])

    def test_rejects_bad_damping(self, hub_site):
        with pytest.raises(EvaluationError):
            structural_pagerank(hub_site, damping=1.0)


class TestUsageRank:
    def test_visit_distribution(self):
        sessions = SessionSet([_s(["a", "a", "b"]), _s(["b"])])
        ranks = usage_rank(sessions)
        assert ranks["a"] == 0.5
        assert ranks["b"] == 0.5

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError):
            usage_rank(SessionSet([]))


class TestRankDivergence:
    def test_flags_unvisited_hub_as_overlinked(self, hub_site):
        # everyone visits a and b, nobody uses the hub's prominence.
        sessions = SessionSet([_s(["a"]), _s(["b"]), _s(["a"])])
        divergence = rank_divergence(hub_site, sessions, top=4)
        overlinked_pages = [page for page, __ in divergence["overlinked"]]
        underlinked_pages = [page for page, __ in divergence["underlinked"]]
        assert "hub" in overlinked_pages
        assert "a" in underlinked_pages

    def test_deltas_signed_correctly(self, hub_site):
        sessions = SessionSet([_s(["a"])])
        divergence = rank_divergence(hub_site, sessions, top=4)
        assert all(delta < 0 for __, delta in divergence["overlinked"])
        assert all(delta > 0 for __, delta in divergence["underlinked"])

    def test_rejects_bad_top(self, hub_site):
        with pytest.raises(EvaluationError):
            rank_divergence(hub_site, SessionSet([_s(["a"])]), top=0)


class TestOps:
    def test_concatenate(self):
        merged = concatenate([SessionSet([_s(["a"])]),
                              SessionSet([_s(["b"])])])
        assert [s.pages for s in merged] == [("a",), ("b",)]

    def test_within_window_keeps_fully_contained(self):
        sessions = SessionSet([
            _s(["a", "b"], start=0.0),      # ends 60
            _s(["c", "d"], start=100.0),    # ends 160
            _s(["e", "f"], start=140.0),    # straddles 150
        ])
        kept = within_window(sessions, 0.0, 160.0)
        assert [s.pages for s in kept] == [("a", "b"), ("c", "d")]

    def test_within_window_rejects_inverted(self):
        with pytest.raises(EvaluationError):
            within_window(SessionSet([]), 10.0, 0.0)

    def test_sample_users_keeps_whole_users(self):
        sessions = SessionSet(
            [_s(["a"], user=f"u{i}") for i in range(10)]
            + [_s(["b"], user=f"u{i}") for i in range(10)])
        sampled = sample_users(sessions, fraction=0.5, seed=1)
        assert len(sampled.users()) == 5
        for user in sampled.users():
            assert len(sampled.for_user(user)) == 2

    def test_sample_users_deterministic(self):
        sessions = SessionSet([_s(["a"], user=f"u{i}") for i in range(10)])
        assert sample_users(sessions, 0.3, seed=4) == sample_users(
            sessions, 0.3, seed=4)

    def test_sample_users_rejects_bad_fraction(self):
        with pytest.raises(EvaluationError):
            sample_users(SessionSet([]), 0.0)

    def test_rename_pages(self):
        from repro.sessions.model import Request
        sessions = SessionSet([Session([
            Request(0.0, "u", "a"),
            Request(60.0, "u", "b", referrer="a"),
        ])])
        renamed = rename_pages(sessions, lambda page: page.upper())
        assert renamed[0].pages == ("A", "B")
        assert renamed[0][1].referrer == "A"

    def test_split_by_user(self):
        sessions = SessionSet([_s(["a"], user="u1"), _s(["b"], user="u2"),
                               _s(["c"], user="u1")])
        split = split_by_user(sessions)
        assert set(split) == {"u1", "u2"}
        assert len(split["u1"]) == 2
