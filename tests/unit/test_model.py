"""Unit tests for the session data model (Request/Session/SessionSet)."""

from __future__ import annotations

import pytest

from repro.exceptions import ReconstructionError
from repro.sessions.model import Request, Session, SessionSet


def _session(pages, user="u0", start=0.0, gap=60.0):
    return Session.from_pages(pages, user_id=user, start=start, gap=gap)


class TestRequest:
    def test_orders_chronologically(self):
        early = Request(1.0, "u", "A")
        late = Request(2.0, "u", "A")
        assert sorted([late, early]) == [early, late]

    def test_synthetic_flag_excluded_from_equality(self):
        assert Request(1.0, "u", "A", synthetic=True) == Request(1.0, "u", "A")

    def test_shifted_moves_timestamp_only(self):
        request = Request(10.0, "u", "A", synthetic=True)
        moved = request.shifted(5.0)
        assert moved.timestamp == 15.0
        assert moved.page == "A"
        assert moved.user_id == "u"
        assert moved.synthetic is True

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Request(1.0, "u", "A").page = "B"  # type: ignore[misc]


class TestSession:
    def test_rejects_descending_timestamps(self):
        with pytest.raises(ReconstructionError, match="timestamp order"):
            Session([Request(5.0, "u", "A"), Request(1.0, "u", "B")])

    def test_allows_equal_timestamps(self):
        session = Session([Request(5.0, "u", "A"), Request(5.0, "u", "B")])
        assert session.pages == ("A", "B")

    def test_rejects_mixed_users(self):
        with pytest.raises(ReconstructionError, match="mix users"):
            Session([Request(1.0, "u1", "A"), Request(2.0, "u2", "B")])

    def test_from_pages_spacing(self):
        session = _session(["A", "B", "C"], start=100.0, gap=30.0)
        assert [r.timestamp for r in session] == [100.0, 130.0, 160.0]

    def test_sequence_protocol(self):
        session = _session(["A", "B", "C"])
        assert len(session) == 3
        assert session[1].page == "B"
        assert [r.page for r in session] == ["A", "B", "C"]
        assert bool(session)
        assert not bool(Session([]))

    def test_extended_leaves_receiver_unchanged(self):
        base = _session(["A", "B"])
        longer = base.extended(Request(300.0, "u0", "C"))
        assert base.pages == ("A", "B")
        assert longer.pages == ("A", "B", "C")

    def test_duration_and_gap(self):
        session = Session([Request(0.0, "u", "A"), Request(10.0, "u", "B"),
                           Request(100.0, "u", "C")])
        assert session.duration == 100.0
        assert session.max_gap() == 90.0
        assert session.start_time == 0.0
        assert session.end_time == 100.0

    def test_empty_session_edge_cases(self):
        empty = Session([])
        assert empty.duration == 0.0
        assert empty.max_gap() == 0.0
        with pytest.raises(ReconstructionError):
            __ = empty.user_id
        with pytest.raises(ReconstructionError):
            __ = empty.start_time
        with pytest.raises(ReconstructionError):
            __ = empty.end_time

    def test_equality_and_hash(self):
        assert _session(["A", "B"]) == _session(["A", "B"])
        assert _session(["A", "B"]) != _session(["A", "C"])
        assert hash(_session(["A"])) == hash(_session(["A"]))

    def test_distinct_pages(self):
        session = Session([Request(0.0, "u", "A"), Request(1.0, "u", "B"),
                           Request(2.0, "u", "A")])
        assert session.distinct_pages() == {"A", "B"}

    def test_repr_shows_pages(self):
        assert "'A'" in repr(_session(["A"]))


class TestSessionSet:
    def test_indexes_by_user(self):
        sessions = SessionSet([
            _session(["A"], user="u1"),
            _session(["B"], user="u2"),
            _session(["C"], user="u1"),
        ])
        assert set(sessions.users()) == {"u1", "u2"}
        assert [s.pages for s in sessions.for_user("u1")] == [("A",), ("C",)]
        assert sessions.for_user("nobody") == ()

    def test_vocabulary_and_counts(self):
        sessions = SessionSet([_session(["A", "B"]), _session(["B", "C"])])
        assert sessions.page_vocabulary() == {"A", "B", "C"}
        assert sessions.total_requests() == 4
        assert sessions.mean_length() == 2.0

    def test_mean_length_empty(self):
        assert SessionSet([]).mean_length() == 0.0

    def test_filtered_by_length(self):
        sessions = SessionSet([_session(["A"]), _session(["A", "B"])])
        assert len(sessions.filtered(min_length=2)) == 1

    def test_json_roundtrip(self, tmp_path):
        original = SessionSet([
            Session([Request(1.5, "u1", "A"),
                     Request(2.5, "u1", "B", synthetic=True)]),
            _session(["C"], user="u2"),
        ])
        path = str(tmp_path / "sessions.json")
        original.save(path)
        loaded = SessionSet.load(path)
        assert loaded == original
        assert loaded[0][1].synthetic is True

    def test_getitem_and_iteration(self):
        sessions = SessionSet([_session(["A"]), _session(["B"])])
        assert sessions[0].pages == ("A",)
        assert [s.pages for s in sessions] == [("A",), ("B",)]
