"""Property tests for transaction identification."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sessions.model import Request, Session, SessionSet
from repro.transactions.maximal_forward import maximal_forward_references
from repro.transactions.reference_length import ReferenceLengthModel

_PAGES = st.sampled_from([f"P{i}" for i in range(5)])


@st.composite
def page_walk(draw):
    pages = draw(st.lists(_PAGES, max_size=20))
    return Session.from_pages(pages) if pages else Session([])


@settings(max_examples=100, deadline=None)
@given(page_walk())
def test_mfr_transactions_are_duplicate_free(session):
    for transaction in maximal_forward_references(session):
        assert len(transaction) == len(set(transaction))


@settings(max_examples=100, deadline=None)
@given(page_walk())
def test_mfr_covers_every_distinct_page(session):
    covered = {page for transaction in maximal_forward_references(session)
               for page in transaction}
    assert covered == set(session.pages)


@settings(max_examples=100, deadline=None)
@given(page_walk())
def test_mfr_transactions_share_the_session_entry(session):
    transactions = maximal_forward_references(session)
    if transactions:
        assert all(t[0] == session.pages[0] for t in transactions)


def _is_subsequence(needle, haystack):
    iterator = iter(haystack)
    return all(symbol in iterator for symbol in needle)


@settings(max_examples=100, deadline=None)
@given(page_walk())
def test_mfr_transactions_are_order_preserving_subsequences(session):
    """Every transaction replays pages in the order the session visited
    them (gaps allowed: backtracked detours are cut out)."""
    for transaction in maximal_forward_references(session):
        assert _is_subsequence(transaction, session.pages)


@settings(max_examples=100, deadline=None)
@given(page_walk())
def test_mfr_transaction_count_bounded_by_backward_moves(session):
    """One transaction per backward excursion plus the final path: the
    count never exceeds the number of revisit events plus one."""
    transactions = maximal_forward_references(session)
    revisits = len(session.pages) - len(set(session.pages))
    assert len(transactions) <= revisits + 1


@st.composite
def timed_session(draw):
    n = draw(st.integers(1, 15))
    pages = draw(st.lists(_PAGES, min_size=n, max_size=n))
    gaps = draw(st.lists(st.floats(1.0, 500.0), min_size=n - 1,
                         max_size=n - 1))
    clock = 0.0
    requests = [Request(0.0, "u", pages[0])]
    for page, gap in zip(pages[1:], gaps):
        clock += gap
        requests.append(Request(clock, "u", page))
    return Session(requests)


@settings(max_examples=100, deadline=None)
@given(timed_session(), st.floats(1.0, 400.0))
def test_rl_transactions_partition_the_session(session, cutoff):
    model = ReferenceLengthModel(cutoff=cutoff)
    transactions = model.transactions(session)
    flattened = [page for transaction in transactions
                 for page in transaction]
    assert flattened == list(session.pages)


@settings(max_examples=100, deadline=None)
@given(timed_session(), st.floats(1.0, 400.0))
def test_rl_every_transaction_ends_in_content(session, cutoff):
    model = ReferenceLengthModel(cutoff=cutoff)
    flags = model.classify(session)
    assert len(flags) == len(session)
    position = 0
    for transaction in model.transactions(session):
        position += len(transaction)
        assert flags[position - 1] is True


@settings(max_examples=100, deadline=None)
@given(timed_session())
def test_rl_cutoff_monotone(session):
    """A larger cutoff never classifies more visits as content."""
    sessions = SessionSet([session])
    small = ReferenceLengthModel(cutoff=10.0)
    large = ReferenceLengthModel(cutoff=300.0)
    assert sum(small.classify(session)) >= sum(large.classify(session))
