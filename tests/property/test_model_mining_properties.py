"""Property tests for the session model and the mining invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.mining.apriori import apriori
from repro.mining.sequential import frequent_sequences
from repro.sessions.model import Request, Session, SessionSet

_PAGES = st.sampled_from([f"P{i}" for i in range(6)])


@st.composite
def session_sets(draw):
    n_sessions = draw(st.integers(1, 12))
    sessions = []
    for index in range(n_sessions):
        pages = draw(st.lists(_PAGES, min_size=1, max_size=8))
        sessions.append(Session.from_pages(pages, user_id=f"u{index % 3}"))
    return SessionSet(sessions)


@settings(max_examples=80, deadline=None)
@given(session_sets())
def test_session_set_json_roundtrip(sessions):
    assert SessionSet.from_jsonable(sessions.to_jsonable()) == sessions


@settings(max_examples=80, deadline=None)
@given(session_sets())
def test_session_set_accounting(sessions):
    assert sessions.total_requests() == sum(len(s) for s in sessions)
    assert (sessions.mean_length() * len(sessions)
            == pytest.approx(sessions.total_requests()))
    vocabulary = sessions.page_vocabulary()
    for session in sessions:
        assert set(session.pages) <= vocabulary


@settings(max_examples=40, deadline=None)
@given(session_sets(), st.floats(0.1, 1.0))
def test_apriori_supports_are_exact(sessions, min_support):
    transactions = [session.distinct_pages() for session in sessions]
    for itemset in apriori(sessions, min_support=min_support, max_size=3):
        true_count = sum(1 for transaction in transactions
                         if set(itemset.pages) <= transaction)
        assert itemset.count == true_count
        assert itemset.support == true_count / len(transactions)
        assert itemset.support >= min_support - 1e-12


@settings(max_examples=40, deadline=None)
@given(session_sets(), st.floats(0.1, 1.0))
def test_apriori_downward_closure(sessions, min_support):
    mined = {frozenset(item.pages)
             for item in apriori(sessions, min_support=min_support,
                                 max_size=4)}
    for itemset in mined:
        for page in itemset:
            if len(itemset) > 1:
                assert itemset - {page} in mined


@settings(max_examples=40, deadline=None)
@given(session_sets(), st.floats(0.1, 1.0))
def test_sequences_support_monotone_in_length(sessions, min_support):
    """A pattern's support never exceeds any of its contiguous
    sub-patterns' supports (anti-monotonicity)."""
    patterns = frequent_sequences(sessions, min_support=min_support,
                                  max_length=4)
    support = {pattern.pages: pattern.support for pattern in patterns}
    for pages, value in support.items():
        if len(pages) > 1:
            prefix = pages[:-1]
            suffix = pages[1:]
            if prefix in support:
                assert value <= support[prefix] + 1e-12
            if suffix in support:
                assert value <= support[suffix] + 1e-12


@settings(max_examples=40, deadline=None)
@given(session_sets(), st.floats(0.1, 1.0))
def test_sequences_are_actually_contiguous(sessions, min_support):
    from repro.evaluation.subsequence import contains
    patterns = frequent_sequences(sessions, min_support=min_support,
                                  max_length=4)
    for pattern in patterns:
        true_count = sum(1 for session in sessions
                         if contains(session.pages, pattern.pages))
        assert pattern.count == true_count
