"""Property tests for the agent simulator's ground-truth guarantees.

§4 of the paper: "agent simulator generated sessions will guarantee that
Pi refers to Pi+1" — every ground-truth session is a forward hyperlink walk
with the configured timing; the server log is exactly the cache-miss
projection of the navigation.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.simulator.agent import simulate_agent
from repro.simulator.config import SimulationConfig
from repro.topology.generators import hierarchical_site, random_site


_CONFIGS = st.builds(
    SimulationConfig,
    stp=st.floats(0.01, 0.5),
    lpp=st.floats(0.0, 0.9),
    nip=st.floats(0.0, 0.9),
    nip_revisits=st.booleans(),
    n_agents=st.just(1),
    max_requests_per_agent=st.just(120),
)


@st.composite
def site_config_seed(draw):
    topo_seed = draw(st.integers(0, 500))
    family = draw(st.sampled_from(["random", "hierarchical"]))
    if family == "random":
        site = random_site(draw(st.integers(5, 40)), 3.0,
                           start_fraction=0.2, seed=topo_seed)
    else:
        site = hierarchical_site(draw(st.integers(5, 40)), seed=topo_seed)
    config = draw(_CONFIGS)
    agent_seed = draw(st.integers(0, 10_000))
    return site, config, agent_seed


@settings(max_examples=60, deadline=None)
@given(site_config_seed())
def test_ground_truth_sessions_are_link_walks(data):
    site, config, seed = data
    trace = simulate_agent("u", site, config, random.Random(seed))
    for session in trace.real_sessions:
        assert session.pages[0] in site.pages
        for left, right in zip(session.pages, session.pages[1:]):
            assert site.has_link(left, right)


@settings(max_examples=60, deadline=None)
@given(site_config_seed())
def test_gaps_respect_max_stay(data):
    site, config, seed = data
    trace = simulate_agent("u", site, config, random.Random(seed))
    for session in trace.real_sessions:
        for earlier, later in zip(session.requests, session.requests[1:]):
            assert 0 < later.timestamp - earlier.timestamp <= config.max_stay


@settings(max_examples=60, deadline=None)
@given(site_config_seed())
def test_log_is_exactly_the_cache_miss_projection(data):
    site, config, seed = data
    trace = simulate_agent("u", site, config, random.Random(seed))
    non_synthetic = [
        (request.timestamp, request.page)
        for session in trace.real_sessions for request in session
        if not request.synthetic]
    logged = [(request.timestamp, request.page)
              for request in trace.server_requests]
    assert logged == non_synthetic
    assert trace.cache_misses == len(logged)


@settings(max_examples=60, deadline=None)
@given(site_config_seed())
def test_server_log_never_repeats_a_page(data):
    """With an infinite browser cache every page reaches the server at most
    once per agent."""
    site, config, seed = data
    trace = simulate_agent("u", site, config, random.Random(seed))
    pages = [request.page for request in trace.server_requests]
    assert len(pages) == len(set(pages))


@settings(max_examples=60, deadline=None)
@given(site_config_seed())
def test_sessions_do_not_overlap_in_time(data):
    site, config, seed = data
    trace = simulate_agent("u", site, config, random.Random(seed))
    for left, right in zip(trace.real_sessions, trace.real_sessions[1:]):
        assert left.end_time <= right.start_time
