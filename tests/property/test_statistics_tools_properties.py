"""Property tests for the statistical tooling: bootstrap, McNemar, and the
k-th order Markov predictor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation.bootstrap import bootstrap_accuracy
from repro.evaluation.comparison import compare_heuristics
from repro.mining.prediction import KthOrderMarkovPredictor, MarkovPredictor
from repro.sessions.model import Session, SessionSet

_PAGES = st.sampled_from([f"P{i}" for i in range(4)])


@st.composite
def truth_and_reconstruction(draw):
    """A ground truth and a reconstruction that keeps/garbles each user's
    sessions at random — covers the whole capture spectrum."""
    n_users = draw(st.integers(2, 6))
    truth = []
    recon = []
    for user_index in range(n_users):
        user = f"u{user_index}"
        n_sessions = draw(st.integers(1, 3))
        for session_index in range(n_sessions):
            pages = draw(st.lists(_PAGES, min_size=1, max_size=4))
            truth.append(Session.from_pages(pages, user_id=user))
            keep = draw(st.booleans())
            recon_pages = pages if keep else draw(
                st.lists(_PAGES, min_size=1, max_size=4))
            recon.append(Session.from_pages(recon_pages, user_id=user))
    return SessionSet(truth), SessionSet(recon)


@settings(max_examples=40, deadline=None)
@given(truth_and_reconstruction(), st.integers(0, 100))
def test_bootstrap_interval_brackets_estimate(data, seed):
    truth, recon = data
    interval = bootstrap_accuracy(truth, recon, replicates=80, seed=seed)
    assert 0.0 <= interval.low <= interval.high <= 1.0
    # the percentile interval need not contain the point estimate in
    # pathological resamples, but must at scale; here we only require the
    # invariant orderings plus determinism:
    again = bootstrap_accuracy(truth, recon, replicates=80, seed=seed)
    assert interval == again


@settings(max_examples=40, deadline=None)
@given(truth_and_reconstruction())
def test_mcnemar_is_antisymmetric(data):
    truth, recon = data
    forward = compare_heuristics(truth, recon, truth, "x", "y")
    backward = compare_heuristics(truth, truth, recon, "y", "x")
    assert forward.only_a == backward.only_b
    assert forward.only_b == backward.only_a
    assert forward.p_value == pytest.approx(backward.p_value)
    assert forward.accuracy_a == backward.accuracy_b


@settings(max_examples=40, deadline=None)
@given(truth_and_reconstruction())
def test_mcnemar_self_comparison_is_null(data):
    truth, recon = data
    result = compare_heuristics(truth, recon, recon)
    assert result.only_a == result.only_b == 0
    assert result.p_value == 1.0
    assert result.winner is None


@st.composite
def training_sessions(draw):
    n = draw(st.integers(1, 8))
    sessions = []
    for __ in range(n):
        pages = draw(st.lists(_PAGES, min_size=2, max_size=6))
        sessions.append(Session.from_pages(pages))
    return SessionSet(sessions)


@settings(max_examples=40, deadline=None)
@given(training_sessions())
def test_order1_kth_equals_first_order_model(sessions):
    first = MarkovPredictor().fit(sessions)
    kth = KthOrderMarkovPredictor(order=1).fit(sessions)
    for page in first.vocabulary():
        assert kth.predict((page,), top=3) == first.predict(page, top=3)


@settings(max_examples=40, deadline=None)
@given(training_sessions(), st.integers(2, 3))
def test_kth_order_training_hit_rate_dominates_first(sessions, order):
    """On its own training data, a higher-order model with back-off can
    never predict worse at top-1 than the first-order model it backs off
    to... unless ties reorder — so we assert the weaker, always-true
    bound: hit rates stay in [0, 1] and the model never crashes across
    context lengths."""
    model = KthOrderMarkovPredictor(order=order).fit(sessions)
    rate = model.hit_rate(sessions, top=1)
    assert 0.0 <= rate <= 1.0
    for session in sessions:
        for length in range(1, min(order, len(session.pages)) + 1):
            context = session.pages[:length]
            predictions = model.predict(context, top=2)
            assert len(predictions) <= 2
