"""Property tests for Smart-SRA's output invariants.

The paper states the algorithm's guarantees outright; we check them on
randomly generated topologies and request streams:

* every output session satisfies the **topology rule** (consecutive pages
  hyperlinked) and the **timestamp ordering rule** (non-decreasing, gaps
  within ρ);
* output sessions are **maximal** — no output session is a strict prefix of
  a sibling from the same candidate... and more generally no session's page
  sequence is a contiguous prefix of another with identical requests;
* Phase 1 candidates partition the input stream and respect both bounds;
* no input request is lost by Phase 2 (see the no-orphan argument in
  ``repro.core.config``), so rescue_orphans never changes the output.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import SmartSRAConfig
from repro.core.phase1 import split_candidates
from repro.core.phase2 import maximal_sessions
from repro.core.smart_sra import SmartSRA
from repro.sessions.model import Request
from repro.topology.generators import random_site


@st.composite
def topology_and_stream(draw):
    """A small random site plus a random (sorted) request stream over it."""
    seed = draw(st.integers(0, 10_000))
    n_pages = draw(st.integers(2, 15))
    graph = random_site(n_pages, min(3.0, n_pages - 1), start_fraction=0.5,
                        seed=seed)
    pages = sorted(graph.pages)
    length = draw(st.integers(0, 20))
    rng = random.Random(seed + 1)
    gaps = draw(st.lists(st.floats(0.0, 900.0), min_size=length,
                         max_size=length))
    requests = []
    clock = 0.0
    for gap in gaps:
        clock += gap
        requests.append(Request(clock, "u", rng.choice(pages)))
    return graph, requests


@settings(max_examples=60, deadline=None)
@given(topology_and_stream())
def test_phase1_candidates_partition_and_respect_bounds(data):
    graph, requests = data
    config = SmartSRAConfig()
    candidates = split_candidates(requests, config)
    flattened = [request for candidate in candidates
                 for request in candidate]
    assert flattened == list(requests)
    for candidate in candidates:
        assert (candidate[-1].timestamp - candidate[0].timestamp
                <= config.max_duration)
        for earlier, later in zip(candidate, candidate[1:]):
            assert later.timestamp - earlier.timestamp <= config.max_gap


@settings(max_examples=60, deadline=None)
@given(topology_and_stream())
def test_output_sessions_satisfy_both_rules(data):
    graph, requests = data
    config = SmartSRAConfig()
    sessions = SmartSRA(graph, config).reconstruct(requests)
    for session in sessions:
        for earlier, later in zip(session.requests, session.requests[1:]):
            assert graph.has_link(earlier.page, later.page)
            gap = later.timestamp - earlier.timestamp
            assert 0 <= gap <= config.max_gap


@settings(max_examples=60, deadline=None)
@given(topology_and_stream())
def test_no_request_is_dropped(data):
    graph, requests = data
    sessions = SmartSRA(graph).reconstruct(requests)
    covered = {(r.page, r.timestamp) for s in sessions for r in s}
    assert all((r.page, r.timestamp) in covered for r in requests)


@settings(max_examples=60, deadline=None)
@given(topology_and_stream())
def test_rescue_orphans_is_a_noop_on_sorted_input(data):
    graph, requests = data
    plain = SmartSRA(graph).reconstruct(requests)
    rescued = SmartSRA(
        graph, SmartSRAConfig(rescue_orphans=True)).reconstruct(requests)
    assert sorted(s.pages for s in plain) == sorted(
        s.pages for s in rescued)


@settings(max_examples=60, deadline=None)
@given(topology_and_stream())
def test_sessions_are_maximal_within_candidate(data):
    """No output session extends another output session of the same
    candidate by appendable pages — i.e. no session is a strict prefix of a
    sibling (the paper: "all sessions generated will be maximal sequences
    and do not subsume any other session")."""
    graph, requests = data
    config = SmartSRAConfig()
    for candidate in split_candidates(requests, config):
        sessions = maximal_sessions(candidate, graph, config)
        keyed = [tuple((r.page, r.timestamp) for r in s) for s in sessions]
        for a in keyed:
            for b in keyed:
                if a is not b:
                    assert not (len(a) < len(b) and b[:len(a)] == a), (
                        f"{a} is a strict prefix of {b}")
