"""Property tests: engine equivalence and invariant compliance.

For random multi-user request streams — interleaved users, equal
timestamps, boundary-magnitude gaps — the serial, parallel and streaming
execution paths must produce canonically identical session sets, and
everything Smart-SRA emits must satisfy the paper's five output rules.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import SmartSRAConfig
from repro.core.smart_sra import SmartSRA
from repro.diffcheck import verify_sessions
from repro.sessions.model import Request, SessionSet
from repro.streaming.pipeline import streaming_smart_sra
from repro.topology.generators import random_site

RHO = 600.0
DELTA = 1800.0


@st.composite
def adversarial_stream(draw):
    """A boundary-heavy multi-user stream plus its topology."""
    seed = draw(st.integers(0, 4000))
    graph = random_site(draw(st.integers(3, 10)), 2.5, start_fraction=0.5,
                        seed=seed)
    pages = sorted(graph.pages)
    rng = random.Random(seed + 13)
    requests = []
    for user in range(draw(st.integers(1, 4))):
        clock = float(rng.choice([0, 1, 100]))
        for _ in range(draw(st.integers(0, 12))):
            requests.append(Request(clock, f"u{user}", rng.choice(pages)))
            # gaps concentrated on the thresholds and on exact ties.
            clock += rng.choice([0.0, 0.0, 1.0, 30.0, RHO, RHO,
                                 RHO + 1e-6, DELTA - RHO, 250.0])
    requests.sort()
    return graph, tuple(requests)


def _canonical(sessions):
    return SessionSet(list(sessions)).canonical_form()


@settings(max_examples=40, deadline=None)
@given(adversarial_stream())
def test_serial_parallel_streaming_agree(data):
    graph, requests = data
    config = SmartSRAConfig(max_duration=DELTA, max_gap=RHO)
    serial = SmartSRA(graph, config).reconstruct(requests)
    parallel = SmartSRA(graph, config).reconstruct(requests, workers=2,
                                                   mode="thread")
    pipeline = streaming_smart_sra(graph, config)
    streamed = pipeline.feed_many(requests)
    streamed.extend(pipeline.flush())
    assert _canonical(serial) == _canonical(parallel)
    assert _canonical(serial) == _canonical(streamed)


@settings(max_examples=40, deadline=None)
@given(adversarial_stream())
def test_smart_sra_output_satisfies_invariants(data):
    graph, requests = data
    config = SmartSRAConfig(max_duration=DELTA, max_gap=RHO)
    sessions = SmartSRA(graph, config).reconstruct(requests)
    assert verify_sessions(sessions, graph, config) == ()


@settings(max_examples=25, deadline=None)
@given(adversarial_stream(), st.integers(0, 2**20))
def test_bounded_reorder_restores_canonical_output(data, shuffle_seed):
    """A seeded, time-bounded shuffle must not change the session set."""
    graph, requests = data
    config = SmartSRAConfig(max_duration=DELTA, max_gap=RHO)
    window = RHO / 2
    rng = random.Random(shuffle_seed)
    shuffled: list[Request] = []
    block: list[Request] = []
    for request in requests:
        if block and request.timestamp - block[0].timestamp > window:
            rng.shuffle(block)
            shuffled.extend(block)
            block = []
        block.append(request)
    rng.shuffle(block)
    shuffled.extend(block)

    serial = SmartSRA(graph, config).reconstruct(requests)
    pipeline = streaming_smart_sra(graph, config, reorder_window=window)
    streamed = pipeline.feed_many(shuffled)
    streamed.extend(pipeline.flush())
    assert _canonical(streamed) == _canonical(serial)
    assert pipeline.stats().late_dropped == 0
