"""Property tests: parallel reconstruction is bit-identical to serial.

The engine's contract (``repro.parallel``) is that worker count and
execution mode are *invisible* in the output: ``reconstruct(log,
workers=N)`` returns exactly ``reconstruct(log)`` for every N, and the
merged per-worker metrics registries reconcile with a serial run's.

Hypothesis drives arbitrary multi-user streams through the thread path
(cheap enough for hundreds of examples); a fixed-seed simulated log then
exercises the real process pool for every registered heuristic.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.evaluation.harness import standard_heuristics
from repro.obs import Registry, use_registry
from repro.sessions.model import Request
from repro.core.smart_sra import SmartSRA
from repro.simulator.population import simulate_population
from repro.topology.generators import random_site


def comparable(snapshot: dict) -> tuple:
    """A snapshot minus wall durations (which legitimately vary)."""
    return (snapshot["counters"], snapshot["gauges"],
            {series: (data["buckets"], data["count"])
             for series, data in snapshot["histograms"].items()
             if not series.split("{")[0].endswith(".seconds")})


@st.composite
def topology_and_multiuser_stream(draw):
    """A small random site plus a multi-user request stream over it."""
    seed = draw(st.integers(0, 10_000))
    n_pages = draw(st.integers(2, 12))
    graph = random_site(n_pages, min(3.0, n_pages - 1), start_fraction=0.5,
                        seed=seed)
    pages = sorted(graph.pages)
    users = [f"u{i}" for i in range(draw(st.integers(1, 5)))]
    length = draw(st.integers(0, 30))
    rng = random.Random(seed + 1)
    clock = 0.0
    stream = []
    for __ in range(length):
        clock += rng.uniform(0.0, 900.0)
        stream.append(Request(clock, rng.choice(users), rng.choice(pages)))
    rng.shuffle(stream)  # reconstruct() must not rely on input order
    return graph, stream


@settings(max_examples=60, deadline=None)
@given(topology_and_multiuser_stream(), st.sampled_from([2, 3, 4]))
def test_threaded_reconstruction_equals_serial(site_and_stream, workers):
    graph, stream = site_and_stream
    smart = SmartSRA(graph)
    serial_registry, parallel_registry = Registry(), Registry()
    with use_registry(serial_registry):
        serial = smart.reconstruct(stream)
    with use_registry(parallel_registry):
        parallel = smart.reconstruct(stream, workers=workers, mode="thread")
    assert list(parallel) == list(serial)
    assert (comparable(parallel_registry.snapshot())
            == comparable(serial_registry.snapshot()))


@pytest.fixture(scope="module")
def fixed_log():
    topology = paper_topology(seed=5)
    config = PAPER_DEFAULTS.simulation_config(n_agents=40, seed=5)
    return topology, simulate_population(topology, config).log_requests


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("name", ["heur1", "heur2", "heur3", "heur4"])
def test_process_parallel_equals_serial_per_heuristic(fixed_log, name,
                                                      workers):
    """The real process pool, for every heuristic the paper evaluates.

    ``mode="auto"`` resolves to processes here (every heuristic pickles);
    on platforms without process support the engine's documented thread
    fallback keeps the assertion meaningful rather than skipped.
    """
    topology, log = fixed_log
    heuristic = standard_heuristics(topology)[name]
    serial_registry, parallel_registry = Registry(), Registry()
    with use_registry(serial_registry):
        serial = heuristic.reconstruct(log)
    with use_registry(parallel_registry):
        parallel = heuristic.reconstruct(log, workers=workers)
    assert list(parallel) == list(serial)
    assert (comparable(parallel_registry.snapshot())
            == comparable(serial_registry.snapshot()))
