"""Property tests for CLF formatting/parsing and log cleaning."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.logs.cleaning import LogCleaner, NoiseInjector
from repro.logs.clf import (
    CLFRecord,
    format_clf_line,
    page_to_url,
    parse_clf_line,
    url_to_page,
)

_HOSTS = st.one_of(
    st.from_regex(r"[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}",
                  fullmatch=True),
    st.from_regex(r"agent[0-9]{6}", fullmatch=True),
)

_RECORDS = st.builds(
    CLFRecord,
    host=_HOSTS,
    # stay within years 1970-2100 so strftime-ish rendering is exercised
    timestamp=st.floats(0, 4_102_444_800, allow_nan=False),
    method=st.sampled_from(["GET", "POST", "HEAD"]),
    url=st.from_regex(r"/[A-Za-z0-9_/]{1,20}\.(html|png|css)",
                      fullmatch=True),
    protocol=st.sampled_from(["HTTP/1.0", "HTTP/1.1"]),
    status=st.sampled_from([200, 204, 301, 304, 404, 500]),
    size=st.one_of(st.none(), st.integers(0, 10_000_000)),
)


@settings(max_examples=200, deadline=None)
@given(_RECORDS)
def test_format_parse_roundtrip(record):
    parsed = parse_clf_line(format_clf_line(record))
    # CLF quantizes to whole seconds; everything else must survive exactly.
    assert parsed.host == record.host
    assert parsed.timestamp == float(int(record.timestamp))
    assert parsed.method == record.method
    assert parsed.url == record.url
    assert parsed.protocol == record.protocol
    assert parsed.status == record.status
    assert parsed.size == record.size


@settings(max_examples=200, deadline=None)
@given(st.from_regex(r"P[0-9]{1,6}", fullmatch=True))
def test_page_url_roundtrip(page):
    assert url_to_page(page_to_url(page)) == page


@settings(max_examples=50, deadline=None)
@given(st.lists(st.builds(
    CLFRecord,
    host=_HOSTS,
    timestamp=st.floats(0, 1_000_000, allow_nan=False),
    method=st.just("GET"),
    url=st.from_regex(r"/P[0-9]{1,4}\.html", fullmatch=True),
    protocol=st.just("HTTP/1.1"),
    status=st.just(200),
    size=st.integers(1, 1000),
), max_size=15), st.integers(0, 100))
def test_cleaning_inverts_injection(records, seed):
    """For any clean page-view log, inject-then-clean is the identity."""
    noisy = NoiseInjector(seed=seed).inject(records)
    recovered, __ = LogCleaner().clean(noisy)
    assert recovered == records
