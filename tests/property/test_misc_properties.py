"""Property tests for clustering, statistics, taxonomy, LCS, and trees."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation.similarity import lcs_length, session_overlap
from repro.evaluation.statistics import describe
from repro.evaluation.subsequence import contains
from repro.evaluation.taxonomy import ErrorCategory, classify_session
from repro.mining.clustering import cluster_sessions, jaccard
from repro.mining.navigation_tree import NavigationTree
from repro.sessions.model import Session, SessionSet

_PAGES = st.sampled_from([f"P{i}" for i in range(6)])


@st.composite
def session_sets(draw):
    n = draw(st.integers(1, 10))
    sessions = []
    for index in range(n):
        pages = draw(st.lists(_PAGES, min_size=1, max_size=6))
        sessions.append(Session.from_pages(pages, user_id=f"u{index % 3}"))
    return SessionSet(sessions)


@settings(max_examples=60, deadline=None)
@given(session_sets(), st.floats(0.05, 1.0))
def test_clusters_partition_the_sessions(sessions, similarity):
    clusters = cluster_sessions(sessions, similarity=similarity)
    clustered = [session for cluster in clusters
                 for session in cluster.sessions]
    assert sorted(s.pages for s in clustered) == sorted(
        s.pages for s in sessions)


@settings(max_examples=60, deadline=None)
@given(session_sets(), st.floats(0.05, 1.0))
def test_cluster_sizes_descend(sessions, similarity):
    clusters = cluster_sessions(sessions, similarity=similarity)
    sizes = [len(cluster) for cluster in clusters]
    assert sizes == sorted(sizes, reverse=True)


@settings(max_examples=100, deadline=None)
@given(st.sets(_PAGES), st.sets(_PAGES))
def test_jaccard_bounds_and_symmetry(first, second):
    a, b = frozenset(first), frozenset(second)
    value = jaccard(a, b)
    assert 0.0 <= value <= 1.0
    assert value == jaccard(b, a)
    assert jaccard(a, a) == 1.0


@settings(max_examples=60, deadline=None)
@given(session_sets())
def test_statistics_internal_consistency(sessions):
    stats = describe(sessions)
    assert stats.total_requests == sum(
        length * count for length, count in stats.length_histogram.items())
    assert stats.max_length == max(stats.length_histogram)
    assert stats.mean_length <= stats.max_length
    assert stats.page_entropy >= 0.0
    assert sum(count for __, count in stats.top_pages) <= stats.total_requests


@settings(max_examples=100, deadline=None)
@given(st.lists(_PAGES, max_size=12), st.lists(_PAGES, max_size=12))
def test_lcs_bounds(first, second):
    value = lcs_length(first, second)
    assert 0 <= value <= min(len(first), len(second))
    # LCS upper-bounds any contiguous containment:
    if contains(first, second):
        assert value == len(second)


@settings(max_examples=100, deadline=None)
@given(st.lists(_PAGES, min_size=1, max_size=8),
       st.lists(_PAGES, max_size=12))
def test_overlap_is_one_iff_subsequence(real_pages, other_pages):
    real = Session.from_pages(real_pages)
    candidate = Session.from_pages(other_pages) if other_pages \
        else Session([])
    overlap = session_overlap(real, candidate)
    assert 0.0 <= overlap <= 1.0
    if overlap == 1.0:
        # every real page embeds in order (possibly with gaps)
        iterator = iter(candidate.pages)
        assert all(page in iterator for page in real.pages)


@settings(max_examples=60, deadline=None)
@given(st.lists(_PAGES, min_size=1, max_size=8),
       st.lists(st.lists(_PAGES, min_size=1, max_size=8), max_size=5))
def test_taxonomy_is_total_and_consistent(real_pages, pool_pages):
    real = Session.from_pages(real_pages)
    pool = [Session.from_pages(pages) for pages in pool_pages]
    category = classify_session(real, pool)
    assert isinstance(category, ErrorCategory)
    if category is ErrorCategory.EXACT:
        assert any(candidate.pages == real.pages for candidate in pool)
    if category in (ErrorCategory.EXACT, ErrorCategory.MERGED):
        assert any(contains(candidate.pages, real.pages)
                   for candidate in pool)
    if category is ErrorCategory.LOST:
        seen = {page for candidate in pool for page in candidate.pages}
        assert not (set(real.pages) & seen)


@settings(max_examples=60, deadline=None)
@given(session_sets())
def test_navigation_tree_support_is_antitone_in_prefix_length(sessions):
    tree = NavigationTree(sessions)
    for session in sessions:
        pages = list(session.pages)
        supports = [tree.support(pages[:length])
                    for length in range(len(pages) + 1)]
        assert supports == sorted(supports, reverse=True)
        assert supports[0] == tree.session_count
        assert supports[-1] >= 1


@settings(max_examples=60, deadline=None)
@given(session_sets())
def test_navigation_tree_children_sum_to_at_most_parent(sessions):
    tree = NavigationTree(sessions)
    for path, support in tree.walk():
        children = tree.continuations(path)
        assert sum(children.values()) <= support


@settings(max_examples=60, deadline=None)
@given(session_sets(), st.floats(0.1, 1.0))
def test_frequent_paths_are_real_prefixes(sessions, min_support):
    tree = NavigationTree(sessions)
    for path, support in tree.frequent_paths(min_support=min_support):
        assert tree.support(path) == support
        assert support >= min_support * tree.session_count - 1e-9
