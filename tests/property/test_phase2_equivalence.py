"""Property test: the fast Phase 2 equals the paper-reference Phase 2."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import SmartSRAConfig
from repro.core.phase2 import maximal_sessions, maximal_sessions_fast
from repro.sessions.model import Request
from repro.topology.generators import random_site


@st.composite
def candidate_and_topology(draw):
    seed = draw(st.integers(0, 10_000))
    n_pages = draw(st.integers(2, 20))
    density = draw(st.floats(0.5, min(6.0, n_pages - 1)))
    graph = random_site(n_pages, density, start_fraction=0.5, seed=seed)
    pages = sorted(graph.pages)
    rng = random.Random(seed + 1)
    length = draw(st.integers(0, 30))
    # gaps small enough that most requests stay in one ρ window, with
    # occasional larger ones to exercise the window boundary.
    gaps = draw(st.lists(st.floats(0.0, 700.0), min_size=length,
                         max_size=length))
    clock = 0.0
    candidate = []
    for gap in gaps:
        clock += min(gap, 590.0)  # keep it a legal Phase-1 candidate
        candidate.append(Request(clock, "u", rng.choice(pages)))
    return graph, candidate


def _session_multiset(sessions):
    return sorted(tuple((r.page, r.timestamp) for r in session)
                  for session in sessions)


@settings(max_examples=120, deadline=None)
@given(candidate_and_topology(), st.booleans())
def test_fast_equals_reference(data, rescue):
    graph, candidate = data
    config = SmartSRAConfig(rescue_orphans=rescue)
    reference = maximal_sessions(candidate, graph, config)
    fast = maximal_sessions_fast(candidate, graph, config)
    assert _session_multiset(fast) == _session_multiset(reference)


@settings(max_examples=60, deadline=None)
@given(candidate_and_topology())
def test_fast_output_satisfies_both_rules(data):
    graph, candidate = data
    config = SmartSRAConfig()
    for session in maximal_sessions_fast(candidate, graph, config):
        for earlier, later in zip(session.requests, session.requests[1:]):
            assert graph.has_link(earlier.page, later.page)
            assert 0 <= later.timestamp - earlier.timestamp <= config.max_gap
