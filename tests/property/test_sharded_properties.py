"""Property tests for the sharded runtime's pure invariants.

Two contracts are load-bearing enough to fuzz rather than spot-check:

* the shard router is a pure function of the user id — the same user
  must land on the same shard every time, for every shard count, or
  replay after failover would split a user's candidate across workers;
* the :class:`~repro.streaming.sharded.ShardLedger` reconciles exactly
  (``fed == routed + replayed + shed``) under *any* interleaving of
  routes, acks, failovers and shard sheds — the coordinator asserts
  this at the end of every run, so a schedule that breaks it would be
  a silent-loss bug.

Neither property forks a process; both run on the bookkeeping alone.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.streaming.sharded import ShardLedger, shard_for

USER_IDS = st.text(min_size=1, max_size=24)


@settings(max_examples=120, deadline=None)
@given(USER_IDS, st.integers(1, 16))
def test_router_is_stable_and_in_range(user_id, n_shards):
    first = shard_for(user_id, n_shards)
    assert 0 <= first < n_shards
    assert all(shard_for(user_id, n_shards) == first for _ in range(3))


@settings(max_examples=60, deadline=None)
@given(st.lists(USER_IDS, min_size=20, max_size=60, unique=True),
       st.integers(2, 8))
def test_router_spreads_users_across_shards(users, n_shards):
    """Sanity, not uniformity: BLAKE2b over >= 20 distinct ids should
    touch more than one shard — a constant router would pass stability
    but serialize the whole population onto one worker."""
    assert len({shard_for(user, n_shards) for user in users}) > 1


@st.composite
def kill_schedule(draw):
    """A random interleaving of ledger operations over a few shards.

    Each step is ``(op, shard)``; acks retire a random prefix of the
    shard's pending window, mirroring how a worker acks at capsule
    boundaries, and sheds may hit an already-shed shard (a no-op the
    real coordinator also performs when a respawn exhausts retries).
    """
    shards = draw(st.integers(1, 4))
    steps = draw(st.lists(
        st.tuples(st.sampled_from(["route", "ack", "fail", "shed"]),
                  st.integers(0, shards - 1)),
        min_size=0, max_size=120))
    return shards, steps


@settings(max_examples=120, deadline=None)
@given(kill_schedule(), st.randoms(use_true_random=False))
def test_ledger_reconciles_under_any_schedule(schedule, rng):
    shards, steps = schedule
    ledger = ShardLedger(shards)
    for op, shard in steps:
        if op == "route":
            ledger.route(shard)
        elif op == "ack":
            ledger.ack(shard, rng.randint(0, ledger.pending(shard)))
        elif op == "fail":
            ledger.fail(shard)
        else:
            ledger.shed_shard(shard)
        assert ledger.reconciles(), vars(ledger)
        assert ledger.routed >= 0 and ledger.replayed >= 0
    # final dispositions cover exactly the fed events.
    assert ledger.fed == ledger.routed + ledger.replayed + ledger.shed
