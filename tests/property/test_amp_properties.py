"""Property tests for All-Maximal-Paths (repro.core.amp).

Four contracts, each over randomized candidates and topologies:

* every emitted path is link-consistent and within the ρ/δ bounds;
* reference and optimized enumerations are byte-identical at *any*
  budget — including budgets small enough to truncate — under every
  overflow policy that returns;
* the overflow policy verdict is a pure function of the exact count
  (block and truncate never disagree about whether the budget fired);
* nothing is dropped: every request of the candidate appears in at
  least one emitted path when the budget does not fire.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.amp import (
    AMPConfig,
    amp_sessions_optimized,
    amp_sessions_reference,
)
from repro.core.config import SmartSRAConfig
from repro.core.phase1 import split_candidates
from repro.exceptions import PathBudgetError
from repro.sessions.model import Request, SessionSet
from repro.topology.generators import random_site


@st.composite
def candidate_and_topology(draw):
    seed = draw(st.integers(0, 10_000))
    n_pages = draw(st.integers(2, 16))
    density = draw(st.floats(0.5, min(6.0, n_pages - 1)))
    graph = random_site(n_pages, density, start_fraction=0.5, seed=seed)
    pages = sorted(graph.pages)
    rng = random.Random(seed + 1)
    length = draw(st.integers(0, 24))
    gaps = draw(st.lists(st.floats(0.0, 700.0), min_size=length,
                         max_size=length))
    clock = 0.0
    stream = []
    for gap in gaps:
        clock += gap
        stream.append(Request(clock, "u", rng.choice(pages)))
    # AMP's contract is over *legal Phase-1 candidates* (that is what
    # bounds δ), so run the real split and take the longest candidate.
    candidates = split_candidates(stream)
    candidate = max(candidates, key=len) if candidates else []
    return graph, candidate


def _digest(outcome):
    return SessionSet(outcome.sessions).canonical_digest()


@settings(max_examples=100, deadline=None)
@given(candidate_and_topology())
def test_paths_are_link_consistent_and_bounded(data):
    graph, candidate = data
    config = SmartSRAConfig()
    outcome = amp_sessions_reference(candidate, graph, config)
    for session in outcome.sessions:
        span = session.requests[-1].timestamp - session.requests[0].timestamp
        assert span <= config.max_duration
        for earlier, later in zip(session.requests, session.requests[1:]):
            assert graph.has_link(earlier.page, later.page)
            assert 0 <= later.timestamp - earlier.timestamp <= config.max_gap


@settings(max_examples=100, deadline=None)
@given(candidate_and_topology(), st.integers(1, 64))
def test_reference_equals_optimized_at_any_budget(data, budget):
    graph, candidate = data
    amp = AMPConfig(path_budget=budget, overflow="truncate")
    reference = amp_sessions_reference(candidate, graph, amp=amp)
    optimized = amp_sessions_optimized(candidate, graph, amp=amp)
    assert reference.path_count == optimized.path_count
    assert reference.policy == optimized.policy
    assert _digest(reference) == _digest(optimized)
    assert len(reference.sessions) <= budget


@settings(max_examples=60, deadline=None)
@given(candidate_and_topology(), st.integers(1, 8))
def test_overflow_verdict_is_deterministic(data, budget):
    graph, candidate = data
    count = amp_sessions_reference(
        candidate, graph,
        amp=AMPConfig(path_budget=budget, overflow="truncate")).path_count
    blocked = amp_sessions_reference(
        candidate, graph,
        amp=AMPConfig(path_budget=budget, overflow="block"))
    if count > budget:
        assert blocked.policy == "block"
        assert blocked.sessions == []
        try:
            amp_sessions_optimized(
                candidate, graph,
                amp=AMPConfig(path_budget=budget, overflow="raise"))
            raised = False
        except PathBudgetError:
            raised = True
        assert raised
    else:
        assert blocked.policy is None
        assert len(blocked.sessions) == count


@settings(max_examples=100, deadline=None)
@given(candidate_and_topology())
def test_nothing_dropped_under_default_budget(data):
    graph, candidate = data
    outcome = amp_sessions_optimized(candidate, graph)
    if outcome.policy is not None:
        return  # budget fired: coverage is deliberately sacrificed
    covered = {(r.timestamp, r.page)
               for session in outcome.sessions for r in session}
    assert covered == {(r.timestamp, r.page) for r in candidate}
