"""Property tests: the governor's ledger always reconciles, its budget
always binds, and an unpressured governor never changes output."""

from __future__ import annotations

import random
import tempfile

from hypothesis import given, settings, strategies as st

from repro.exceptions import OverloadError
from repro.sessions.model import Request
from repro.streaming.governor import GovernorConfig, request_cost
from repro.streaming.pipeline import streaming_phase1, streaming_smart_sra
from repro.topology.generators import random_site


@st.composite
def bursty_stream(draw):
    """A time-sorted multi-user stream with adversarial density: some
    users fire far faster than ρ, so caps and watermarks engage."""
    seed = draw(st.integers(0, 5000))
    rng = random.Random(seed + 1)
    n_requests = draw(st.integers(0, 80))
    n_users = draw(st.integers(1, 6))
    gaps = draw(st.lists(st.floats(0.0, 90.0), min_size=n_requests,
                         max_size=n_requests))
    clock = 0.0
    requests = []
    for gap in gaps:
        clock += gap
        requests.append(Request(clock, f"u{rng.randint(0, n_users - 1)}",
                                f"P{rng.randint(0, 5)}"))
    return requests


POLICY = st.sampled_from(["evict", "shed", "raise", "block"])


def _pipeline_for(policy, workdir, **overrides):
    kwargs = dict(memory_budget=2048, per_user_cap=8,
                  quarantine_after=2, quarantine_cap=16,
                  overload_policy=policy)
    kwargs.update(overrides)
    if policy == "block":
        kwargs["spill_dir"] = workdir
    return streaming_phase1(governor=GovernorConfig(**kwargs),
                            late_policy="drop")


@settings(max_examples=60, deadline=None)
@given(bursty_stream(), POLICY)
def test_ledger_reconciles_at_every_step(requests, policy):
    """fed == buffered + spilled + quarantined + closed + evicted + shed
    (+ spill_lost) after every feed and after every flush."""
    with tempfile.TemporaryDirectory(prefix="governor-prop-") as workdir:
        pipeline = _pipeline_for(policy, workdir)
        for request in requests:
            try:
                pipeline.feed(request)
            except OverloadError:
                pass                       # 'raise' refuses; state intact
            stats = pipeline.stats()
            assert stats.reconciles(), stats
        pipeline.flush()
        stats = pipeline.stats()
        assert stats.reconciles(), stats
        assert stats.fed_requests == (
            stats.buffered_requests + stats.spilled_requests
            + stats.quarantine_buffered + stats.closed_requests
            + stats.evicted_requests + stats.shed_requests
            + stats.spill_lost)


@settings(max_examples=60, deadline=None)
@given(bursty_stream(), POLICY)
def test_tracked_bytes_never_exceed_the_budget(requests, policy):
    """With one-request headroom under the high watermark (the doctor
    audit's requirement), peak tracked state stays under the budget."""
    with tempfile.TemporaryDirectory(prefix="governor-prop-") as workdir:
        pipeline = _pipeline_for(policy, workdir)
        for request in requests:
            try:
                pipeline.feed(request)
            except OverloadError:
                pass
        stats = pipeline.stats()
        assert stats.peak_tracked_bytes <= 2048, stats
        pipeline.flush()
        assert pipeline.stats().peak_tracked_bytes <= 2048


@settings(max_examples=60, deadline=None)
@given(bursty_stream(), POLICY)
def test_no_request_vanishes_without_a_counter(requests, policy):
    """Every fed request either reaches an emitted session or is named
    by a degradation counter — nothing is silently lost."""
    with tempfile.TemporaryDirectory(prefix="governor-prop-") as workdir:
        pipeline = _pipeline_for(policy, workdir)
        sessions = []
        for request in requests:
            try:
                sessions.extend(pipeline.feed(request))
            except OverloadError:
                pass
        sessions.extend(pipeline.flush())
        stats = pipeline.stats()
        emitted = sum(len(s.requests) for s in sessions)
        assert emitted == (stats.closed_requests + stats.evicted_requests
                           - stats.spill_lost) or stats.spill_lost == 0
        assert emitted + stats.shed_requests + stats.spill_lost \
            == stats.fed_requests


@settings(max_examples=40, deadline=None)
@given(bursty_stream())
def test_unpressured_governor_is_a_pure_pass_through(requests):
    """A governor whose budget is never hit must not change a byte of
    output relative to the ungoverned pipeline."""
    pages = sorted({r.page for r in requests}) or ["P0"]
    graph = random_site(max(3, len(pages)), 2.5, seed=7)
    site_pages = sorted(graph.pages)
    mapped = [Request(r.timestamp, r.user_id,
                      site_pages[int(r.page[1:]) % len(site_pages)])
              for r in requests]
    plain = streaming_smart_sra(graph)
    governed = streaming_smart_sra(
        graph, governor=GovernorConfig(memory_budget=1 << 30))
    a = plain.feed_many(mapped) + plain.flush()
    b = governed.feed_many(mapped) + governed.flush()
    key = lambda sessions: sorted(
        (s.user_id, s.pages, s.start_time) for s in sessions)
    assert key(a) == key(b)
    assert governed.stats().evictions == 0
    assert governed.stats().reconciles()


@settings(max_examples=60, deadline=None)
@given(bursty_stream())
def test_request_cost_covers_every_admitted_request(requests):
    """tracked_bytes is exactly the sum of costs of what is buffered."""
    pipeline = _pipeline_for("evict", None,
                             memory_budget=1 << 30, per_user_cap=1 << 20,
                             quarantine_cap=1 << 20)
    pipeline.feed_many(requests)
    stats = pipeline.stats()
    expected = sum(request_cost(r) for buffer
                   in pipeline._buffers.values() for r in buffer)
    assert stats.tracked_bytes == expected
