"""Property tests: the columnar plane equals the object path everywhere.

Three equivalences, each over hypothesis-generated multi-user streams with
equal-timestamp ties and δ/ρ-boundary gaps:

* Phase-1 split boundaries (``Phase1Only``) are identical to the object
  path's — in the numpy backend *and* the stdlib fallback;
* the full Smart-SRA columnar engine reconstructs the same canonical
  session set as the object engine;
* the fallback backend's output is *exactly* (order included) the numpy
  backend's.
"""

from __future__ import annotations

import contextlib
import os
import random

from hypothesis import given, settings, strategies as st

from repro.core.columnar import COLUMNAR_FALLBACK_ENV, numpy_available
from repro.core.smart_sra import Phase1Only, SmartSRA
from repro.sessions.model import Request
from repro.topology.generators import random_site

DELTA = 30.0 * 60.0
RHO = 10.0 * 60.0


@st.composite
def multi_user_stream(draw):
    """A stream engineered to sit on the interesting boundaries: gaps
    cluster around ρ and δ (exactly equal included), and timestamps
    repeat to exercise equal-time tie handling."""
    seed = draw(st.integers(0, 10_000))
    n_pages = draw(st.integers(2, 16))
    density = draw(st.floats(0.5, min(5.0, n_pages - 1)))
    graph = random_site(n_pages, density, start_fraction=0.5, seed=seed)
    pages = sorted(graph.pages)
    rng = random.Random(seed + 1)
    n_users = draw(st.integers(1, 4))
    requests = []
    for user in range(n_users):
        length = draw(st.integers(0, 16))
        clock = float(draw(st.integers(0, 3)))
        for __ in range(length):
            gap = draw(st.sampled_from(
                [0.0, 0.0, 1.0, 30.0, RHO - 1.0, RHO, RHO + 1.0,
                 DELTA - 1.0, DELTA, DELTA + 1.0]))
            clock += gap
            requests.append(Request(clock, f"user{user}",
                                    rng.choice(pages)))
    return graph, requests


def _canonical(sessions):
    return sorted(tuple((r.timestamp, r.user_id, r.page)
                        for r in session.requests)
                  for session in sessions)


@contextlib.contextmanager
def _forced_fallback():
    previous = os.environ.get(COLUMNAR_FALLBACK_ENV)
    os.environ[COLUMNAR_FALLBACK_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(COLUMNAR_FALLBACK_ENV, None)
        else:
            os.environ[COLUMNAR_FALLBACK_ENV] = previous


def _boundaries(sessions):
    """Phase-1 split boundaries as (user, first-ts, length) triples."""
    return sorted((s.requests[0].user_id, s.requests[0].timestamp, len(s))
                  for s in sessions)


@settings(max_examples=80, deadline=None)
@given(multi_user_stream())
def test_phase1_split_boundaries_match_object_path(data):
    graph, requests = data
    object_sessions = Phase1Only().reconstruct(requests)
    columnar_sessions = Phase1Only().reconstruct(requests,
                                                 engine="columnar")
    assert _boundaries(columnar_sessions) == _boundaries(object_sessions)
    assert _canonical(columnar_sessions) == _canonical(object_sessions)


@settings(max_examples=60, deadline=None)
@given(multi_user_stream())
def test_phase1_split_boundaries_match_in_fallback(data):
    graph, requests = data
    object_sessions = Phase1Only().reconstruct(requests)
    with _forced_fallback():
        fallback_sessions = Phase1Only().reconstruct(requests,
                                                     engine="columnar")
    assert _boundaries(fallback_sessions) == _boundaries(object_sessions)


@settings(max_examples=60, deadline=None)
@given(multi_user_stream())
def test_smart_sra_columnar_equals_object_canonically(data):
    graph, requests = data
    smart = SmartSRA(graph)
    assert (_canonical(smart.reconstruct(requests, engine="columnar"))
            == _canonical(smart.reconstruct(requests)))


@settings(max_examples=60, deadline=None)
@given(multi_user_stream())
def test_fallback_backend_exactly_equals_numpy(data):
    if not numpy_available():
        return  # the whole suite already runs on the fallback
    graph, requests = data
    numpy_sessions = SmartSRA(graph).reconstruct(requests,
                                                 engine="columnar")
    with _forced_fallback():
        fallback_sessions = SmartSRA(graph).reconstruct(requests,
                                                        engine="columnar")
    assert list(fallback_sessions) == list(numpy_sessions)


@st.composite
def cyclic_walk_stream(draw):
    """Pong walks over a ring of 2-cycles: every page is revisitable, so
    one session legally holds the same page several times — the shape
    the random-site strategy almost never produces (``random_site``
    forbids self-loops and rarely closes a 2-cycle), and exactly where a
    Phase-2 implementation keying on pages instead of ordinals breaks."""
    seed = draw(st.integers(0, 5_000))
    n = draw(st.integers(2, 8))
    pages = [f"C{i}" for i in range(n)]
    edges = set()
    for i in range(n):
        edges.add((pages[i], pages[(i + 1) % n]))
        edges.add((pages[(i + 1) % n], pages[i]))
    from repro.topology.graph import WebGraph
    graph = WebGraph(sorted(edges), start_pages=pages[:1])
    rng = random.Random(seed + 1)
    requests = []
    position = 0
    clock = 0.0
    for __ in range(draw(st.integers(1, 24))):
        requests.append(Request(clock, "u", pages[position]))
        position = (position + rng.choice([-1, 1])) % n
        clock += draw(st.sampled_from([0.0, 30.0, RHO, RHO + 1.0]))
    return graph, requests


@settings(max_examples=80, deadline=None)
@given(cyclic_walk_stream())
def test_cyclic_revisits_columnar_equals_object(data):
    """Satellite audit: repeated pages inside one session (2-cycle pong,
    ring laps) reconstruct identically on the object and columnar
    Phase-2 planes, numpy and fallback alike."""
    graph, requests = data
    smart = SmartSRA(graph)
    object_sessions = smart.reconstruct(requests)
    columnar_sessions = smart.reconstruct(requests, engine="columnar")
    assert _canonical(columnar_sessions) == _canonical(object_sessions)
    with _forced_fallback():
        fallback_sessions = smart.reconstruct(requests, engine="columnar")
    assert _canonical(fallback_sessions) == _canonical(object_sessions)
