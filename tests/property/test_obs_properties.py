"""Property tests: metrics reconcile with ``IngestReport``, always.

The ingestion path maintains two accounting systems — the per-run
:class:`~repro.logs.ingest.IngestReport` and the ``ingest.*`` counters of
whatever :class:`~repro.obs.Registry` is active.  These properties pin
down that for *any* fault-injected input and *any* non-strict error
policy the two agree field by field, and that both satisfy the coverage
invariant ``parsed + blank + quarantined + dropped == total_lines``.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.faults import FAULT_MODELS, chaos_stream
from repro.logs.clf import CLFRecord, format_clf_line
from repro.logs.ingest import (
    IngestReport,
    ingest_lines,
    report_from_registry,
)
from repro.obs import Registry, TimelineSampler, merge_snapshots, use_registry

_CLEAN_LINE = st.builds(
    lambda i, host, url: format_clf_line(
        CLFRecord(host, 1000.0 + 5.0 * i, "GET", url, "HTTP/1.1",
                  200, 256)),
    st.integers(0, 10_000),
    st.from_regex(r"10\.0\.[0-9]{1,2}\.[0-9]{1,3}", fullmatch=True),
    st.from_regex(r"/P[0-9]{1,3}\.html", fullmatch=True),
)

_FAULT_SPECS = st.lists(
    st.tuples(st.sampled_from(sorted(FAULT_MODELS)),
              st.floats(0.0, 1.0)),
    max_size=3,
)

_POLICIES = st.sampled_from(["skip", "quarantine", "repair"])


def _dirty_lines(lines: list[str], specs, seed: int) -> list[str]:
    return list(chaos_stream(lines, specs=specs or None, seed=seed))


class TestRegistryReportReconciliation:
    @settings(max_examples=60, deadline=None)
    @given(lines=st.lists(_CLEAN_LINE, max_size=25),
           specs=_FAULT_SPECS, seed=st.integers(0, 2**16),
           policy=_POLICIES)
    def test_registry_equals_report(self, lines, specs, seed, policy):
        """One run: the registry rebuild equals the run's own report."""
        dirty = _dirty_lines(lines, specs, seed)
        registry = Registry()
        report = IngestReport()
        quarantine: list[str] = []
        list(ingest_lines(dirty, policy=policy, report=report,
                          quarantine=quarantine, registry=registry))
        rebuilt = report_from_registry(registry)
        assert rebuilt.policy == policy
        assert rebuilt.total_lines == report.total_lines == len(dirty)
        assert rebuilt.parsed == report.parsed
        assert rebuilt.blank == report.blank
        assert rebuilt.quarantined == report.quarantined
        assert rebuilt.dropped == report.dropped
        assert rebuilt.repaired == report.repaired
        assert rebuilt.fault_counts == report.fault_counts
        assert report.reconciles() and rebuilt.reconciles()

    @settings(max_examples=30, deadline=None)
    @given(lines=st.lists(_CLEAN_LINE, max_size=15),
           specs=_FAULT_SPECS, seed=st.integers(0, 2**16),
           policies=st.lists(_POLICIES, min_size=2, max_size=3))
    def test_accumulation_across_runs(self, lines, specs, seed, policies):
        """Several runs into one registry: the rebuild equals the
        field-by-field sum of the individual reports."""
        dirty = _dirty_lines(lines, specs, seed)
        registry = Registry()
        reports = []
        with use_registry(registry):
            for policy in policies:
                report = IngestReport()
                list(ingest_lines(dirty, policy=policy, report=report,
                                  quarantine=[]))
                reports.append(report)
        rebuilt = report_from_registry(registry)
        for field in ("total_lines", "parsed", "blank", "quarantined",
                      "dropped", "repaired"):
            assert (getattr(rebuilt, field)
                    == sum(getattr(report, field) for report in reports))
        merged: dict[str, int] = {}
        for report in reports:
            for fault, count in report.fault_counts.items():
                merged[fault] = merged.get(fault, 0) + count
        assert rebuilt.fault_counts == merged
        expected = (policies[0] if len(set(policies)) == 1 else "mixed")
        assert rebuilt.policy == expected
        assert rebuilt.reconciles()

    @settings(max_examples=30, deadline=None)
    @given(lines=st.lists(_CLEAN_LINE, max_size=20),
           specs=_FAULT_SPECS, seed=st.integers(0, 2**16),
           policy=_POLICIES)
    def test_disabled_registry_changes_nothing(self, lines, specs, seed,
                                               policy):
        """The report is identical whether metrics are collected or not —
        instrumentation must never alter pipeline behaviour."""
        dirty = _dirty_lines(lines, specs, seed)

        def run(registry):
            report = IngestReport()
            records = list(ingest_lines(dirty, policy=policy,
                                        report=report, quarantine=[],
                                        registry=registry))
            return report, [(record.host, record.timestamp, record.url)
                            for record in records]

        with_metrics = run(Registry())
        without = run(Registry(enabled=False))
        assert with_metrics[0] == without[0]
        assert with_metrics[1] == without[1]


# -- merge_snapshots algebra -------------------------------------------------
#
# All numeric material is integer-valued so float addition is exact and
# the algebraic laws hold with ``==`` rather than a tolerance.  Histogram
# series share one fixed bucket layout because merging is only defined
# across identical bounds.

_NAMES = st.sampled_from(
    ["ingest.parsed", "governor.evictions", "stream.emitted",
     'sessions.count{heuristic=heur4}'])

_BOUNDS = (0.001, 0.1, 1.0)


def _histogram_doc(counts, overflow, total):
    return {"buckets": [[bound, count]
                        for bound, count in zip(_BOUNDS, counts)],
            "overflow": overflow,
            "sum": float(total),
            "count": sum(counts) + overflow}


_SNAPSHOTS = st.builds(
    lambda counters, gauges, histograms: {
        "version": 1, "counters": counters, "gauges": gauges,
        "histograms": histograms},
    st.dictionaries(_NAMES, st.integers(0, 10**6), max_size=3),
    st.dictionaries(_NAMES, st.integers(-100, 100).map(float), max_size=2),
    st.dictionaries(
        _NAMES,
        st.builds(_histogram_doc,
                  st.lists(st.integers(0, 50), min_size=len(_BOUNDS),
                           max_size=len(_BOUNDS)),
                  st.integers(0, 10),
                  st.integers(0, 1000)),
        max_size=2),
)


class TestMergeSnapshotsAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(a=_SNAPSHOTS, b=_SNAPSHOTS, c=_SNAPSHOTS)
    def test_associative(self, a, b, c):
        """(a + b) + c == a + (b + c), gauges included (last-write is
        associative too)."""
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right

    @settings(max_examples=60, deadline=None)
    @given(a=_SNAPSHOTS, b=_SNAPSHOTS)
    def test_commutative_without_gauges(self, a, b):
        """Counters and histograms add, so order cannot matter.  Gauges
        are deliberately last-write-wins (not commutative), hence the
        law is stated on the gauge-free projection."""
        for snapshot in (a, b):
            snapshot["gauges"] = {}
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    @settings(max_examples=60, deadline=None)
    @given(snapshot=_SNAPSHOTS)
    def test_identity_with_empty(self, snapshot):
        """An empty registry's snapshot is the neutral element on both
        sides, and a single-argument merge is a canonicalising no-op."""
        empty = Registry().snapshot()
        canonical = merge_snapshots(snapshot)
        assert merge_snapshots(empty, snapshot) == canonical
        assert merge_snapshots(snapshot, empty) == canonical
        assert merge_snapshots(canonical) == canonical


# -- timeline ring invariants ------------------------------------------------


class TestTimelineRingInvariants:
    @settings(max_examples=60, deadline=None)
    @given(increments=st.lists(st.integers(0, 100), min_size=1,
                               max_size=30),
           capacity=st.integers(2, 8))
    def test_ring_invariants(self, increments, capacity):
        """For any increment sequence and any capacity: the ring never
        exceeds capacity, eviction accounting is exact, timestamps are
        strictly monotonic, and the exported deltas telescope back to
        ``last - first`` over the retained window."""
        registry = Registry()
        counter = registry.counter("work.done")
        sampler = TimelineSampler(registry, interval=1.0,
                                  capacity=capacity)
        for step, amount in enumerate(increments):
            counter.inc(amount)
            sampler.sample(timestamp=float(step + 1))

        points = sampler.points()
        assert len(points) == min(len(increments), capacity)
        assert sampler.evicted == max(0, len(increments) - capacity)

        timestamps = [point.timestamp for point in points]
        assert timestamps == sorted(set(timestamps))

        document = sampler.to_dict()
        assert document["timestamps"] == timestamps
        values = document["counters"]["work.done"]
        deltas = document["deltas"].get("work.done", [])
        assert len(deltas) == len(values) - 1
        assert sum(deltas) == values[-1] - values[0]
        # the retained window's last value is the live counter.
        assert values[-1] == registry.value("work.done")

    @settings(max_examples=40, deadline=None)
    @given(counts=st.lists(st.integers(1, 5), min_size=2, max_size=10),
           capacity=st.integers(2, 12))
    def test_rates_are_deltas_over_time(self, counts, capacity):
        """With timestamps spaced exactly 2s apart, every exported rate
        is the matching delta halved."""
        registry = Registry()
        counter = registry.counter("lines.read")
        sampler = TimelineSampler(registry, interval=1.0,
                                  capacity=capacity)
        for step, amount in enumerate(counts):
            counter.inc(amount)
            sampler.sample(timestamp=2.0 * (step + 1))
        document = sampler.to_dict()
        deltas = document["deltas"].get("lines.read", [])
        rates = document["rates"].get("lines.read", [])
        assert len(rates) == len(deltas)
        for delta, rate in zip(deltas, rates):
            assert rate == delta / 2.0
