"""Property tests: metrics reconcile with ``IngestReport``, always.

The ingestion path maintains two accounting systems — the per-run
:class:`~repro.logs.ingest.IngestReport` and the ``ingest.*`` counters of
whatever :class:`~repro.obs.Registry` is active.  These properties pin
down that for *any* fault-injected input and *any* non-strict error
policy the two agree field by field, and that both satisfy the coverage
invariant ``parsed + blank + quarantined + dropped == total_lines``.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.faults import FAULT_MODELS, chaos_stream
from repro.logs.clf import CLFRecord, format_clf_line
from repro.logs.ingest import (
    IngestReport,
    ingest_lines,
    report_from_registry,
)
from repro.obs import Registry, use_registry

_CLEAN_LINE = st.builds(
    lambda i, host, url: format_clf_line(
        CLFRecord(host, 1000.0 + 5.0 * i, "GET", url, "HTTP/1.1",
                  200, 256)),
    st.integers(0, 10_000),
    st.from_regex(r"10\.0\.[0-9]{1,2}\.[0-9]{1,3}", fullmatch=True),
    st.from_regex(r"/P[0-9]{1,3}\.html", fullmatch=True),
)

_FAULT_SPECS = st.lists(
    st.tuples(st.sampled_from(sorted(FAULT_MODELS)),
              st.floats(0.0, 1.0)),
    max_size=3,
)

_POLICIES = st.sampled_from(["skip", "quarantine", "repair"])


def _dirty_lines(lines: list[str], specs, seed: int) -> list[str]:
    return list(chaos_stream(lines, specs=specs or None, seed=seed))


class TestRegistryReportReconciliation:
    @settings(max_examples=60, deadline=None)
    @given(lines=st.lists(_CLEAN_LINE, max_size=25),
           specs=_FAULT_SPECS, seed=st.integers(0, 2**16),
           policy=_POLICIES)
    def test_registry_equals_report(self, lines, specs, seed, policy):
        """One run: the registry rebuild equals the run's own report."""
        dirty = _dirty_lines(lines, specs, seed)
        registry = Registry()
        report = IngestReport()
        quarantine: list[str] = []
        list(ingest_lines(dirty, policy=policy, report=report,
                          quarantine=quarantine, registry=registry))
        rebuilt = report_from_registry(registry)
        assert rebuilt.policy == policy
        assert rebuilt.total_lines == report.total_lines == len(dirty)
        assert rebuilt.parsed == report.parsed
        assert rebuilt.blank == report.blank
        assert rebuilt.quarantined == report.quarantined
        assert rebuilt.dropped == report.dropped
        assert rebuilt.repaired == report.repaired
        assert rebuilt.fault_counts == report.fault_counts
        assert report.reconciles() and rebuilt.reconciles()

    @settings(max_examples=30, deadline=None)
    @given(lines=st.lists(_CLEAN_LINE, max_size=15),
           specs=_FAULT_SPECS, seed=st.integers(0, 2**16),
           policies=st.lists(_POLICIES, min_size=2, max_size=3))
    def test_accumulation_across_runs(self, lines, specs, seed, policies):
        """Several runs into one registry: the rebuild equals the
        field-by-field sum of the individual reports."""
        dirty = _dirty_lines(lines, specs, seed)
        registry = Registry()
        reports = []
        with use_registry(registry):
            for policy in policies:
                report = IngestReport()
                list(ingest_lines(dirty, policy=policy, report=report,
                                  quarantine=[]))
                reports.append(report)
        rebuilt = report_from_registry(registry)
        for field in ("total_lines", "parsed", "blank", "quarantined",
                      "dropped", "repaired"):
            assert (getattr(rebuilt, field)
                    == sum(getattr(report, field) for report in reports))
        merged: dict[str, int] = {}
        for report in reports:
            for fault, count in report.fault_counts.items():
                merged[fault] = merged.get(fault, 0) + count
        assert rebuilt.fault_counts == merged
        expected = (policies[0] if len(set(policies)) == 1 else "mixed")
        assert rebuilt.policy == expected
        assert rebuilt.reconciles()

    @settings(max_examples=30, deadline=None)
    @given(lines=st.lists(_CLEAN_LINE, max_size=20),
           specs=_FAULT_SPECS, seed=st.integers(0, 2**16),
           policy=_POLICIES)
    def test_disabled_registry_changes_nothing(self, lines, specs, seed,
                                               policy):
        """The report is identical whether metrics are collected or not —
        instrumentation must never alter pipeline behaviour."""
        dirty = _dirty_lines(lines, specs, seed)

        def run(registry):
            report = IngestReport()
            records = list(ingest_lines(dirty, policy=policy,
                                        report=report, quarantine=[],
                                        registry=registry))
            return report, [(record.host, record.timestamp, record.url)
                            for record in records]

        with_metrics = run(Registry())
        without = run(Registry(enabled=False))
        assert with_metrics[0] == without[0]
        assert with_metrics[1] == without[1]
