"""Property tests for fault injection and resilient ingestion.

Three contracts are pinned down here:

1. **Determinism** — every fault model is a pure function of
   ``(seed, rate, input)``: same seed, same corrupted stream, always.
2. **Reconciliation** — for *any* input stream and *any* error policy,
   the :class:`~repro.logs.ingest.IngestReport` accounts for every single
   input line: ``parsed + blank + quarantined + dropped == total_lines``.
3. **Strict equivalence** — the hardened strict reader raises exactly the
   exception a naive line-by-line parse would, at the same line number.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import LogFormatError
from repro.faults import FAULT_MODELS, chaos_stream
from repro.logs.clf import CLFRecord, format_clf_line, parse_log_line
from repro.logs.ingest import IngestReport, ingest_lines

_CLEAN_LINES = st.lists(
    st.builds(
        lambda i, host, url: format_clf_line(
            CLFRecord(host, 1000.0 + 5.0 * i, "GET", url, "HTTP/1.1",
                      200, 256)),
        st.integers(0, 10_000),
        st.from_regex(r"10\.0\.[0-9]{1,2}\.[0-9]{1,3}", fullmatch=True),
        st.from_regex(r"/P[0-9]{1,3}\.html", fullmatch=True),
    ),
    min_size=1, max_size=40,
)

# arbitrary text lines: clean records, garbage, blanks — anything the
# ingest layer might be fed after corruption.
_ANY_LINES = st.lists(
    st.one_of(
        _CLEAN_LINES.map(lambda ls: ls[0]),
        st.text(st.characters(codec="utf-8",
                              exclude_characters="\n"), max_size=60),
    ),
    max_size=30,
)

_MODEL_NAMES = st.sampled_from(sorted(FAULT_MODELS))


class TestInjectorDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(_CLEAN_LINES, _MODEL_NAMES, st.integers(0, 2**32),
           st.floats(0.0, 1.0, allow_nan=False))
    def test_fixed_seed_fixed_output(self, lines, name, seed, rate):
        model = FAULT_MODELS[name]
        first = list(model(rate, seed=seed).apply(lines))
        second = list(model(rate, seed=seed).apply(lines))
        assert first == second

    @settings(max_examples=30, deadline=None)
    @given(_CLEAN_LINES, st.integers(0, 2**32))
    def test_full_chaos_chain_is_deterministic(self, lines, seed):
        assert (list(chaos_stream(lines, seed=seed))
                == list(chaos_stream(lines, seed=seed)))

    @settings(max_examples=30, deadline=None)
    @given(_CLEAN_LINES, _MODEL_NAMES, st.integers(0, 2**32))
    def test_zero_rate_never_corrupts(self, lines, name, seed):
        assert list(FAULT_MODELS[name](0.0, seed=seed).apply(lines)) == lines

    @settings(max_examples=30, deadline=None)
    @given(_CLEAN_LINES, st.integers(0, 2**32),
           st.floats(0.0, 1.0, allow_nan=False),
           st.integers(1, 12))
    def test_reorder_displacement_is_bounded(self, lines, seed, rate,
                                             window):
        from repro.faults import ReorderLines
        tagged = [f"{i}|{line}" for i, line in enumerate(lines)]
        out = list(ReorderLines(rate, seed=seed, window=window).apply(tagged))
        assert sorted(out) == sorted(tagged)
        for position, line in enumerate(out):
            original = int(line.split("|", 1)[0])
            assert abs(position - original) <= window


class TestReconciliation:
    @settings(max_examples=80, deadline=None)
    @given(_ANY_LINES, st.sampled_from(["skip", "quarantine", "repair"]))
    def test_every_line_is_accounted_for(self, lines, policy):
        report, sink = IngestReport(), []
        records = list(ingest_lines(lines, policy=policy, report=report,
                                    quarantine=sink))
        assert report.total_lines == len(lines)
        assert report.parsed == len(records)
        assert report.reconciles(), report.summary()
        assert len(sink) == report.quarantined

    @settings(max_examples=40, deadline=None)
    @given(_CLEAN_LINES, st.integers(0, 2**32),
           st.floats(0.0, 0.3, allow_nan=False))
    def test_chaos_streams_ingest_without_raising(self, lines, seed, rate):
        specs = [(name, rate) for name in sorted(FAULT_MODELS)]
        dirty = list(chaos_stream(lines, specs=specs, seed=seed))
        report, sink = IngestReport(), []
        list(ingest_lines(dirty, policy="quarantine", report=report,
                          quarantine=sink))
        assert report.total_lines == len(dirty)
        assert report.reconciles(), report.summary()

    @settings(max_examples=40, deadline=None)
    @given(_ANY_LINES)
    def test_skip_parses_the_same_records_as_quarantine(self, lines):
        skipped = list(ingest_lines(lines, policy="skip"))
        quarantined = list(ingest_lines(lines, policy="quarantine",
                                        quarantine=[]))
        assert skipped == quarantined


class TestStrictEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(_ANY_LINES)
    def test_strict_matches_naive_scan(self, lines):
        from repro.logs.reader import iter_clf_lines

        naive_error = None
        for line_number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                parse_log_line(line.rstrip("\r\n"),
                               line_number=line_number)
            except LogFormatError as error:
                naive_error = error
                break

        if naive_error is None:
            list(iter_clf_lines(lines))        # must not raise either
            return
        with pytest.raises(LogFormatError) as caught:
            list(iter_clf_lines(lines))
        assert caught.value.line_number == naive_error.line_number
        assert str(caught.value) == str(naive_error)
