"""Property tests for the ⊏ capture relation: KMP vs a naive oracle."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.evaluation.subsequence import SubsequenceIndex, contains, find

_SYMBOLS = st.sampled_from(["A", "B", "C"])
_SEQ = st.lists(_SYMBOLS, max_size=30)


def _naive_find(haystack, needle):
    if not needle:
        return 0
    for start in range(len(haystack) - len(needle) + 1):
        if haystack[start:start + len(needle)] == needle:
            return start
    return -1


@given(_SEQ, _SEQ)
def test_find_matches_naive_oracle(haystack, needle):
    assert find(haystack, needle) == _naive_find(haystack, needle)


@given(_SEQ, st.integers(0, 29), st.integers(0, 29))
def test_every_slice_is_contained(sequence, start, length):
    needle = sequence[start:start + length]
    assert contains(sequence, needle)


@given(_SEQ, _SEQ)
def test_found_index_actually_matches(haystack, needle):
    index = find(haystack, needle)
    if index != -1:
        assert haystack[index:index + len(needle)] == needle


@given(_SEQ, _SEQ, _SEQ)
def test_containment_is_preserved_by_padding(prefix, needle, suffix):
    assert contains(prefix + needle + suffix, needle)


@given(_SEQ, _SEQ)
def test_transitivity_with_slices(haystack, needle):
    """If needle ⊏ haystack then needle ⊏ any superslice of the match."""
    index = find(haystack, needle)
    if index != -1 and needle:
        wider = haystack[max(0, index - 1):index + len(needle) + 1]
        assert contains(wider, needle)


_CORPUS = st.lists(_SEQ, max_size=8)


@given(_CORPUS, _SEQ)
def test_index_find_all_matches_exhaustive_scan(corpus, needle):
    """The rarest-symbol postings index ≡ scanning every haystack."""
    index = SubsequenceIndex(corpus)
    expected = [i for i, haystack in enumerate(corpus)
                if contains(haystack, needle)]
    assert index.find_all(needle) == expected
    assert index.contains_any(needle) == bool(expected)


@given(_CORPUS, st.integers(0, 7), st.integers(0, 29), st.integers(1, 29))
def test_index_finds_every_planted_slice(corpus, pick, start, length):
    """Any contiguous slice of a corpus member is found in that member."""
    if not corpus:
        return
    haystack = corpus[pick % len(corpus)]
    needle = haystack[start % (len(haystack) + 1):][:length]
    if not needle:
        return
    assert (pick % len(corpus)) in SubsequenceIndex(corpus).find_all(needle)
