"""Property: supervised execution under injected worker faults is
output-identical to the serial loop (the paper's numbers cannot depend on
how often the infrastructure failed)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.faults import use_execution_faults
from repro.parallel import RetryPolicy, supervised_map


def _work(x):
    """Module-level so it pickles into worker processes."""
    return (x * 31 + 7) % 1009


# one transient fault per run: a crash or a recoverable slow-down on an
# arbitrary chunk, firing for an arbitrary (small) number of attempts.
_FAULTS = st.one_of(
    st.builds(lambda i, a: f"crash-chunk:{i}:0:{a}",
              st.integers(0, 7), st.integers(1, 2)),
    st.builds(lambda i: f"slow-chunk:{i}:0.05", st.integers(0, 7)),
)


@settings(max_examples=8, deadline=None)
@given(spec=_FAULTS, n=st.integers(4, 40))
def test_supervised_output_equals_serial_under_faults(spec, n):
    expected = [_work(x) for x in range(n)]
    policy = RetryPolicy(max_retries=3, deadline=10.0, backoff_base=0.01,
                         on_failure="serial")
    with use_execution_faults(spec):
        outcome = supervised_map(_work, range(n), workers=2,
                                 mode="process", chunk_size=4,
                                 policy=policy)
    assert outcome.results == expected
    assert not outcome.failures or all(
        failure.resolution == "serial" for failure in outcome.failures)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**16), chunk=st.integers(0, 31),
       attempt=st.integers(0, 4))
def test_backoff_is_deterministic_bounded_and_monotone_in_cap(seed, chunk,
                                                              attempt):
    policy = RetryPolicy(backoff_base=0.05, backoff_cap=1.0, jitter=0.5,
                         seed=seed)
    delay = policy.backoff_for(chunk, attempt)
    assert delay == policy.backoff_for(chunk, attempt)
    raw = min(1.0, 0.05 * (2 ** attempt))
    assert raw <= delay <= raw * 1.5
