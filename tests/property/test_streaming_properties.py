"""Property tests: streaming output is always identical to batch output."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.smart_sra import Phase1Only, SmartSRA
from repro.sessions.model import Request
from repro.streaming.pipeline import streaming_phase1, streaming_smart_sra
from repro.topology.generators import random_site


@st.composite
def multi_user_stream(draw):
    """A random (globally time-sorted) multi-user request stream plus a
    small topology covering its pages."""
    seed = draw(st.integers(0, 5000))
    graph = random_site(draw(st.integers(3, 12)), 2.5, start_fraction=0.5,
                        seed=seed)
    pages = sorted(graph.pages)
    rng = random.Random(seed + 1)
    n_requests = draw(st.integers(0, 30))
    gaps = draw(st.lists(st.floats(0.0, 1200.0), min_size=n_requests,
                         max_size=n_requests))
    clock = 0.0
    requests = []
    for gap in gaps:
        clock += gap
        requests.append(Request(clock, f"u{rng.randint(0, 2)}",
                                rng.choice(pages)))
    return graph, requests


def _keys(sessions):
    return sorted((s.user_id, s.pages, s.start_time) for s in sessions)


@settings(max_examples=60, deadline=None)
@given(multi_user_stream())
def test_streaming_smart_sra_equals_batch(data):
    graph, requests = data
    batch = SmartSRA(graph).reconstruct(requests)
    pipeline = streaming_smart_sra(graph)
    streamed = pipeline.feed_many(requests)
    streamed.extend(pipeline.flush())
    assert _keys(streamed) == _keys(batch)


@settings(max_examples=60, deadline=None)
@given(multi_user_stream())
def test_streaming_phase1_equals_batch(data):
    __, requests = data
    batch = Phase1Only().reconstruct(requests)
    pipeline = streaming_phase1()
    streamed = pipeline.feed_many(requests)
    streamed.extend(pipeline.flush())
    assert _keys(streamed) == _keys(batch)


@settings(max_examples=60, deadline=None)
@given(multi_user_stream(), st.lists(st.floats(0.0, 5000.0), max_size=4))
def test_intermediate_watermarks_never_change_the_result(data, watermarks):
    """Flushing with any watermark schedule mid-stream must not alter the
    final session set (watermarks are capped at the stream's current event
    time — a watermark by definition never runs ahead of the input)."""
    graph, requests = data
    batch = SmartSRA(graph).reconstruct(requests)
    pipeline = streaming_smart_sra(graph)
    streamed = []
    cut = len(requests) // 2
    for request in requests[:cut]:
        streamed.extend(pipeline.feed(request))
    if cut:
        event_time = requests[cut - 1].timestamp
        for mark in sorted(watermarks):
            streamed.extend(pipeline.flush(watermark=min(mark, event_time)))
    for request in requests[cut:]:
        streamed.extend(pipeline.feed(request))
    streamed.extend(pipeline.flush())
    assert _keys(streamed) == _keys(batch)


@settings(max_examples=60, deadline=None)
@given(multi_user_stream())
def test_no_request_lost_or_duplicated_across_candidates(data):
    """Every fed request lands in exactly one closed candidate: the
    multiset of (user, timestamp) pairs across emitted sessions, after
    deduplicating Phase-2 branches, equals the input."""
    graph, requests = data
    pipeline = streaming_smart_sra(graph)
    emitted = pipeline.feed_many(requests)
    emitted.extend(pipeline.flush())
    covered = {(r.user_id, r.timestamp, r.page)
               for session in emitted for r in session}
    assert covered == {(r.user_id, r.timestamp, r.page) for r in requests}
