"""Property tests for the referrer heuristic's invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.sessions.model import Request
from repro.sessions.referrer import ReferrerHeuristic


@st.composite
def referrer_stream(draw):
    """A random stream where each request's referrer is either None, a
    previously seen page, or an unknown (external) page."""
    seed = draw(st.integers(0, 5000))
    rng = random.Random(seed)
    n = draw(st.integers(0, 25))
    pages = [f"P{i}" for i in range(8)]
    requests = []
    clock = 0.0
    seen: list[str] = []
    for __ in range(n):
        clock += rng.uniform(1.0, 900.0)
        kind = rng.random()
        if kind < 0.3 or not seen:
            referrer = None
        elif kind < 0.8:
            referrer = rng.choice(seen)
        else:
            referrer = "external"
        page = rng.choice(pages)
        requests.append(Request(clock, "u", page, referrer=referrer))
        seen.append(page)
    return requests


@settings(max_examples=80, deadline=None)
@given(referrer_stream())
def test_every_real_request_appears_exactly_once(requests):
    sessions = ReferrerHeuristic().reconstruct_user(requests)
    replayed = sorted((r.timestamp, r.page) for session in sessions
                      for r in session if not r.synthetic)
    assert replayed == sorted((r.timestamp, r.page) for r in requests)


@settings(max_examples=80, deadline=None)
@given(referrer_stream())
def test_sessions_respect_page_stay_bound(requests):
    heuristic = ReferrerHeuristic()
    for session in heuristic.reconstruct_user(requests):
        assert session.max_gap() <= heuristic.max_gap


@settings(max_examples=80, deadline=None)
@given(referrer_stream())
def test_non_first_pages_follow_their_referrer(requests):
    """Within a reconstructed session, every non-synthetic, non-first
    request's referrer equals the preceding page of its session."""
    for session in ReferrerHeuristic().reconstruct_user(requests):
        for earlier, later in zip(session.requests, session.requests[1:]):
            if later.referrer is not None:
                assert later.referrer == earlier.page


@settings(max_examples=80, deadline=None)
@given(referrer_stream())
def test_synthetic_landings_only_open_sessions(requests):
    for session in ReferrerHeuristic().reconstruct_user(requests):
        for index, request in enumerate(session.requests):
            if request.synthetic:
                assert index == 0
