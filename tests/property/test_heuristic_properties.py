"""Property tests shared by the baseline heuristics.

All reconstructors must *partition* a user's request stream in order
(time-oriented heuristics exactly; heur3 may additionally insert synthetic
backward movements, so for it we check the non-synthetic projection).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sessions.model import Request
from repro.sessions.navigation_oriented import NavigationHeuristic
from repro.sessions.time_oriented import DurationHeuristic, PageStayHeuristic
from repro.topology.generators import random_site


@st.composite
def request_stream(draw):
    gaps = draw(st.lists(st.floats(0.0, 3600.0), max_size=25))
    pages = draw(st.lists(st.sampled_from([f"P{i}" for i in range(8)]),
                          min_size=len(gaps), max_size=len(gaps)))
    clock = 0.0
    requests = []
    for gap, page in zip(gaps, pages):
        clock += gap
        requests.append(Request(clock, "u", page))
    return requests


@settings(max_examples=80, deadline=None)
@given(request_stream())
def test_duration_heuristic_partitions_stream(requests):
    sessions = DurationHeuristic().reconstruct_user(requests)
    flattened = [request for session in sessions for request in session]
    assert flattened == requests
    for session in sessions:
        assert session.duration <= 30 * 60


@settings(max_examples=80, deadline=None)
@given(request_stream())
def test_page_stay_heuristic_partitions_stream(requests):
    sessions = PageStayHeuristic().reconstruct_user(requests)
    flattened = [request for session in sessions for request in session]
    assert flattened == requests
    for session in sessions:
        assert session.max_gap() <= 10 * 60


@settings(max_examples=80, deadline=None)
@given(request_stream())
def test_both_time_heuristics_cover_every_request(requests):
    for heuristic in (DurationHeuristic(), PageStayHeuristic()):
        sessions = heuristic.reconstruct_user(requests)
        assert sum(len(session) for session in sessions) == len(requests)


@settings(max_examples=60, deadline=None)
@given(request_stream(), st.integers(0, 1000))
def test_navigation_heuristic_preserves_real_requests_in_order(requests,
                                                               seed):
    graph = random_site(8, 3.0, start_fraction=0.5, seed=seed)
    sessions = NavigationHeuristic(graph).reconstruct_user(requests)
    replayed = [request for session in sessions for request in session
                if not request.synthetic]
    assert replayed == requests


@settings(max_examples=60, deadline=None)
@given(request_stream(), st.integers(0, 1000))
def test_navigation_heuristic_inserted_pages_come_from_session(requests,
                                                               seed):
    graph = random_site(8, 3.0, start_fraction=0.5, seed=seed)
    for session in NavigationHeuristic(graph).reconstruct_user(requests):
        seen: set[str] = set()
        for request in session:
            if request.synthetic:
                assert request.page in seen
            seen.add(request.page)
