"""Property tests for session-set ops and log anonymization."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.logs.anonymize import pseudonymize_hosts, truncate_ipv4_hosts
from repro.logs.clf import CLFRecord
from repro.sessions.model import Session, SessionSet
from repro.sessions.ops import (
    concatenate,
    rename_pages,
    sample_users,
    split_by_user,
    within_window,
)

_PAGES = st.sampled_from([f"P{i}" for i in range(5)])


@st.composite
def session_sets(draw):
    n = draw(st.integers(1, 10))
    sessions = []
    for index in range(n):
        pages = draw(st.lists(_PAGES, min_size=1, max_size=5))
        start = draw(st.floats(0.0, 5000.0))
        sessions.append(Session.from_pages(
            pages, user_id=f"u{index % 4}", start=start, gap=30.0))
    return SessionSet(sessions)


@settings(max_examples=60, deadline=None)
@given(session_sets())
def test_split_then_concatenate_is_identity_up_to_order(sessions):
    rebuilt = concatenate(split_by_user(sessions).values())
    assert sorted((s.user_id, s.pages, s.start_time) for s in rebuilt) \
        == sorted((s.user_id, s.pages, s.start_time) for s in sessions)


@settings(max_examples=60, deadline=None)
@given(session_sets(), st.floats(0.0, 5000.0), st.floats(0.0, 5000.0))
def test_window_keeps_exactly_the_contained(sessions, a, b):
    start, end = min(a, b), max(a, b)
    kept = within_window(sessions, start, end)
    expected = sorted(
        (s.user_id, s.pages, s.start_time) for s in sessions
        if start <= s.start_time and s.end_time <= end)
    assert sorted((s.user_id, s.pages, s.start_time) for s in kept) \
        == expected


@settings(max_examples=60, deadline=None)
@given(session_sets(), st.floats(0.1, 1.0), st.integers(0, 50))
def test_sampling_never_splits_a_user(sessions, fraction, seed):
    sampled = sample_users(sessions, fraction, seed=seed)
    for user in sampled.users():
        assert len(sampled.for_user(user)) == len(sessions.for_user(user))


@settings(max_examples=60, deadline=None)
@given(session_sets())
def test_rename_roundtrip(sessions):
    there = rename_pages(sessions, lambda page: f"x-{page}")
    back = rename_pages(there, lambda page: page[2:])
    assert [s.pages for s in back] == [s.pages for s in sessions]


_HOSTS = st.one_of(
    st.from_regex(r"[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}",
                  fullmatch=True),
    st.from_regex(r"host[a-z0-9]{1,8}", fullmatch=True),
)


@st.composite
def record_lists(draw):
    hosts = draw(st.lists(_HOSTS, min_size=1, max_size=6))
    records = []
    for index, host in enumerate(hosts * 2):
        records.append(CLFRecord(host, float(index), "GET",
                                 f"/P{index}.html", "HTTP/1.1", 200, 10))
    return records


@settings(max_examples=60, deadline=None)
@given(record_lists(), st.text(min_size=1, max_size=10))
def test_pseudonymization_preserves_host_partition(records, key):
    anonymous = pseudonymize_hosts(records, key=key)
    original_partition = [record.host for record in records]
    masked_partition = [record.host for record in anonymous]
    # same host ↔ same pseudonym (the partition is isomorphic)
    mapping: dict[str, str] = {}
    for original, masked in zip(original_partition, masked_partition):
        assert mapping.setdefault(original, masked) == masked
    assert len(set(mapping.values())) == len(set(original_partition))


@settings(max_examples=60, deadline=None)
@given(record_lists(), st.integers(1, 3))
def test_truncation_is_idempotent_and_coarsening(records, keep):
    once = truncate_ipv4_hosts(records, keep_octets=keep)
    twice = truncate_ipv4_hosts(once, keep_octets=keep)
    assert once == twice
    # truncation can only merge hosts, never split them.
    assert (len({record.host for record in once})
            <= len({record.host for record in records}))
