"""Shared fixtures: the paper's literal examples and small simulated worlds."""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import (
    paper_example_topology,
    paper_table1_stream,
    paper_table3_stream,
)
from repro.simulator.config import SimulationConfig
from repro.simulator.population import simulate_population
from repro.topology.generators import random_site


@pytest.fixture(scope="session")
def fig1_topology():
    """The six-page topology of the paper's Figures 1 and 3."""
    return paper_example_topology()


@pytest.fixture()
def table1_stream():
    """Table 1's request sequence (minutes 0, 6, 15, 29, 32, 47)."""
    return paper_table1_stream()


@pytest.fixture()
def table3_stream():
    """Table 3's request sequence (minutes 0, 6, 9, 12, 14, 15)."""
    return paper_table3_stream()


@pytest.fixture(scope="session")
def small_site():
    """A 60-page random site used across simulator/integration tests."""
    return random_site(n_pages=60, avg_out_degree=6, start_fraction=0.1,
                       seed=42)


@pytest.fixture(scope="session")
def small_simulation(small_site):
    """A 200-agent simulation over the small site (session-scoped: several
    test modules reuse it read-only)."""
    config = SimulationConfig(n_agents=200, seed=7)
    return simulate_population(small_site, config)
