"""Integration: the paper's headline claims at the Table 5 operating point.

These assertions encode the *shape* of Figures 8-10, not absolute numbers:
Smart-SRA must dominate the three baselines, and the qualitative trends
(accuracy rises with STP, falls with LPP) must hold.
"""

from __future__ import annotations

import pytest

from repro.evaluation.harness import run_trial
from repro.simulator.config import SimulationConfig
from repro.topology.generators import random_site


@pytest.fixture(scope="module")
def paper_like_site():
    # smaller than the paper's 300 pages for test speed, same density ratio.
    return random_site(n_pages=120, avg_out_degree=8, seed=11)


@pytest.fixture(scope="module")
def default_trial(paper_like_site):
    return run_trial(paper_like_site,
                     SimulationConfig(n_agents=400, seed=23))


class TestHeadlineOrdering:
    def test_smart_sra_wins(self, default_trial):
        accs = default_trial.accuracies()
        assert accs["heur4"] > accs["heur1"]
        assert accs["heur4"] > accs["heur2"]
        assert accs["heur4"] > accs["heur3"]

    def test_smart_sra_clearly_better_than_time_heuristics(self,
                                                           default_trial):
        accs = default_trial.accuracies()
        best_time = max(accs["heur1"], accs["heur2"])
        assert accs["heur4"] > 1.4 * best_time

    def test_navigation_beats_time_at_defaults(self, default_trial):
        accs = default_trial.accuracies()
        assert accs["heur3"] > max(accs["heur1"], accs["heur2"])

    def test_smart_sra_sessions_shorter_than_heur3(self, default_trial):
        """§3: Smart-SRA avoids heur3's inserted backward movements, so its
        sessions are shorter."""
        reports = default_trial.reports
        assert (reports["heur4"].mean_reconstructed_length
                < reports["heur3"].mean_reconstructed_length)


class TestTrends:
    def test_accuracy_rises_with_stp(self, paper_like_site):
        low = run_trial(paper_like_site,
                        SimulationConfig(n_agents=300, seed=5, stp=0.02))
        high = run_trial(paper_like_site,
                         SimulationConfig(n_agents=300, seed=5, stp=0.20))
        for name in ("heur1", "heur2", "heur3", "heur4"):
            assert high.accuracies()[name] > low.accuracies()[name]

    def test_accuracy_falls_with_lpp(self, paper_like_site):
        low = run_trial(paper_like_site,
                        SimulationConfig(n_agents=300, seed=5, lpp=0.0))
        high = run_trial(paper_like_site,
                         SimulationConfig(n_agents=300, seed=5, lpp=0.8))
        for name in ("heur1", "heur2", "heur3", "heur4"):
            assert high.accuracies()[name] < low.accuracies()[name]

    def test_smart_sra_wins_across_lpp_range(self, paper_like_site):
        for lpp in (0.0, 0.4, 0.8):
            trial = run_trial(paper_like_site,
                              SimulationConfig(n_agents=300, seed=5,
                                               lpp=lpp))
            accs = trial.accuracies()
            assert accs["heur4"] >= max(accs["heur1"], accs["heur2"],
                                        accs["heur3"])

    def test_time_heuristics_fall_with_nip(self, paper_like_site):
        low = run_trial(paper_like_site,
                        SimulationConfig(n_agents=300, seed=5, nip=0.05))
        high = run_trial(paper_like_site,
                         SimulationConfig(n_agents=300, seed=5, nip=0.85))
        for name in ("heur1", "heur2"):
            assert high.accuracies()[name] < low.accuracies()[name]
