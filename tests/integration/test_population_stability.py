"""Integration: accuracy estimates converge well below the paper's 10,000
agents — the justification for running the benches on smaller populations
(see DESIGN.md's substitution table)."""

from __future__ import annotations

import pytest

from repro.evaluation.harness import run_trial
from repro.simulator.config import SimulationConfig
from repro.topology.generators import random_site


@pytest.fixture(scope="module")
def site():
    return random_site(n_pages=100, avg_out_degree=8, seed=17)


def test_accuracy_stable_across_population_sizes(site):
    medium = run_trial(site, SimulationConfig(n_agents=400, seed=1))
    large = run_trial(site, SimulationConfig(n_agents=1200, seed=1))
    for name in ("heur1", "heur2", "heur3", "heur4"):
        assert medium.accuracies()[name] == pytest.approx(
            large.accuracies()[name], abs=0.04)


def test_accuracy_stable_across_seeds(site):
    config = SimulationConfig(n_agents=500, seed=1)
    first = run_trial(site, config)
    second = run_trial(site, config.with_(seed=2))
    for name in ("heur1", "heur2", "heur3", "heur4"):
        assert first.accuracies()[name] == pytest.approx(
            second.accuracies()[name], abs=0.05)


def test_ordering_stable_across_topology_seeds():
    for topo_seed in (3, 4):
        site = random_site(n_pages=100, avg_out_degree=8, seed=topo_seed)
        trial = run_trial(site, SimulationConfig(n_agents=300, seed=9))
        accs = trial.accuracies()
        assert accs["heur4"] > max(accs["heur1"], accs["heur2"])
