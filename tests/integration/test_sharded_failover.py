"""Integration: worker kills mid-stream must not change a single byte.

The sharded runtime's hard guarantee is exercised here end to end:
forked workers are killed (or wedged) by injected execution faults at
chosen event ordinals, failover restores each from its acked capsule
plus replay log, and the sealed :class:`SessionSet` must be
byte-identical — by canonical digest — to the single-threaded governed
run of the same stream.  Both a uniform simulated workload and the
adversarial crawler + NAT mix are held to the same digest.
"""

from __future__ import annotations

import pytest

from repro.faults.execution import use_execution_faults
from repro.obs import Registry
from repro.sessions.model import Request, SessionSet
from repro.simulator.adversarial import adversarial_workload
from repro.streaming import (ShardedConfig, ShardedStreamingRuntime,
                             streaming_smart_sra)
from repro.streaming.governor import GovernorConfig
from repro.parallel import RetryPolicy
from repro.topology.generators import random_site

#: generous budget: per-user caps still engage, but global-budget
#: eviction (shard-order dependent) never fires, keeping byte identity
#: in scope — see the module docstring of repro.streaming.sharded.
GOVERNOR = GovernorConfig(memory_budget=1 << 30, per_user_cap=64,
                          quarantine_after=2, quarantine_cap=256)

#: fast, seeded failover backoff so the suite doesn't sleep for real.
RETRY = RetryPolicy(max_retries=3, deadline=60.0, backoff_base=0.01,
                    backoff_cap=0.05, seed=0)


def serial_digest(topology, requests):
    pipeline = streaming_smart_sra(topology, governor=GOVERNOR,
                                   registry=Registry())
    sessions = pipeline.feed_many(requests)
    sessions.extend(pipeline.flush())
    return SessionSet(sessions).canonical_digest()


@pytest.fixture(scope="module")
def topology():
    return random_site(n_pages=80, avg_out_degree=5.0, seed=23)


@pytest.fixture(scope="module")
def uniform_stream(topology):
    requests = []
    clock = 0.0
    for i in range(900):
        clock += 3.0
        requests.append(Request(clock, f"user{i % 31}", f"P{i % 13}"))
    return tuple(requests)


@pytest.fixture(scope="module")
def adversarial_stream(topology):
    return adversarial_workload(topology, crawlers=2, crawler_requests=250,
                                crawler_interval=5.0, nat_pools=2,
                                humans_per_pool=6, normal_agents=5, seed=23)


def run_sharded(topology, requests, *faults, shards=2, lease=30.0,
                replay_dir=None, policy="failover"):
    runtime = ShardedStreamingRuntime(
        topology,
        sharded=ShardedConfig(shards=shards, ack_interval=24, lease=lease,
                              on_shard_failure=policy, retry=RETRY,
                              replay_dir=replay_dir),
        governor=GOVERNOR, registry=Registry())
    if faults:
        with use_execution_faults(*faults):
            return runtime.run(requests, flush_interval=120.0)
    return runtime.run(requests, flush_interval=120.0)


def test_two_kills_leave_uniform_output_byte_identical(topology,
                                                       uniform_stream):
    result = run_sharded(topology, uniform_stream,
                         "kill-worker:0:100", "kill-worker:1:200")
    stats = result.stats
    assert stats.failovers == 2
    assert stats.worker_deaths == 2
    assert stats.replayed > 0
    assert stats.reconciles(), stats
    assert (result.sessions.canonical_digest()
            == serial_digest(topology, uniform_stream))
    # every recovery is timed, failover-to-first-ACK.
    assert len(result.recovery_seconds) == 2
    assert all(seconds >= 0.0 for seconds in result.recovery_seconds)


def test_repeated_kills_of_one_shard_still_converge(topology,
                                                    uniform_stream):
    # the same shard dies on incarnations 0 and 1 (attempts=2): failover
    # must survive a crash *of the respawned worker* too.
    result = run_sharded(topology, uniform_stream, "kill-worker:0:80:2")
    assert result.stats.failovers == 2
    assert result.stats.reconciles()
    assert (result.sessions.canonical_digest()
            == serial_digest(topology, uniform_stream))


def test_two_kills_leave_adversarial_output_byte_identical(
        topology, adversarial_stream):
    # crawler + NAT skew concentrates traffic on few user ids, so one
    # shard carries most of the stream — the worst case for replay.
    result = run_sharded(topology, adversarial_stream,
                         "kill-worker:0:150", "kill-worker:1:120")
    stats = result.stats
    assert stats.failovers >= 2
    assert stats.reconciles(), stats
    assert (result.sessions.canonical_digest()
            == serial_digest(topology, adversarial_stream))


def test_kills_with_persisted_replay_logs(topology, uniform_stream,
                                          tmp_path):
    result = run_sharded(topology, uniform_stream,
                         "kill-worker:0:100", "kill-worker:1:200",
                         replay_dir=str(tmp_path))
    assert result.stats.replay_integrity_failures == 0
    assert result.stats.reconciles()
    assert (result.sessions.canonical_digest()
            == serial_digest(topology, uniform_stream))
    # the digest-sealed per-shard logs were actually written.
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "shard-000.replay.json", "shard-001.replay.json"]


def test_wedged_worker_is_leased_out_and_failed_over(topology,
                                                     uniform_stream):
    result = run_sharded(topology, uniform_stream, "wedge-worker:0:60:1",
                         lease=1.0)
    stats = result.stats
    assert stats.wedged == 1
    assert stats.failovers == 1
    assert stats.reconciles()
    assert (result.sessions.canonical_digest()
            == serial_digest(topology, uniform_stream))


def test_shed_shard_policy_abandons_visibly(topology, uniform_stream):
    result = run_sharded(topology, uniform_stream, "kill-worker:1:50",
                         policy="shed-shard")
    stats = result.stats
    assert stats.shed_shards == 1
    assert stats.shed > 0
    assert stats.failovers == 0
    assert stats.reconciles()
    # the surviving shard's output is intact: sealed sessions are a
    # subset of the serial run restricted to surviving users.
    assert 0 < stats.sealed_sessions


def test_raise_policy_propagates_the_death(topology, uniform_stream):
    from repro.exceptions import ExecutionError
    with pytest.raises(ExecutionError):
        run_sharded(topology, uniform_stream, "kill-worker:0:50",
                    policy="raise")
