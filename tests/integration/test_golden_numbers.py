"""Golden-number regression: pinned results on the frozen small dataset.

The ``small`` dataset tier (see :mod:`repro.datasets`) is fully seeded, so
every quantity below is deterministic.  These exact pins protect the
reproduction against silent algorithmic drift: any change to the
simulator's behavior model, a heuristic's rules, or the metric will move
one of these numbers and fail loudly here — at which point either the
change was a bug, or it is intentional and the pins (and EXPERIMENTS.md)
must be re-derived together.

The pins were computed at repository version 1.0.0.
"""

from __future__ import annotations

import pytest

from repro.datasets import build_dataset
from repro.evaluation.harness import standard_heuristics
from repro.evaluation.metrics import evaluate_reconstruction

# exact pinned values for the frozen `small` tier (seeded end to end).
GOLDEN = {
    "real_sessions": 1350,
    "log_records": 2283,
    "matched_accuracy": {
        "heur1": 0.1696,
        "heur2": 0.1481,
        "heur3": 0.3348,
        "heur4": 0.4652,
    },
    "any_capture_accuracy": {
        "heur1": 0.5296,
        "heur2": 0.5356,
        "heur3": 0.7593,
        "heur4": 0.6585,
    },
    "reconstructed_counts": {
        "heur1": 311,
        "heur2": 205,
        "heur3": 595,
        "heur4": 1020,
    },
}


@pytest.fixture(scope="module")
def small_tier():
    spec, topology, simulation = build_dataset("small")
    reports = {}
    for name, heuristic in standard_heuristics(topology).items():
        sessions = heuristic.reconstruct(simulation.log_requests)
        reports[name] = evaluate_reconstruction(
            name, simulation.ground_truth, sessions)
    return simulation, reports


def test_dataset_shape_is_pinned(small_tier):
    simulation, __ = small_tier
    assert len(simulation.ground_truth) == GOLDEN["real_sessions"]
    assert len(simulation.log_requests) == GOLDEN["log_records"]


@pytest.mark.parametrize("name", ["heur1", "heur2", "heur3", "heur4"])
def test_matched_accuracy_is_pinned(small_tier, name):
    __, reports = small_tier
    assert reports[name].matched_accuracy == pytest.approx(
        GOLDEN["matched_accuracy"][name], abs=5e-5)


@pytest.mark.parametrize("name", ["heur1", "heur2", "heur3", "heur4"])
def test_any_capture_accuracy_is_pinned(small_tier, name):
    __, reports = small_tier
    assert reports[name].accuracy == pytest.approx(
        GOLDEN["any_capture_accuracy"][name], abs=5e-5)


@pytest.mark.parametrize("name", ["heur1", "heur2", "heur3", "heur4"])
def test_session_counts_are_pinned(small_tier, name):
    __, reports = small_tier
    assert (reports[name].reconstructed_count
            == GOLDEN["reconstructed_counts"][name])


def test_golden_ordering_matches_the_paper(small_tier):
    __, reports = small_tier
    matched = {name: report.matched_accuracy
               for name, report in reports.items()}
    assert (matched["heur4"] > matched["heur3"]
            > matched["heur1"] > matched["heur2"])
