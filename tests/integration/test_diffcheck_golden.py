"""Full differential oracle over the committed golden corpus.

Runs every registered engine across the pinned corpus under
``tests/data/diffcheck`` and requires byte-level canonical agreement —
with each other *and* with the golden digests committed alongside the
cases.  A failure here means an engine's output changed: either a real
equivalence bug or an intentional semantic change that must be
re-pinned with ``repro diffcheck --write-golden``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.diffcheck import (
    available_engines,
    generate_corpus,
    load_corpus,
    run_diffcheck,
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "data" / "diffcheck"


@pytest.fixture(scope="module")
def golden_cases():
    return load_corpus(GOLDEN_DIR)


def test_all_engines_agree_on_golden_corpus(golden_cases):
    report = run_diffcheck(golden_cases, engines="all")
    assert report.engines == available_engines()
    assert report.ok, report.render()
    assert report.total_divergences == 0
    assert report.total_violations == 0


def test_corpus_covers_columnar_edge_cases(golden_cases):
    """The cases the columnar plane is most likely to get wrong — equal
    timestamps (reversed extension edges), exact δ/ρ boundaries (the
    slack-widened window must not change splits) and chunk-spanning
    users — are all pinned in the corpus the engines must match."""
    names = {case.name for case in golden_cases}
    assert {"equal-timestamps", "boundary-rho-delta",
            "chunk-spanning-users"} <= names


def test_columnar_engines_agree_in_fallback_mode(golden_cases, monkeypatch):
    """The stdlib fallback leg: with numpy vetoed, both columnar engines
    must still match the serial baseline and the pinned golden digests
    byte for byte."""
    from repro.core.columnar import COLUMNAR_FALLBACK_ENV, active_backend

    monkeypatch.setenv(COLUMNAR_FALLBACK_ENV, "1")
    assert active_backend() == "fallback"
    report = run_diffcheck(golden_cases,
                           engines="serial,columnar,columnar-parallel")
    assert set(report.engines) == {"serial", "columnar",
                                   "columnar-parallel"}
    assert report.ok, report.render()
    assert report.total_divergences == 0
    assert report.total_violations == 0


def test_golden_digests_still_pinned(golden_cases):
    # every committed case carries its expected canonical output, and the
    # harness checks engines against it (baseline "golden" in a report).
    for case in golden_cases:
        assert case.expected_digest, case.name
        assert case.expected_form is not None, case.name


def test_committed_corpus_matches_generator(golden_cases):
    """The committed corpus is exactly ``generate_corpus(seed=0)``.

    Guards against hand-edits to the JSON drifting away from what
    ``--write-golden`` would regenerate.
    """
    generated = {case.name: case for case in generate_corpus(seed=0)}
    assert sorted(generated) == [case.name for case in golden_cases]
    for case in golden_cases:
        twin = generated[case.name]
        assert case.requests == twin.requests, case.name
        assert case.config == twin.config, case.name
        assert (case.topology.fingerprint()
                == twin.topology.fingerprint()), case.name
