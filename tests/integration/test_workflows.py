"""Integration: multi-module workflows a real user would run."""

from __future__ import annotations

import pytest

from repro.core.smart_sra import SmartSRA
from repro.datasets import write_dataset
from repro.evaluation.comparison import compare_heuristics
from repro.evaluation.metrics import evaluate_reconstruction
from repro.evaluation.similarity import similarity_report
from repro.evaluation.spec import run_spec
from repro.evaluation.taxonomy import ErrorCategory, error_breakdown
from repro.logs.reader import read_clf_file, records_to_requests
from repro.sessions.model import SessionSet
from repro.sessions.referrer import ReferrerHeuristic
from repro.topology.io import load_graph


class TestDatasetWorkflow:
    """A consumer works from a frozen dataset bundle alone."""

    @pytest.fixture(scope="class")
    def bundle(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("bundle")
        write_dataset("small", str(directory))
        topology = load_graph(str(directory / "topology.json"))
        truth = SessionSet.load(str(directory / "ground_truth.json"))
        clf_requests = records_to_requests(
            read_clf_file(str(directory / "access.log")))
        combined_requests = records_to_requests(
            read_clf_file(str(directory / "access_combined.log")))
        return topology, truth, clf_requests, combined_requests

    def test_referrer_beats_smart_sra_significantly(self, bundle):
        topology, truth, clf_requests, combined_requests = bundle
        smart = SmartSRA(topology).reconstruct(clf_requests)
        referrer = ReferrerHeuristic().reconstruct(combined_requests)
        result = compare_heuristics(truth, referrer, smart,
                                    "referrer", "heur4")
        assert result.winner == "referrer"
        assert result.significant(0.01)

    def test_plain_and_combined_logs_agree_on_timing(self, bundle):
        __, __, clf_requests, combined_requests = bundle
        assert [(r.user_id, r.page, r.timestamp)
                for r in clf_requests] == [
            (r.user_id, r.page, r.timestamp) for r in combined_requests]
        # ... but only the combined log carries referrers.
        assert all(r.referrer is None for r in clf_requests)
        assert any(r.referrer is not None for r in combined_requests)

    def test_metrics_are_mutually_consistent(self, bundle):
        topology, truth, clf_requests, __ = bundle
        sessions = SmartSRA(topology).reconstruct(clf_requests)
        binary = evaluate_reconstruction("heur4", truth, sessions)
        graded = similarity_report("heur4", truth, sessions)
        breakdown = error_breakdown(truth, sessions)
        # graded recall upper-bounds binary any-capture:
        assert graded.graded_recall >= binary.accuracy - 1e-12
        # taxonomy EXACT+MERGED must equal the binary captured count:
        captured_by_taxonomy = (breakdown[ErrorCategory.EXACT]
                                + breakdown[ErrorCategory.MERGED])
        assert captured_by_taxonomy == binary.captured
        # exact counts agree between the report and the taxonomy:
        assert breakdown[ErrorCategory.EXACT] == binary.exact


class TestSpecDrivenFigure:
    def test_shipped_spec_reproduces_ordering(self):
        """A scaled-down copy of specs/fig9_lpp.json must show heur4 >
        heur3 at both sweep ends."""
        spec = {
            "topology": {"family": "random", "pages": 120,
                         "out_degree": 8, "seed": 0},
            "simulation": {"n_agents": 150, "seed": 0},
            "heuristics": ["heur3", "heur4"],
            "sweep": {"parameter": "lpp", "values": [0.0, 0.8]},
        }
        result = run_spec(spec)
        series = result.series()
        assert series["heur4"][0] >= series["heur3"][0] - 0.02
        assert series["heur4"][1] > series["heur3"][1]

    def test_shipped_spec_files_parse_and_validate(self):
        import json
        import pathlib
        spec_dir = pathlib.Path(__file__).parent.parent.parent / "specs"
        from repro.evaluation.spec import (
            _SIMULATION_FIELDS,
            _SPEC_KEYS,
            build_topology,
        )
        specs = sorted(spec_dir.glob("*.json"))
        assert len(specs) >= 4
        for path in specs:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
            assert set(document) <= _SPEC_KEYS
            assert set(document.get("simulation", {})) <= _SIMULATION_FIELDS
            build_topology(document.get("topology", {}))
