"""The paper's prose claims, asserted as executable checks.

Each test quotes a claim from the paper and verifies it holds on a
simulated workload — the checklist a reviewer would walk through.
"""

from __future__ import annotations

import pytest

from repro.core.smart_sra import SmartSRA
from repro.sessions.navigation_oriented import NavigationHeuristic


@pytest.fixture(scope="module")
def reconstructions(small_site, small_simulation):
    smart = SmartSRA(small_site).reconstruct(small_simulation.log_requests)
    nav = NavigationHeuristic(small_site).reconstruct(
        small_simulation.log_requests)
    return smart, nav


class TestSection3Claims:
    def test_no_artificial_page_requests(self, reconstructions):
        """'Since we don't insert such artificial page requests...' —
        every request in Smart-SRA output is a genuine log request."""
        smart, __ = reconstructions
        assert all(not request.synthetic
                   for session in smart for request in session)

    def test_heur3_does_insert(self, reconstructions):
        """...whereas the navigation-oriented heuristic does insert."""
        __, nav = reconstructions
        assert any(request.synthetic
                   for session in nav for request in session)

    def test_sessions_much_shorter(self, reconstructions):
        """'our session sequences are much shorter' than heur3's."""
        smart, nav = reconstructions
        assert smart.mean_length() < nav.mean_length()

    def test_connectivity_of_consecutive_requests(self, small_site,
                                                  reconstructions):
        """'we do not allow page sequences with any unrelated ...
        consecutive requests to be in the same session.'"""
        smart, __ = reconstructions
        for session in smart:
            for left, right in zip(session.pages, session.pages[1:]):
                assert small_site.has_link(left, right)

    def test_no_session_subsumes_another(self, small_simulation,
                                         small_site):
        """'all sessions generated will be maximal sequences and do not
        subsume any other session' — checked per candidate (branches from
        the same candidate never contain one another as prefixes)."""
        from repro.core.phase1 import split_candidates
        from repro.core.phase2 import maximal_sessions_fast
        per_user: dict[str, list] = {}
        for request in small_simulation.log_requests:
            per_user.setdefault(request.user_id, []).append(request)
        checked = 0
        for requests in list(per_user.values())[:50]:
            requests.sort(key=lambda r: r.timestamp)
            for candidate in split_candidates(requests):
                sessions = [
                    tuple((r.page, r.timestamp) for r in s)
                    for s in maximal_sessions_fast(candidate, small_site)]
                for a in sessions:
                    for b in sessions:
                        if a is not b:
                            assert not (len(a) < len(b)
                                        and b[:len(a)] == a)
                checked += 1
        assert checked > 10


class TestSection4Claims:
    def test_simulator_sessions_satisfy_both_rules(self, small_site,
                                                   small_simulation):
        """'Our agent simulator generates complete sessions satisfying
        both connectivity and timestamp rules.'"""
        for session in small_simulation.ground_truth:
            times = [request.timestamp for request in session]
            assert times == sorted(times)
            for left, right in zip(session.pages, session.pages[1:]):
                assert small_site.has_link(left, right)

    def test_log_misses_cache_served_requests(self, small_simulation):
        """'sessions containing access requests served from a client's
        local cache cannot be accurately determined' — the log must be a
        strict subset of the navigation whenever any cache hit occurred."""
        landings = sum(len(session)
                       for session in small_simulation.ground_truth)
        assert len(small_simulation.log_requests) < landings

    def test_statistical_validation_passes(self, small_simulation):
        """The simulator matches its own configured distributions."""
        from repro.simulator.validation import validate_simulation
        report = validate_simulation(small_simulation)
        assert report.passed, str(report)
