"""Integration: the complete pipeline, in memory and through CLF files.

simulate → (noise →) CLF log → clean → partition → reconstruct → evaluate.
"""

from __future__ import annotations

import pytest

from repro.core.smart_sra import SmartSRA
from repro.evaluation.metrics import evaluate_reconstruction
from repro.logs.cleaning import LogCleaner, NoiseInjector
from repro.logs.reader import read_clf_file, records_to_requests
from repro.logs.users import IdentityAddressMap
from repro.logs.writer import requests_to_records, write_clf_file
from repro.sessions.time_oriented import PageStayHeuristic


class TestInMemoryPipeline:
    def test_smart_sra_reconstruction_quality(self, small_simulation,
                                              small_site):
        sessions = SmartSRA(small_site).reconstruct(
            small_simulation.log_requests)
        report = evaluate_reconstruction(
            "heur4", small_simulation.ground_truth, sessions)
        # Not a tuned threshold: Smart-SRA should recover a solid majority
        # of sessions at the paper's default difficulty.
        assert report.matched_accuracy > 0.45
        assert report.accuracy >= report.matched_accuracy

    def test_reconstruction_only_uses_log_pages(self, small_simulation,
                                                small_site):
        logged = {request.page for request in small_simulation.log_requests}
        sessions = SmartSRA(small_site).reconstruct(
            small_simulation.log_requests)
        assert sessions.page_vocabulary() <= logged


class TestFilePipeline:
    @pytest.fixture()
    def log_path(self, small_simulation, tmp_path):
        records = requests_to_records(small_simulation.log_requests,
                                      IdentityAddressMap())
        path = str(tmp_path / "access.log")
        write_clf_file(path, records)
        return path

    def test_clf_roundtrip_preserves_reconstruction_input(
            self, small_simulation, log_path):
        back = records_to_requests(read_clf_file(log_path))
        original = [(r.user_id, r.page) for r
                    in small_simulation.log_requests]
        assert [(r.user_id, r.page) for r in back] == original

    def test_accuracy_survives_the_file_roundtrip(self, small_simulation,
                                                  small_site, log_path):
        requests = records_to_requests(read_clf_file(log_path))
        sessions = SmartSRA(small_site).reconstruct(requests)
        report = evaluate_reconstruction(
            "heur4", small_simulation.ground_truth, sessions)
        direct = SmartSRA(small_site).reconstruct(
            small_simulation.log_requests)
        direct_report = evaluate_reconstruction(
            "heur4", small_simulation.ground_truth, direct)
        # second-granular timestamps may flip a rare threshold comparison;
        # the two accuracies must agree within a percent.
        assert abs(report.matched_accuracy
                   - direct_report.matched_accuracy) < 0.01

    def test_noisy_log_cleans_back_to_page_views(self, small_simulation,
                                                 tmp_path):
        records = requests_to_records(small_simulation.log_requests,
                                      IdentityAddressMap())
        noisy = NoiseInjector(seed=3).inject(records)
        noisy_path = str(tmp_path / "noisy.log")
        write_clf_file(noisy_path, noisy)
        recovered, stats = LogCleaner().clean(read_clf_file(noisy_path))
        assert len(recovered) == len(records)
        assert stats.dropped_total == len(noisy) - len(records)
        back = records_to_requests(recovered)
        assert [(r.user_id, r.page) for r in back] == [
            (r.user_id, r.page) for r in small_simulation.log_requests]


class TestProxySharing:
    def test_proxy_ips_degrade_time_heuristics(self, small_simulation):
        """Funneling many users through one IP (the paper's proxy problem)
        must hurt reconstruction: sessions of different users interleave."""
        from repro.logs.users import UserAddressMap
        shared = requests_to_records(small_simulation.log_requests,
                                     UserAddressMap(proxy_group_size=25))
        requests = records_to_requests(shared)
        sessions = PageStayHeuristic().reconstruct(requests)
        report = evaluate_reconstruction(
            "heur2-proxy", small_simulation.ground_truth, sessions,
            match_within_user=False)
        distinct = requests_to_records(small_simulation.log_requests,
                                       UserAddressMap())
        direct = PageStayHeuristic().reconstruct(
            records_to_requests(distinct))
        direct_report = evaluate_reconstruction(
            "heur2", small_simulation.ground_truth, direct,
            match_within_user=False)
        assert report.matched_accuracy < direct_report.matched_accuracy
