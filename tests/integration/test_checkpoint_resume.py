"""Resumed runs must be indistinguishable from uninterrupted ones.

The contract under test: a sweep or population simulation that is killed
mid-run and resumed from its checkpoint directory produces the *same
numbers* — accuracy tables, traces, log records — and the *same metrics
snapshot* (counters and gauges exactly; histograms by observation count,
since timer sums measure wall-clock, not work) as a run that never died.
"""

from __future__ import annotations

import pytest

from repro.evaluation import harness
from repro.obs import Registry, use_registry
from repro.parallel import CheckpointStore
from repro.simulator.population import SimulationConfig, simulate_population
from repro.topology.generators import random_site

VALUES = [0.3, 0.5, 0.7]


@pytest.fixture(scope="module")
def graph():
    return random_site(60, 8.0, seed=11)


def normalized(snapshot):
    """Counters/gauges verbatim; histograms reduced to observation counts."""
    return {
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": {name: series["count"]
                       for name, series in snapshot["histograms"].items()},
    }


def run_sweep(graph, **kwargs):
    registry = Registry()
    with use_registry(registry):
        result = harness.sweep(graph, SimulationConfig(n_agents=15, seed=4),
                               "stp", VALUES, **kwargs)
    return result, normalized(registry.snapshot())


def rows(result):
    return [(value, {name: (report.accuracy, report.precision,
                            report.captured, report.total_real)
                     for name, report in trial.reports.items()})
            for value, trial in zip(result.values, result.trials)]


class TestSweepResume:
    def test_interrupted_sweep_resumes_to_identical_numbers(self, tmp_path,
                                                            graph):
        baseline, base_obs = run_sweep(graph)

        ckpt = str(tmp_path / "ckpt")
        calls = {"n": 0}
        real = harness._run_sweep_point_captured

        def die_after_two(*args, **kwargs):
            if calls["n"] >= 2:
                raise KeyboardInterrupt
            calls["n"] += 1
            return real(*args, **kwargs)

        harness._run_sweep_point_captured = die_after_two
        try:
            with pytest.raises(KeyboardInterrupt):
                run_sweep(graph, checkpoint=ckpt)
        finally:
            harness._run_sweep_point_captured = real

        store = CheckpointStore(ckpt)
        assert store.read_manifest()["status"] == "interrupted"
        done = len(store.completed_units("sweep-point"))
        assert 0 < done < len(VALUES)

        resumed, resumed_obs = run_sweep(graph, checkpoint=ckpt, resume=True)
        assert store.read_manifest()["status"] == "complete"
        assert rows(resumed) == rows(baseline)
        assert resumed_obs == base_obs

    def test_fully_restored_sweep_matches_too(self, tmp_path, graph):
        baseline, base_obs = run_sweep(graph)
        ckpt = str(tmp_path / "ckpt")
        run_sweep(graph, checkpoint=ckpt)
        restored, restored_obs = run_sweep(graph, checkpoint=ckpt,
                                           resume=True)
        assert rows(restored) == rows(baseline)
        assert restored_obs == base_obs
        # restored trials carry no simulation object (it was not re-run)
        assert all(trial.simulation is None for trial in restored.trials)


class TestSimulateResume:
    def test_interrupted_simulation_resumes_to_identical_traces(
            self, tmp_path, graph):
        config = SimulationConfig(n_agents=40, seed=9)
        baseline = simulate_population(graph, config)

        ckpt = str(tmp_path / "ckpt")
        simulate_population(graph, config, checkpoint=ckpt,
                            checkpoint_block=16)
        store = CheckpointStore(ckpt)
        units = store.completed_units("agent-block")
        assert len(units) == 3  # 40 agents in blocks of 16
        # lose one block: the resume must recompute exactly that block
        import os
        victim = sorted(
            name for name in os.listdir(ckpt)
            if name.startswith("agent-block") and name.endswith(".json"))[1]
        os.unlink(os.path.join(ckpt, victim))

        resumed = simulate_population(graph, config, checkpoint=ckpt,
                                      checkpoint_block=16, resume=True)
        assert resumed.traces == baseline.traces
        assert resumed.log_requests == baseline.log_requests
        assert ([list(s) for s in resumed.ground_truth.sessions]
                == [list(s) for s in baseline.ground_truth.sessions])

    def test_checkpointed_metrics_match_plain_run(self, tmp_path, graph):
        config = SimulationConfig(n_agents=30, seed=2)
        plain = Registry()
        with use_registry(plain):
            simulate_population(graph, config)
        checkpointed = Registry()
        with use_registry(checkpointed):
            simulate_population(graph, config,
                                checkpoint=str(tmp_path / "ckpt"),
                                checkpoint_block=8)
        assert (normalized(checkpointed.snapshot())
                == normalized(plain.snapshot()))
