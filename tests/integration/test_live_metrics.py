"""Live telemetry, end to end: ``repro stream --serve-metrics``.

The acceptance scenario for the exporter: a governed streaming run fed
through a FIFO (so the run stays alive for as long as the test wants),
scraped over HTTP *mid-run*, then interrupted with SIGINT — which must
tear the server down and exit 130 with a one-line message, exactly like
an operator's Ctrl-C.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main

ROOT = pathlib.Path(__file__).parent.parent.parent

pytestmark = pytest.mark.skipif(
    not hasattr(os, "mkfifo"), reason="live test needs POSIX FIFOs")


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A small simulated site + CLF log to feed through the FIFO."""
    tmp = tmp_path_factory.mktemp("live-metrics")
    site = tmp / "site.json"
    log = tmp / "access.log"
    assert main(["topology", "--pages", "40", "--out-degree", "4",
                 "--seed", "3", "--output", str(site)]) == 0
    assert main(["simulate", "--topology", str(site), "--agents", "60",
                 "--seed", "1", "--log", str(log),
                 "--sessions", str(tmp / "truth.json")]) == 0
    lines = log.read_text(encoding="utf-8").splitlines(keepends=True)
    assert len(lines) > 100
    return {"site": site, "lines": lines, "dir": tmp}


def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def _poll(predicate, timeout=20.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out after {timeout}s waiting for "
                         f"{predicate.__name__}")


def test_stream_serves_metrics_mid_run_and_exits_130_on_sigint(
        corpus, tmp_path):
    import signal

    fifo = tmp_path / "stream.fifo"
    os.mkfifo(fifo)
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"),
               PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "stream",
         "--log", str(fifo), "--topology", str(corpus["site"]),
         "--output", str(tmp_path / "sessions.json"),
         "--memory-budget", "256k",
         "--serve-metrics", "0", "--timeline-interval", "0.05"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=str(ROOT))
    writer = None
    try:
        # the server starts (and announces itself) before the log is
        # even opened, so the URL line arrives while the FIFO still has
        # no writer.
        header = proc.stderr.readline()
        assert "serving metrics on" in header, (header,
                                                proc.stderr.read())
        url = header.split()[3]
        assert url.startswith("http://127.0.0.1:")

        # attaching the writer unblocks the child's open(); feed half
        # the log and leave the FIFO open so the run is genuinely
        # mid-stream while we scrape.
        writer = open(fifo, "w", encoding="utf-8")
        half = corpus["lines"][:len(corpus["lines"]) // 2]
        writer.writelines(half)
        writer.flush()

        def fed_requests():
            __, body = _get(url + "/snapshot")
            return json.loads(body)["counters"].get(
                "stream.requests.fed", 0)
        assert _poll(fed_requests) > 0

        status, metrics = _get(url + "/metrics")
        assert status == 200
        assert "repro_stream_requests_fed" in metrics
        # the governor is live under --memory-budget.
        assert "repro_governor_budget_bytes" in metrics

        status, health = _get(url + "/health")
        assert status == 200
        document = json.loads(health)
        assert document["status"] == "ok"
        assert document["governor"]["budget_bytes"] > 0

        def timeline_points():
            __, body = _get(url + "/timeline")
            return len(json.loads(body)["timestamps"])
        assert _poll(timeline_points) > 0

        # more traffic is visible on the next scrape: the export is
        # live, not a snapshot from startup.
        before = fed_requests()
        writer.writelines(corpus["lines"][len(corpus["lines"]) // 2:])
        writer.flush()
        _poll(lambda: fed_requests() > before)

        # Ctrl-C: teardown must be clean — exit 130, one-line message.
        proc.send_signal(signal.SIGINT)
        writer.close()
        writer = None
        __, err = proc.communicate(timeout=30)
        assert proc.returncode == 130, err
        interrupted = [line for line in err.splitlines()
                       if "interrupted" in line]
        assert len(interrupted) == 1
        assert interrupted[0].startswith("error: interrupted")
    finally:
        if writer is not None:
            writer.close()
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)


def test_stream_with_serve_metrics_completes_normally(corpus, tmp_path,
                                                      capsys):
    """A finite run with --serve-metrics exits 0 and releases the port
    (in-process: the same interpreter must be able to rebind)."""
    log = tmp_path / "access.log"
    log.write_text("".join(corpus["lines"][:200]), encoding="utf-8")
    out = tmp_path / "sessions.json"
    assert main(["stream", "--log", str(log),
                 "--topology", str(corpus["site"]),
                 "--output", str(out), "--serve-metrics", "0",
                 "--timeline-interval", "0.05"]) == 0
    err = capsys.readouterr().err
    assert "serving metrics on" in err
    assert out.exists()


def test_doctor_with_serve_flags_only_audits(capsys):
    """doctor shares the telemetry flag names but must never bind the
    port — it audits the configuration and exits by verdict."""
    assert main(["doctor", "--serve-metrics", "80",
                 "--timeline-interval", "0.001"]) == 0
    printed = capsys.readouterr().out
    assert "telemetry configuration:" in printed
    assert "privileged" in printed
    assert "serving metrics on" not in printed
