"""Smoke tests: the fast example scripts must run end to end.

Only the quick, deterministic examples run here (the sweep-heavy ones are
covered by the benchmark suite); each is executed in a subprocess exactly
as a user would run it.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent.parent / "examples"

FAST_EXAMPLES = {
    "worked_examples.py": "P1 P20 *P1 P13 P49 *P13 P34 P23",
    "quickstart.py": "Smart-SRA (heur4) recovers the most sessions",
    "streaming_tail.py": "identical: True",
}


@pytest.mark.parametrize("script", sorted(FAST_EXAMPLES))
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=240, check=False)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert FAST_EXAMPLES[script] in completed.stdout


def test_every_example_has_a_module_docstring_and_main():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 10
    for script in scripts:
        text = script.read_text(encoding="utf-8")
        assert text.startswith('"""'), f"{script.name} lacks a docstring"
        assert 'if __name__ == "__main__":' in text, (
            f"{script.name} is not runnable")
        assert "Run:" in text, f"{script.name} lacks a Run: line"
