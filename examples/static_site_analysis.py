"""Analyze a *real* static site: HTML on disk, rotated logs, robots.

Everything in the other examples runs on generated topologies.  This one
exercises the adoption path for an actual static web site:

1. write a small documentation-style site (HTML files with real ``<a
   href>`` links) to a temp directory,
2. extract its :class:`WebGraph` straight from the HTML,
3. simulate traffic and a *crawler*, writing a gzip-rotated log set,
4. stitch the rotation back together, detect and drop the crawler
   behaviorally, clean, reconstruct with Smart-SRA,
5. print the site's navigation tree with real conversion rates.

Run:  python examples/static_site_analysis.py
"""

from __future__ import annotations

import gzip
import tempfile
from pathlib import Path

from repro import SimulationConfig, SmartSRA, simulate_population
from repro.logs.clf import CLFRecord, format_clf_line
from repro.logs.reader import records_to_requests
from repro.logs.robots import RobotDetector
from repro.logs.rotation import read_rotated_logs
from repro.logs.users import IdentityAddressMap
from repro.logs.writer import requests_to_records
from repro.mining.navigation_tree import NavigationTree
from repro.topology.html import graph_from_html_dir

SITE = {
    "index.html": ["guide.html", "api.html", "faq.html"],
    "guide.html": ["index.html", "guide-install.html", "guide-config.html"],
    "guide-install.html": ["guide.html", "guide-config.html"],
    "guide-config.html": ["guide.html", "api.html"],
    "api.html": ["index.html", "api-core.html", "api-logs.html"],
    "api-core.html": ["api.html", "api-logs.html"],
    "api-logs.html": ["api.html"],
    "faq.html": ["index.html", "guide.html"],
}


def write_site(root: Path) -> None:
    for name, links in SITE.items():
        anchors = "".join(f'<a href="{href}">{href}</a>' for href in links)
        root.joinpath(name).write_text(
            f"<html><body><h1>{name}</h1>{anchors}</body></html>",
            encoding="utf-8")


def crawler_records(graph, start_time: float) -> list[CLFRecord]:
    """A polite crawler: robots.txt first, then the whole site, fast."""
    records = [CLFRecord("spider.example", start_time, "GET", "/robots.txt",
                         "HTTP/1.1", 200, 64)]
    for index, page in enumerate(sorted(graph.pages)):
        records.append(CLFRecord(
            "spider.example", start_time + 1 + index * 0.8, "GET",
            f"/{page}.html", "HTTP/1.1", 200, 2048))
    return records


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_static_site_"))
    site_dir = workdir / "site"
    site_dir.mkdir()
    write_site(site_dir)

    graph = graph_from_html_dir(str(site_dir))
    print(f"extracted topology from HTML: {graph}")
    print(f"start pages: {sorted(graph.start_pages)}")

    simulation = simulate_population(
        graph, SimulationConfig(n_agents=250, seed=4, nip=0.1, lpp=0.25))
    human = requests_to_records(simulation.log_requests,
                                IdentityAddressMap())
    robot = crawler_records(graph, start_time=500.0)
    everything = sorted(human + robot, key=lambda record: record.timestamp)

    # rotate: older half gzipped, newer half plain.
    half = len(everything) // 2
    old_path = workdir / "access.log.1.gz"
    new_path = workdir / "access.log"
    with gzip.open(old_path, "wt", encoding="utf-8") as handle:
        for record in everything[:half]:
            handle.write(format_clf_line(record) + "\n")
    with open(new_path, "w", encoding="utf-8") as handle:
        for record in everything[half:]:
            handle.write(format_clf_line(record) + "\n")
    print(f"\nwrote rotated logs: {old_path.name} (gzip) + {new_path.name} "
          f"({len(everything)} records incl. crawler)")

    records = read_rotated_logs([str(new_path), str(old_path)])
    kept, robots = RobotDetector().filter(records)
    print(f"robot detection flagged: {sorted(robots)} "
          f"({len(records) - len(kept)} records dropped)")

    sessions = SmartSRA(graph).reconstruct(records_to_requests(kept))
    print(f"Smart-SRA: {len(sessions)} sessions\n")

    tree = NavigationTree(sessions)
    print("navigation tree (top levels):")
    print(tree.render(min_support=5, max_depth=3))
    guide_rate = tree.conversion_rate(["index"], "guide")
    api_rate = tree.conversion_rate(["index"], "api")
    print(f"from the home page, {guide_rate:.0%} continue to the guide "
          f"and {api_rate:.0%} to the API reference")


if __name__ == "__main__":
    main()
