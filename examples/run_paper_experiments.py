"""Reproduce the paper's three figures from the shipped spec files.

Experiments in this repository are declarative artifacts: the ``specs/``
directory holds one JSON document per figure (plus the reactive-gap
extension).  This script executes them via the spec runner and renders the
tables and ASCII charts — the same path as
``repro run-spec specs/fig9_lpp.json``, minus the shell.

Note: the full three-figure run simulates 40 populations of 800 agents;
expect a minute or two.  Pass a spec filename argument to run just one.

Run:  python examples/run_paper_experiments.py [specs/fig9_lpp.json]
"""

from __future__ import annotations

import pathlib
import sys

from repro.evaluation.ascii_chart import render_chart
from repro.evaluation.harness import SweepResult
from repro.evaluation.report import render_sweep_table
from repro.evaluation.spec import load_spec, run_spec

SPEC_DIR = pathlib.Path(__file__).parent.parent / "specs"
FIGURES = ["fig8_stp.json", "fig9_lpp.json", "fig10_nip.json"]


def run_one(path: pathlib.Path) -> None:
    print(f"=== {path.name}")
    result = run_spec(load_spec(str(path)))
    if isinstance(result, SweepResult):
        print(render_sweep_table(result))
        print(render_chart(result))
    else:
        for name, report in result.reports.items():
            print(f"  {name}: matched {report.matched_accuracy:.1%}  "
                  f"captured {report.accuracy:.1%}")
    print()


def main() -> None:
    if len(sys.argv) > 1:
        run_one(pathlib.Path(sys.argv[1]))
        return
    for name in FIGURES:
        run_one(SPEC_DIR / name)


if __name__ == "__main__":
    main()
