"""Web pre-fetching: does better session reconstruction help prediction?

The paper's first listed application is *web pre-fetching* — predict the
next page so the server (or browser) can fetch it early.  This example
trains a first-order Markov next-page predictor on each heuristic's
reconstructed sessions and evaluates all of them on the same held-out
ground truth (a second simulated population on the same site).

The punchline: the predictor trained on Smart-SRA sessions achieves the
best hit rate, because its training transitions are real hyperlink
traversals rather than artifacts of bad session splitting.

Run:  python examples/prefetch_recommender.py
"""

from __future__ import annotations

from repro import SimulationConfig, random_site, simulate_population, standard_heuristics
from repro.mining.prediction import MarkovPredictor


def main() -> None:
    site = random_site(n_pages=250, avg_out_degree=12, seed=21)
    train_sim = simulate_population(
        site, SimulationConfig(n_agents=500, seed=1))
    test_sim = simulate_population(
        site, SimulationConfig(n_agents=200, seed=99))
    print(f"site {site}\n"
          f"train log: {len(train_sim.log_requests)} records; "
          f"test ground truth: {len(test_sim.ground_truth)} sessions\n")

    oracle = MarkovPredictor().fit(train_sim.ground_truth)
    oracle_hit = oracle.hit_rate(test_sim.ground_truth, top=3)

    print(f"{'training sessions':<38}{'hit@3':>8}")
    print(f"{'ground truth (proactive oracle)':<38}{oracle_hit:>8.1%}")
    for name, heuristic in standard_heuristics(site).items():
        sessions = heuristic.reconstruct(train_sim.log_requests)
        predictor = MarkovPredictor().fit(sessions)
        hit = predictor.hit_rate(test_sim.ground_truth, top=3)
        print(f"{name + ' reconstruction':<38}{hit:>8.1%}")

    page = sorted(site.start_pages)[0]
    best = MarkovPredictor().fit(train_sim.ground_truth)
    print(f"\nexample: after {page}, prefetch "
          f"{', '.join(best.predict(page, top=3))}")


if __name__ == "__main__":
    main()
