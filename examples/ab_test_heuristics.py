"""Methodology: compare two heuristics the statistically honest way.

Point accuracies from one simulation can mislead — seed noise, metric
choice, and error *kind* all matter.  This example runs the full honest
comparison between Smart-SRA and the navigation-oriented baseline:

1. point estimates under both metric readings,
2. bootstrap confidence intervals (user-resampled),
3. McNemar's exact paired test on the capture outcomes,
4. the error-taxonomy breakdown showing *how* each one fails,
5. the graded LCS view (recall/precision/F1).

Run:  python examples/ab_test_heuristics.py
"""

from __future__ import annotations

from repro import (
    NavigationHeuristic,
    SimulationConfig,
    SmartSRA,
    evaluate_reconstruction,
    random_site,
    simulate_population,
)
from repro.evaluation.bootstrap import bootstrap_accuracy
from repro.evaluation.comparison import compare_heuristics
from repro.evaluation.similarity import similarity_report
from repro.evaluation.taxonomy import error_breakdown, render_breakdown


def main() -> None:
    site = random_site(n_pages=300, avg_out_degree=15, seed=2)
    simulation = simulate_population(
        site, SimulationConfig(n_agents=600, seed=17))
    truth = simulation.ground_truth
    print(f"{len(truth)} ground-truth sessions, "
          f"{len(simulation.log_requests)} log records\n")

    smart = SmartSRA(site).reconstruct(simulation.log_requests)
    nav = NavigationHeuristic(site).reconstruct(simulation.log_requests)

    print("1) point estimates")
    for name, sessions in (("heur4", smart), ("heur3", nav)):
        report = evaluate_reconstruction(name, truth, sessions)
        print(f"   {name}: matched {report.matched_accuracy:.1%}   "
              f"any-capture {report.accuracy:.1%}")

    print("\n2) bootstrap 95% confidence intervals (matched metric)")
    for name, sessions in (("heur4", smart), ("heur3", nav)):
        interval = bootstrap_accuracy(truth, sessions, replicates=300,
                                      seed=1)
        print(f"   {name}: {interval}")

    print("\n3) McNemar paired test (any-capture outcomes)")
    result = compare_heuristics(truth, smart, nav, "heur4", "heur3")
    print(f"   {result}")
    print(f"   significant at 1%: "
          f"{'yes' if result.significant(0.01) else 'no'}")

    print("\n4) error taxonomy")
    print(render_breakdown({
        "heur4": error_breakdown(truth, smart),
        "heur3": error_breakdown(truth, nav),
    }), end="")

    print("\n5) graded (LCS) similarity")
    for name, sessions in (("heur4", smart), ("heur3", nav)):
        graded = similarity_report(name, truth, sessions)
        print(f"   {name}: recall {graded.graded_recall:.1%}  "
              f"precision {graded.graded_precision:.1%}  "
              f"F1 {graded.f1:.1%}  "
              f"fragmentation {graded.fragmentation:.2f}")


if __name__ == "__main__":
    main()
