"""Web personalization: cluster reconstructed sessions into user groups.

The paper lists *web personalization* among the applications of web usage
mining.  This example runs the standard personalization front-end on
Smart-SRA output:

1. simulate a population whose agents enter through different start pages
   (so distinct interest groups actually exist),
2. reconstruct sessions with Smart-SRA,
3. profile the session set (lengths, durations, hot pages),
4. cluster sessions by page-set similarity and print each group's
   interest profile — what a personalization engine would key on.

Run:  python examples/personalization_clusters.py
"""

from __future__ import annotations

from repro import (
    SimulationConfig,
    SmartSRA,
    describe,
    power_law_site,
    render_statistics,
    simulate_population,
)
from repro.mining.clustering import cluster_sessions


def main() -> None:
    # a power-law site: a few hub entry pages, long tail of content pages.
    site = power_law_site(n_pages=200, links_per_page=6,
                          start_fraction=0.04, seed=13)
    print(f"site: {site} (entry hubs: {sorted(site.start_pages)})\n")

    simulation = simulate_population(
        site, SimulationConfig(n_agents=400, seed=5, nip=0.15))
    sessions = SmartSRA(site).reconstruct(simulation.log_requests)

    print("session profile:")
    print(render_statistics(describe(sessions)))

    clusters = cluster_sessions(sessions, similarity=0.35,
                                min_cluster_size=10)
    print(f"{len(clusters)} behavioral clusters "
          f"(>= 10 sessions each):")
    for cluster in clusters[:8]:
        profile = ", ".join(cluster.profile_pages[:6]) or "(no common core)"
        print(f"  cluster {cluster.label}: {len(cluster)} sessions — "
              f"profile: {profile}")

    if clusters:
        biggest = clusters[0]
        print(f"\npersonalization hint: users matching cluster 0 "
              f"({len(biggest)} sessions) should see quick links to "
              f"{', '.join(biggest.profile_pages[:3])}")


if __name__ == "__main__":
    main()
