"""Site reorganization study on a hierarchical shop-like site.

One of the application areas the paper lists for web usage mining is *site
reorganization*: find the navigation paths users actually walk and compare
them against the site's link structure.  This example:

1. builds a hierarchical site (a catalog tree with cross links) — the shape
   of a typical shop,
2. simulates a population and reconstructs sessions with Smart-SRA,
3. mines frequent navigation paths and association rules from the
   reconstructed sessions,
4. flags "shortcut candidates": frequent 3-step paths whose endpoints are
   not directly linked — pages the site should probably connect.

Run:  python examples/ecommerce_funnel.py
"""

from __future__ import annotations

from repro import SimulationConfig, SmartSRA, hierarchical_site, simulate_population
from repro.mining.apriori import apriori
from repro.mining.rules import association_rules
from repro.mining.sequential import frequent_sequences


def main() -> None:
    site = hierarchical_site(n_pages=200, branching=4,
                             cross_link_probability=0.03,
                             home_link_probability=0.4, seed=11)
    print(f"catalog site: {site}")

    simulation = simulate_population(
        site, SimulationConfig(n_agents=600, seed=2, nip=0.1))
    sessions = SmartSRA(site).reconstruct(simulation.log_requests)
    print(f"{len(sessions)} reconstructed sessions from "
          f"{len(simulation.log_requests)} log records\n")

    patterns = frequent_sequences(sessions, min_support=0.002, max_length=3)
    paths = [p for p in patterns if len(p.pages) >= 2]
    paths.sort(key=lambda p: -p.support)
    print("top walked paths:")
    for pattern in paths[:8]:
        print(f"  {pattern.support:6.2%}  {' -> '.join(pattern.pages)}")

    shortcuts = [p for p in paths
                 if len(p.pages) == 3
                 and not site.has_link(p.pages[0], p.pages[2])]
    print("\nshortcut candidates (frequent A->B->C with no A->C link):")
    for pattern in shortcuts[:8]:
        print(f"  {pattern.support:6.2%}  {pattern.pages[0]} -> "
              f"{pattern.pages[2]}  (via {pattern.pages[1]})")
    if not shortcuts:
        print("  (none above the support threshold)")

    itemsets = apriori(sessions, min_support=0.005, max_size=2)
    rules = association_rules(itemsets, min_confidence=0.4)
    print("\nstrongest association rules (visited-together pages):")
    for rule in rules[:8]:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
