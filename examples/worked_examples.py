"""The paper's worked examples, step by step (Tables 1-4, Figure 1).

Replays every numeric example in the paper against this implementation and
shows they match:

* Table 1's request stream split by heur1 and heur2,
* Table 2's navigation-oriented trace with inserted backward movements,
* Tables 3-4's Smart-SRA run producing three maximal sessions.

Run:  python examples/worked_examples.py
"""

from __future__ import annotations

from repro import (
    DurationHeuristic,
    NavigationHeuristic,
    PageStayHeuristic,
    SmartSRA,
)
from repro.evaluation.experiments import (
    paper_example_topology,
    paper_table1_stream,
    paper_table3_stream,
)


def show(title: str, sessions) -> None:
    print(f"\n{title}")
    for session in sessions:
        marks = ["*" + r.page if r.synthetic else r.page for r in session]
        print("   [" + " ".join(marks) + "]")


def main() -> None:
    topology = paper_example_topology()
    print("Figure 1 topology:", topology)
    for page in sorted(topology.pages):
        targets = " ".join(sorted(topology.successors(page)))
        star = "*" if page in topology.start_pages else " "
        print(f"  {star}{page} -> {targets}")

    stream = paper_table1_stream()
    print("\nTable 1 stream: "
          + ", ".join(f"{r.page}@{r.timestamp / 60:.0f}m" for r in stream))

    show("heur1 (duration <= 30 min) — paper: [P1 P20 P13 P49] [P34 P23]",
         DurationHeuristic().reconstruct_user(stream))
    show("heur2 (page stay <= 10 min) — paper: [P1 P20 P13] [P49 P34] [P23]",
         PageStayHeuristic().reconstruct_user(stream))
    show("heur3 (navigation + path completion, * = inserted back moves)\n"
         "   paper Table 2: [P1 P20 P1 P13 P49 P13 P34 P23]",
         NavigationHeuristic(topology).reconstruct_user(stream))

    stream3 = paper_table3_stream()
    print("\nTable 3 stream: "
          + ", ".join(f"{r.page}@{r.timestamp / 60:.0f}m" for r in stream3))
    show("heur4 (Smart-SRA) — paper Table 4: three maximal sessions",
         SmartSRA(topology).reconstruct_user(stream3))


if __name__ == "__main__":
    main()
