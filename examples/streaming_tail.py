"""Online session reconstruction: tail a growing log, emit sessions live.

Production analytics cannot wait for the nightly batch.  This example
simulates a server writing its access log *while* a streaming Smart-SRA
pipeline tails it:

1. simulate a day of traffic and sort it into one chronological stream,
2. replay the stream in five-minute "arrival batches" into
   :func:`repro.streaming.streaming_smart_sra`, advancing the event-time
   watermark after each batch,
3. show sessions being emitted long before the stream ends, with bounded
   buffering throughout,
4. verify the streamed output equals the offline batch reconstruction.

Run:  python examples/streaming_tail.py
"""

from __future__ import annotations

from repro import SimulationConfig, SmartSRA, random_site, simulate_population
from repro.streaming import streaming_smart_sra

BATCH_SECONDS = 300.0


def main() -> None:
    site = random_site(n_pages=200, avg_out_degree=10, seed=8)
    simulation = simulate_population(
        site, SimulationConfig(n_agents=400, seed=12), horizon=4 * 3600.0)
    stream = simulation.log_requests
    span_hours = (stream[-1].timestamp - stream[0].timestamp) / 3600
    print(f"replaying {len(stream)} log records spanning "
          f"{span_hours:.1f} hours in {BATCH_SECONDS / 60:.0f}-minute "
          f"batches")

    pipeline = streaming_smart_sra(site)
    emitted = []
    batch_end = stream[0].timestamp + BATCH_SECONDS
    progress_rows = 0
    for request in stream:
        while request.timestamp > batch_end:
            emitted.extend(pipeline.flush(watermark=batch_end))
            stats = pipeline.stats()
            if progress_rows < 10 or stats.fed_requests == len(stream):
                print(f"  t={batch_end / 60:6.0f}min  fed={stats.fed_requests:5}  "
                      f"emitted={stats.emitted_sessions:5}  "
                      f"buffered={stats.buffered_requests:4} requests "
                      f"({stats.active_users} users)")
                progress_rows += 1
            elif progress_rows == 10:
                print("  ...")
                progress_rows += 1
            batch_end += BATCH_SECONDS
        emitted.extend(pipeline.feed(request))
    emitted.extend(pipeline.flush())

    batch = SmartSRA(site).reconstruct(stream)
    same = (sorted((s.user_id, s.pages, s.start_time) for s in emitted)
            == sorted((s.user_id, s.pages, s.start_time) for s in batch))
    print(f"\nstreamed sessions: {len(emitted)}  "
          f"batch sessions: {len(batch)}  identical: {same}")


if __name__ == "__main__":
    main()
