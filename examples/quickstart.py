"""Quickstart: simulate a site, reconstruct sessions, compare heuristics.

Runs the paper's core experiment at a laptop-friendly scale:

1. generate a random web site (Table 5 shape, scaled down),
2. simulate 500 agents browsing it (ground truth + server log),
3. reconstruct sessions from the log with all four heuristics,
4. score every heuristic with the paper's real-accuracy metric.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    SimulationConfig,
    evaluate_reconstruction,
    random_site,
    simulate_population,
    standard_heuristics,
)


def main() -> None:
    print("1) generating a 300-page site (avg out-degree 15)...")
    site = random_site(n_pages=300, avg_out_degree=15, seed=1)
    print(f"   {site}")

    print("2) simulating 500 agents (STP=5%, LPP=30%, NIP=30%)...")
    config = SimulationConfig(n_agents=500, seed=7)
    simulation = simulate_population(site, config)
    print(f"   {len(simulation.ground_truth)} real sessions, "
          f"{len(simulation.log_requests)} log records, "
          f"cache hid {simulation.cache_hit_rate:.0%} of navigation")

    print("3) reconstructing sessions from the server log...")
    print(f"{'heuristic':<42}{'matched':>9}{'captured':>10}{'sessions':>10}")
    for name, heuristic in standard_heuristics(site).items():
        sessions = heuristic.reconstruct(simulation.log_requests)
        report = evaluate_reconstruction(
            name, simulation.ground_truth, sessions)
        print(f"{name + ' — ' + heuristic.label:<42}"
              f"{report.matched_accuracy:>8.1%}"
              f"{report.accuracy:>10.1%}"
              f"{report.reconstructed_count:>10}")

    print("\nSmart-SRA (heur4) recovers the most sessions — the paper's "
          "headline result.")


if __name__ == "__main__":
    main()
