"""The full reactive data-processing pipeline on real files.

This is the scenario the paper's title describes: a web server leaves a
noisy Common Log Format file behind, and an analyst has to filter it,
partition it into users, and reconstruct sessions — after the fact
(reactively), with no cookies or client instrumentation.

The script builds the whole loop in a temp directory:

  simulate -> write CLF -> inject noise -> clean -> partition -> Smart-SRA
  -> evaluate against the simulator's ground truth.

Run:  python examples/log_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import SimulationConfig, SmartSRA, evaluate_reconstruction, random_site, simulate_population
from repro.logs.cleaning import LogCleaner, NoiseInjector
from repro.logs.reader import read_clf_file, records_to_requests
from repro.logs.users import IdentityAddressMap
from repro.logs.writer import requests_to_records, write_clf_file


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_log_pipeline_"))
    print(f"working in {workdir}")

    site = random_site(n_pages=150, avg_out_degree=10, seed=3)
    simulation = simulate_population(
        site, SimulationConfig(n_agents=300, seed=9))

    # --- the web server writes its access log (with realistic noise) -----
    clean_records = requests_to_records(simulation.log_requests,
                                        IdentityAddressMap())
    noisy_records = NoiseInjector(resources_per_page=3, error_rate=0.05,
                                  post_rate=0.03, robot_requests=200,
                                  seed=1).inject(clean_records)
    log_path = workdir / "access.log"
    write_clf_file(str(log_path), noisy_records)
    print(f"wrote {len(noisy_records)} CLF lines "
          f"({len(clean_records)} genuine page views) to {log_path}")

    # --- the analyst's reactive pipeline ---------------------------------
    records = read_clf_file(str(log_path), skip_malformed=True)
    kept, stats = LogCleaner().clean(records)
    print(f"cleaning: kept {stats.kept}, dropped "
          f"{stats.dropped_resources} resources / {stats.dropped_errors} "
          f"errors / {stats.dropped_methods} non-GET / "
          f"{stats.dropped_robots} robot records")

    requests = records_to_requests(kept)
    sessions = SmartSRA(site).reconstruct(requests)
    print(f"Smart-SRA reconstructed {len(sessions)} sessions "
          f"(mean length {sessions.mean_length():.2f})")

    report = evaluate_reconstruction("smart-sra",
                                     simulation.ground_truth, sessions)
    print(f"\nagainst ground truth: matched accuracy "
          f"{report.matched_accuracy:.1%}, any-capture {report.accuracy:.1%}"
          f" ({report.matched}/{report.total_real} sessions)")


if __name__ == "__main__":
    main()
